"""Simulated counterparts of the paper's headline figures.

Where :mod:`repro.experiments.figures` evaluates the closed-form cost
model, these experiments *measure* the same curves on the simulated
storage engine at scaled parameters — Figure 1 (Model 1 cost vs P),
Figure 5 (Model 2 cost vs P) and Figure 8 (Model 3 cost vs l), each as
actual executed workloads.  The reproduction claim is that the
measured curves preserve the paper's orderings and crossovers.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.parameters import Parameters
from repro.core.strategies import Strategy, ViewModel
from repro.workload.runner import run_config
from repro.workload.spec import SCALED_DEFAULTS, ScenarioConfig
from .series import FigureData

__all__ = [
    "simulated_figure1",
    "simulated_figure5",
    "simulated_figure8",
    "DEFAULT_SIM_P_SWEEP",
]

#: Update probabilities with integral (k, q) pairs at q = 20.
DEFAULT_SIM_P_SWEEP = (0.2, 0.5, 0.8)


def _params_at_p(base: Parameters, p: float) -> Parameters:
    """Integral (k, q) workload with update probability ``p``."""
    q = int(base.q)
    k = round(q * p / (1.0 - p))
    return base.with_updates(k=float(max(1, k)))


def _measure(
    base: Parameters,
    model: ViewModel,
    strategies: Sequence[Strategy],
    sweep: Sequence[float],
    vary,
    seed: int = 7,
) -> list[dict[str, float]]:
    rows = []
    for x in sweep:
        params = vary(base, x)
        row = {}
        for strategy in strategies:
            config = ScenarioConfig(
                params=params, model=model, strategy=strategy, seed=seed
            )
            row[strategy.label] = run_config(config).avg_cost_per_query
        rows.append(row)
    return rows


def simulated_figure1(
    base: Parameters = SCALED_DEFAULTS,
    p_values: Sequence[float] = DEFAULT_SIM_P_SWEEP,
    seed: int = 7,
) -> FigureData:
    """Figure 1, measured: Model 1 cost per query vs P on the engine."""
    strategies = (Strategy.DEFERRED, Strategy.IMMEDIATE, Strategy.QM_CLUSTERED,
                  Strategy.QM_UNCLUSTERED)
    rows = _measure(base, ViewModel.SELECT_PROJECT, strategies,
                    p_values, _params_at_p, seed=seed)
    return FigureData(
        figure_id="sim-fig1",
        title="Figure 1, measured — Model 1 cost vs P (simulated engine)",
        x_label="P",
        y_label="measured ms/query",
        x_values=tuple(p_values),
        rows=tuple(rows),
        notes="scaled parameters (N=4000); orderings match the analytic figure",
    )


def simulated_figure5(
    base: Parameters = SCALED_DEFAULTS,
    p_values: Sequence[float] = DEFAULT_SIM_P_SWEEP,
    seed: int = 7,
) -> FigureData:
    """Figure 5, measured: Model 2 cost per query vs P on the engine."""
    strategies = (Strategy.DEFERRED, Strategy.IMMEDIATE, Strategy.QM_LOOPJOIN)
    rows = _measure(base, ViewModel.JOIN, strategies,
                    p_values, _params_at_p, seed=seed)
    return FigureData(
        figure_id="sim-fig5",
        title="Figure 5, measured — Model 2 cost vs P (simulated engine)",
        x_label="P",
        y_label="measured ms/query",
        x_values=tuple(p_values),
        rows=tuple(rows),
        notes="materialization wins at low P; loopjoin flat across P",
    )


def simulated_figure8(
    base: Parameters = SCALED_DEFAULTS,
    l_values: Sequence[float] = (1, 5, 20),
    seed: int = 7,
) -> FigureData:
    """Figure 8, measured: Model 3 aggregate cost vs l on the engine."""
    strategies = (Strategy.DEFERRED, Strategy.IMMEDIATE, Strategy.QM_CLUSTERED)
    rows = _measure(
        base, ViewModel.AGGREGATE, strategies, l_values,
        lambda b, l: b.with_updates(l=float(l)), seed=seed,
    )
    return FigureData(
        figure_id="sim-fig8",
        title="Figure 8, measured — Model 3 aggregate cost vs l (simulated engine)",
        x_label="l (tuples per transaction)",
        y_label="measured ms/query",
        x_values=tuple(float(l) for l in l_values),
        rows=tuple(rows),
        notes="maintained aggregates stay a small fraction of recomputation",
    )
