"""``ext-resilience``: availability and correctness under storage faults.

The chaos experiment for the resilience stack.  For every fault
profile × strategy cell, three servers replay the *same* seeded
request stream:

* **oracle** — a clean twin (no faults); its answers are ground truth.
* **baseline** — faults armed with no resilience layer: no checksum
  verification, no retries, no breakers, no degraded serving.  This is
  what silent storage rot does to a naive server: transient errors
  kill requests outright and torn/bit-flipped pages are served as if
  they were fine.
* **resilient** — the full stack (checksums verified on every read,
  retry + breakers, degradation ladder, background repair, WAL-backed
  recovery for base damage).

Three numbers decide the claim, per cell:

* **availability** — answered queries / issued queries, where a
  labeled :class:`~repro.resilience.degradation.DegradedResult` counts
  as answered (that is the point of the ladder);
* **wrong answers** — answers that differ from the oracle *without*
  being labeled degraded.  A stale read may diverge — it says so, and
  bounds how far; an unlabeled divergence is silent corruption;
* **overhead** — modelled milliseconds (CostMeter-priced, including
  repair and recovery work) relative to the clean oracle run.

``main()`` asserts the acceptance bar: every resilient cell serves
zero wrong answers at >= 99% availability, and every baseline cell
demonstrably loses requests, loses updates, or serves corrupt pages.

``python -m repro.experiments.resilience --json out.json`` writes the
matrix as JSON; CI uploads it as the ``ext-resilience`` artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from dataclasses import asdict, dataclass
from typing import Any

from repro.core.strategies import Strategy
from repro.durability.manager import DurabilityManager
from repro.resilience.degradation import DegradedResult
from repro.resilience.faults import fault_profile
from repro.resilience.policy import ResilienceConfig, RetryPolicy
from repro.service.traffic import PhaseSpec, demo_server, drifting_traffic
from .series import TableData

__all__ = [
    "ResilienceRun",
    "run_resilience_cell",
    "run_resilience_matrix",
    "resilience_table",
    "check_acceptance",
    "main",
]

PROFILES = ("transient", "torn", "bitrot", "mixed")
STRATEGIES = (Strategy.DEFERRED, Strategy.IMMEDIATE, Strategy.QM_CLUSTERED)

#: Matrix sizing — small enough for CI, hot enough that every profile
#: actually injects (rates × operations >> 1).
N_TUPLES = 400
DOMAIN = 300
VIEW_BOUND = 60
PHASES = (PhaseSpec(operations=150, update_probability=0.3, batch_size=4),)

#: The resilient arm's policy: deep retries so the transient profile's
#: per-op fault rates almost never exhaust (0.05^6 per guarded read).
RESILIENCE = ResilienceConfig(retry=RetryPolicy(max_attempts=6))


@dataclass(frozen=True)
class ResilienceRun:
    """One (profile, strategy, arm) cell of the chaos matrix."""

    profile: str
    strategy: str
    arm: str  # "oracle" | "baseline" | "resilient"
    queries: int
    answered: int
    #: Labeled degraded answers (subset of ``answered``).
    degraded: int
    #: Oracle-divergent answers NOT labeled degraded (silent corruption).
    wrong: int
    #: Labeled degraded answers that also diverged (bounded staleness).
    degraded_divergent: int
    updates: int
    lost_updates: int
    faults_injected: int
    modelled_ms: float

    @property
    def availability(self) -> float:
        return self.answered / self.queries if self.queries else 1.0


def _normalize(answer: Any) -> Any:
    """Comparable shape for an answer (tuple list -> sorted identities)."""
    if isinstance(answer, list):
        return sorted(
            vt.identity() if hasattr(vt, "identity") else vt for vt in answer
        )
    return answer


def _build_demo(profile_name: str | None, strategy: Strategy, resilient: bool):
    profile = fault_profile(profile_name) if profile_name else None
    return demo_server(
        n_tuples=N_TUPLES,
        domain=DOMAIN,
        view_bound=VIEW_BOUND,
        strategy=strategy,
        adaptive=False,
        fault_profile=profile,
        resilience=RESILIENCE if resilient else None,
    )


def _drive(demo, requests, oracle_answers: list[Any] | None):
    """Replay one stream; compare each answer against the oracle's.

    Returns ``(stats dict, answers list)``.  ``oracle_answers is None``
    means this *is* the oracle run — record, don't compare.
    """
    server = demo.server
    params = server.params
    stats = {
        "queries": 0, "answered": 0, "degraded": 0, "wrong": 0,
        "degraded_divergent": 0, "updates": 0, "lost_updates": 0,
        "modelled_ms": 0.0,
    }
    answers: list[Any] = []
    qi = 0
    for request in requests:
        meter = server.database.meter
        before = meter.snapshot()
        if request.kind == "update":
            stats["updates"] += 1
            try:
                server.apply_update(request.txn, client=request.client)
            except Exception:
                # The baseline has no recovery: the transaction is
                # simply gone (and may leave partial state behind).
                stats["lost_updates"] += 1
        else:
            stats["queries"] += 1
            answer: Any = None
            failed = False
            try:
                answer = server.query(
                    request.view, request.lo, request.hi, client=request.client
                )
            except Exception:
                failed = True
            if not failed:
                stats["answered"] += 1
                is_degraded = isinstance(answer, DegradedResult)
                payload = answer.unwrap() if is_degraded else answer
                norm = _normalize(payload)
                if oracle_answers is None:
                    answers.append(norm)
                else:
                    matches = norm == oracle_answers[qi]
                    if is_degraded:
                        stats["degraded"] += 1
                        if not matches:
                            stats["degraded_divergent"] += 1
                    elif not matches:
                        stats["wrong"] += 1
            qi += 1
        # The engine may have been swapped by WAL recovery mid-request;
        # the fresh meter then carries the replay + post-swap cost.
        after_meter = server.database.meter
        if after_meter is meter:
            stats["modelled_ms"] += meter.diff(before).milliseconds(params)
        else:
            stats["modelled_ms"] += after_meter.milliseconds(params)
    return stats, answers


def run_resilience_cell(
    profile_name: str, strategy: Strategy
) -> tuple[ResilienceRun, ResilienceRun, ResilienceRun]:
    """(oracle, baseline, resilient) runs over one identical stream."""
    oracle_demo = _build_demo(None, strategy, resilient=False)
    requests = drifting_traffic(oracle_demo, PHASES, seed=13)
    oracle_stats, oracle_answers = _drive(oracle_demo, requests, None)

    baseline_demo = _build_demo(profile_name, strategy, resilient=False)
    baseline_stats, _ = _drive(baseline_demo, requests, oracle_answers)

    with tempfile.TemporaryDirectory(prefix="repro-ext-resilience-") as tmp:
        resilient_demo = _build_demo(profile_name, strategy, resilient=True)
        faults = resilient_demo.database.faults
        assert faults is not None
        faults.disarm()  # the baseline checkpoint must capture clean state
        manager = DurabilityManager(tmp)
        manager.save_config(resilient_demo.database.engine_config())
        resilient_demo.server.attach_durability(manager, checkpoint_every=40)
        resilient_demo.server.checkpoint()
        faults.arm()
        resilient_stats, _ = _drive(resilient_demo, requests, oracle_answers)
        resilient_faults = resilient_demo.database.faults
        injected = resilient_faults.injected_total if resilient_faults else 0
        try:
            resilient_demo.database.faults.disarm()  # clean final checkpoint
            resilient_demo.server.shutdown()
        except Exception:
            pass  # measurement is over; a failed final checkpoint is fine

    def make(arm: str, stats: dict, faults_injected: int) -> ResilienceRun:
        return ResilienceRun(
            profile=profile_name, strategy=strategy.value, arm=arm,
            faults_injected=faults_injected, **stats,
        )

    baseline_faults = baseline_demo.database.faults
    return (
        make("oracle", oracle_stats, 0),
        make("baseline", baseline_stats,
             baseline_faults.injected_total if baseline_faults else 0),
        make("resilient", resilient_stats, injected),
    )


def run_resilience_matrix(
    profiles: tuple[str, ...] = PROFILES,
    strategies: tuple[Strategy, ...] = STRATEGIES,
) -> tuple[ResilienceRun, ...]:
    runs: list[ResilienceRun] = []
    for profile_name in profiles:
        for strategy in strategies:
            runs.extend(run_resilience_cell(profile_name, strategy))
    return tuple(runs)


def check_acceptance(runs: tuple[ResilienceRun, ...]) -> list[str]:
    """The chaos bar; returns human-readable violations (empty = pass).

    * every resilient cell: zero wrong answers, availability >= 99%;
    * every baseline cell (aggregated per profile): at least one lost
      query, lost update, or silently wrong answer — the faults are
      real and the naive server demonstrably suffers them.
    """
    violations: list[str] = []
    baseline_harm: dict[str, int] = {}
    for run in runs:
        cell = f"{run.profile}/{run.strategy}"
        if run.arm == "resilient":
            if run.wrong:
                violations.append(
                    f"{cell}: resilient served {run.wrong} wrong answers"
                )
            if run.availability < 0.99:
                violations.append(
                    f"{cell}: resilient availability "
                    f"{run.availability:.1%} < 99%"
                )
        elif run.arm == "baseline":
            harm = (
                (run.queries - run.answered) + run.lost_updates + run.wrong
            )
            baseline_harm[run.profile] = baseline_harm.get(run.profile, 0) + harm
    for profile_name, harm in baseline_harm.items():
        if harm == 0:
            violations.append(
                f"{profile_name}: baseline took no damage — the profile "
                "is not exercising anything"
            )
    return violations


def resilience_table(runs: tuple[ResilienceRun, ...] | None = None) -> TableData:
    """The ``ext-resilience`` artifact: the chaos matrix."""
    if runs is None:
        runs = run_resilience_matrix()
    rows = []
    oracle_ms = {
        (run.profile, run.strategy): run.modelled_ms
        for run in runs if run.arm == "oracle"
    }
    for run in runs:
        clean = oracle_ms.get((run.profile, run.strategy), 0.0)
        overhead = run.modelled_ms / clean if clean else 0.0
        rows.append((
            run.profile,
            run.strategy,
            run.arm,
            run.queries,
            f"{run.availability:.1%}",
            run.wrong,
            run.degraded,
            run.lost_updates,
            run.faults_injected,
            round(run.modelled_ms, 0),
            f"{overhead:.2f}x",
        ))
    return TableData(
        table_id="ext-resilience",
        title="Availability and correctness under storage fault injection",
        columns=(
            "profile", "strategy", "arm", "queries", "availability",
            "wrong", "degraded", "lost updates", "faults", "ms", "vs clean",
        ),
        rows=tuple(rows),
        notes=(
            "Each (profile, strategy) cell replays one seeded request "
            "stream through three servers: a clean oracle, a faulted "
            "baseline with no resilience layer, and the full stack "
            "(checksums + retries + breakers + degraded serving + "
            "WAL-backed repair). 'wrong' counts answers diverging from "
            "the oracle without a DegradedResult label — silent "
            "corruption; labeled degraded answers are reported "
            "separately. 'ms' is CostMeter-priced and includes repair "
            "and recovery work, so 'vs clean' is the full price of "
            "surviving the profile."
        ),
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="ext-resilience: chaos matrix for the resilience stack"
    )
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write runs + table as a JSON document")
    parser.add_argument("--profiles", default=",".join(PROFILES),
                        help="comma-separated fault profiles to run")
    args = parser.parse_args(argv)

    profiles = tuple(p for p in args.profiles.split(",") if p)
    runs = run_resilience_matrix(profiles=profiles)
    table = resilience_table(runs=runs)
    print(table.render())
    violations = check_acceptance(runs)
    for violation in violations:
        print(f"ACCEPTANCE VIOLATION: {violation}", file=sys.stderr)
    if args.json:
        from pathlib import Path

        doc = {
            "experiment": "ext-resilience",
            "title": table.title,
            "columns": list(table.columns),
            "rows": [list(row) for row in table.rows],
            "notes": table.notes,
            "acceptance_violations": violations,
            "runs": [
                {**asdict(run), "availability": run.availability}
                for run in runs
            ],
        }
        Path(args.json).write_text(json.dumps(doc, indent=2) + "\n")
        print(f"wrote {args.json}")
    return 1 if violations else 0


if __name__ == "__main__":  # pragma: no cover - exercised by CI
    sys.exit(main())
