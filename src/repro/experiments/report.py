"""ASCII rendering for figures (terminal-friendly, no plotting deps)."""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .series import FigureData

__all__ = ["render_chart"]

_MARKERS = "dicul*oxj+"


def render_chart(
    figure: "FigureData", width: int = 72, height: int = 20, log_y: bool = False
) -> str:
    """Plot all series of a figure as an ASCII chart.

    Each series gets a one-character marker; overlapping points show the
    later series' marker.  ``log_y`` uses a log10 y-axis (useful when
    strategies differ by orders of magnitude, as in Figure 8).
    """
    labels = figure.series_labels
    points: list[tuple[int, float, str]] = []  # (column, y, marker)
    xs = figure.x_values
    x_min, x_max = min(xs), max(xs)
    x_span = (x_max - x_min) or 1.0

    ys_all = [
        y
        for row in figure.rows
        for y in row.values()
        if y is not None and (not log_y or y > 0)
    ]
    if not ys_all:
        return f"{figure.title}\n(no data)"
    transform = (lambda v: math.log10(v)) if log_y else (lambda v: v)
    y_min = min(transform(y) for y in ys_all)
    y_max = max(transform(y) for y in ys_all)
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for i, (x, row) in enumerate(zip(xs, figure.rows)):
        col = round((x - x_min) / x_span * (width - 1))
        for s_index, label in enumerate(labels):
            y = row.get(label)
            if y is None or (log_y and y <= 0):
                continue
            level = (transform(y) - y_min) / y_span
            line = height - 1 - round(level * (height - 1))
            grid[line][col] = _MARKERS[s_index % len(_MARKERS)]

    y_top = 10**y_max if log_y else y_max
    y_bottom = 10**y_min if log_y else y_min
    out = [figure.title]
    out.append(f"{figure.y_label}{' (log)' if log_y else ''}  top={y_top:.4g}")
    for line in grid:
        out.append("|" + "".join(line))
    out.append("+" + "-" * width)
    out.append(
        f" {figure.x_label}: {x_min:.4g} .. {x_max:.4g}    bottom={y_bottom:.4g}"
    )
    legend = ", ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={label}" for i, label in enumerate(labels)
    )
    out.append(f" legend: {legend}")
    if figure.notes:
        out.append(f" note: {figure.notes}")
    return "\n".join(out)
