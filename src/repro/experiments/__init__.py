"""Experiment harness: figures, tables, validation and ablations.

Every artifact of the paper's evaluation section can be regenerated
programmatically (``figures.figure1()`` ... ``figures.figure9()``,
``tables.emp_dept_case()``, ...) or from the command line via
``repro-experiments`` / ``python -m repro.experiments.runner``.
"""

from . import ablation, components, extensions, figures, sim_figures, tables, validation
from .report import render_chart
from .runner import EXPERIMENTS, run_experiment
from .series import FigureData, TableData

__all__ = [
    "EXPERIMENTS",
    "FigureData",
    "TableData",
    "ablation",
    "components",
    "extensions",
    "figures",
    "sim_figures",
    "render_chart",
    "run_experiment",
    "tables",
    "validation",
]
