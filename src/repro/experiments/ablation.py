"""Ablation studies for the design choices DESIGN.md calls out.

1. **Combined AD file vs separate A/D files** (Section 2.2.2): the
   paper chooses one combined differential file so a key-preserving
   update costs 3 I/Os instead of 5.  We measure both designs under an
   identical update stream.
2. **Refresh on demand vs periodic refresh** (Section 4): the Yao
   triangle inequality implies refreshing only when a query arrives
   touches the fewest view pages.  We evaluate the analytic refresh
   cost when the accumulated batch is instead applied in ``j`` eager
   slices, and run the simulated deferred strategy with forced
   intermediate refreshes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.parameters import PAPER_DEFAULTS, Parameters
from repro.core.strategies import Strategy, ViewModel
from repro.core.yao import yao
from repro.storage.pager import CostMeter
from repro.workload.generator import UpdateOp, build_scenario
from repro.workload.spec import SCALED_DEFAULTS, ScenarioConfig
from .series import TableData

__all__ = [
    "ad_file_ablation",
    "bloom_filter_ablation",
    "refresh_period_ablation",
    "refresh_period_simulation",
]


def bloom_filter_ablation(
    params: Parameters = SCALED_DEFAULTS,
    reads: int = 300,
    pending_updates: int = 40,
    seed: int = 13,
) -> TableData:
    """Section 2.2.2's motivation: Bloom screening of the AD file.

    A hypothetical relation with pending updates serves keyed reads of
    (mostly) unmodified tuples.  With a well-sized filter, such reads
    skip the differential file entirely (~1 I/O); with a degenerate
    one-bit filter every read false-drops into AD first.  The paper:
    "one can design a Bloom filter with any desired ability to screen
    out accesses to records not present in the differential file".
    """
    from repro.hr.differential import ClusteredRelation, HypotheticalRelation
    from repro.storage.pager import BufferPool, CostMeter, SimulatedDisk
    from repro.storage.tuples import Schema

    schema = Schema("r", ("id", "a", "v"), "id", tuple_bytes=params.S)
    rows = []
    for bloom_bits, label in ((1 << 16, "Bloom filter (64 Kbit)"),
                              (1, "no effective filter (1 bit)")):
        rng = random.Random(seed)
        meter = CostMeter()
        pool = BufferPool(SimulatedDisk(meter), capacity=256)
        base = ClusteredRelation(schema, pool, "a", block_bytes=params.B)
        base.bulk_load([
            schema.new_record(id=i, a=rng.randrange(1000), v=i)
            for i in range(params.N)
        ])
        hr = HypotheticalRelation(base, bloom_bits=bloom_bits, ad_buckets=8)
        modified = rng.sample(range(params.N), pending_updates)
        for key in modified:
            hr.update_by_key(key, v=rng.randrange(1000))
        meter.reset()
        unmodified = [k for k in range(params.N) if k not in set(modified)]
        for key in rng.sample(unmodified, reads):
            pool.invalidate_all()
            hr.read_by_key(key)
        rows.append((label, reads, meter.page_reads,
                     round(meter.page_reads / reads, 2)))
    return TableData(
        table_id="ablation-bloom-filter",
        title="Section 2.2.2 ablation — Bloom screening of AD reads",
        columns=("configuration", "reads of unmodified tuples",
                 "total page reads", "reads per lookup"),
        rows=tuple(rows),
        notes="the filter keeps unmodified-tuple reads at the paper's one I/O",
    )


def ad_file_ablation(
    params: Parameters = SCALED_DEFAULTS, updates: int = 200, seed: int = 11
) -> TableData:
    """Measure I/O per update for combined-AD vs separate-A/D designs."""
    from repro.engine.database import Database
    from repro.engine.transaction import Transaction, Update
    from repro.storage.tuples import Schema

    results = []
    for kind, label in (("hypothetical", "combined AD (3-I/O)"), ("separate", "separate A and D (5-I/O)")):
        rng = random.Random(seed)
        db = Database.from_parameters(params, buffer_pages=256, cold_operations=True)
        schema = Schema("r", ("id", "a", "val"), "id", tuple_bytes=params.S)
        records = [
            schema.new_record(id=i, a=rng.randrange(1000), val=rng.randrange(1000))
            for i in range(params.N)
        ]
        db.create_relation(schema, "a", kind=kind, records=records, ad_buckets=8)
        db.reset_meter()
        for _ in range(updates):
            key = rng.randrange(params.N)
            db.apply_transaction(
                Transaction.of("r", [Update(key, {"val": rng.randrange(1000)})])
            )
        total_ios = db.meter.page_ios
        results.append((label, updates, total_ios, round(total_ios / updates, 2)))
    return TableData(
        table_id="ablation-bloom",
        title="Section 2.2.2 ablation — differential file design, I/O per update",
        columns=("design", "updates", "total page I/Os", "I/Os per update"),
        rows=tuple(results),
        notes="key-preserving single-tuple updates; paper predicts 3 vs 5",
    )


def refresh_period_ablation(
    params: Parameters = PAPER_DEFAULTS,
    splits: tuple[int, ...] = (1, 2, 4, 8, 16),
) -> TableData:
    """Analytic: view pages touched when one batch is split into eager slices.

    One deferred refresh applies ``2fu`` changes at once; refreshing
    ``j`` times applies ``2fu/j`` each.  Subadditivity of the Yao
    function makes ``j = 1`` (refresh on demand) the minimum.
    """
    n = params.view_tuples_model1
    m = params.view_pages_model1
    batch = 2.0 * params.f * params.u * 8  # an 8-query accumulation window
    rows = []
    for j in splits:
        pages = j * yao(n, m, batch / j)
        rows.append((j, round(batch / j, 2), round(pages, 2)))
    return TableData(
        table_id="ablation-refresh",
        title="Section 4 ablation — eager refresh slices vs one deferred refresh",
        columns=("refreshes", "changes per refresh", "total view pages touched"),
        rows=tuple(rows),
        notes="monotone non-decreasing in the number of refreshes (Yao subadditivity)",
    )


@dataclass(frozen=True)
class PeriodicRefreshResult:
    """Measured cost of deferred maintenance with forced periodic refresh."""

    refresh_every: int
    total_ms: float
    refreshes: int


def refresh_period_simulation(
    params: Parameters | None = None,
    periods: tuple[int, ...] = (1, 2, 4),
    seed: int = 7,
) -> TableData:
    """Simulated: deferred maintenance with extra mid-batch refreshes.

    Policy 1 refreshes only when a query arrives (the proposed
    scheme); policy ``j > 1`` additionally forces a refresh after each
    transaction whose index is a multiple of ``j - 1``, emulating
    eager/periodic refresh.  Each forced refresh is costed as a
    standalone cold operation (pool emptied before, flushed after) so
    it cannot free-ride on a previous operation's buffer contents.

    Uses an update-heavy parameter set (``k/q = 4``) so refreshes are
    large enough for the Yao page-sharing effect to be measurable.
    """
    if params is None:
        params = SCALED_DEFAULTS.with_updates(k=40.0, q=10.0, l=20.0)
    rows = []
    for policy in periods:
        config = ScenarioConfig(
            params=params, model=ViewModel.SELECT_PROJECT,
            strategy=Strategy.DEFERRED, seed=seed,
        )
        scenario = build_scenario(config)
        db = scenario.database
        strategy_impl = db.views[scenario.view_name]
        txns_seen = 0
        for op in scenario.operations:
            if isinstance(op, UpdateOp):
                db.apply_transaction(op.txn)
                txns_seen += 1
                if policy > 1 and txns_seen % (policy - 1) == 0:
                    db.pool.invalidate_all()
                    strategy_impl.refresh()
                    db.pool.flush_all()
            else:
                db.query_view(scenario.view_name, op.lo, op.hi)
        rows.append(
            (
                "on demand" if policy == 1 else f"also after every {policy - 1} txns",
                strategy_impl.refresh_count,
                round(db.meter.milliseconds(params), 1),
            )
        )
    return TableData(
        table_id="ablation-refresh-sim",
        title="Section 4 ablation (simulated) — refresh-on-demand vs eager refresh",
        columns=("policy", "refreshes performed", "total workload ms"),
        rows=tuple(rows),
        notes="refresh-on-demand performs the fewest refreshes at the lowest cost",
    )
