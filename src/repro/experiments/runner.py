"""CLI entry point: regenerate every experiment from the terminal.

``repro-experiments all`` (or ``python -m repro.experiments.runner``)
prints every figure, table and validation report; individual ids select
one: the paper's artifacts (``fig1`` .. ``fig9``, ``params``,
``emp-dept``, ``yao``, ``sensitivity``, ``breakdown``), the
simulation-side checks (``validate``, ``sim-fig1``/``5``/``8``,
``ablation``) and the extensions (``ext-async``, ``ext-snapshot``,
``ext-hybrid``, ``ext-five``, ``ext-service``, ``ext-durability``,
``ext-resilience``, ``ext-cluster``, ``ext-gateway``,
``ext-failover``).
``--csv DIR`` additionally writes raw data files, and ``--jobs N``
fans independent experiments across a process pool (each experiment
builds its own engines, so they share no state).
"""

from __future__ import annotations

import argparse
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Callable

from repro.core.regions import RegionMap
from . import (
    ablation,
    cluster,
    components,
    durability,
    extensions,
    failover,
    figures,
    gateway,
    resilience,
    service,
    sim_figures,
    tables,
    validation,
)
from .series import FigureData, TableData

__all__ = ["main", "EXPERIMENTS", "run_experiment"]

Artifact = FigureData | TableData | RegionMap


def _fig4_pair() -> list[Artifact]:
    return [figures.figure4(), figures.figure4_c3_sweep()]


EXPERIMENTS: dict[str, Callable[[], list[Artifact]]] = {
    "params": lambda: [tables.parameter_table()],
    "fig1": lambda: [figures.figure1()],
    "fig2": lambda: [figures.figure2()],
    "fig3": lambda: [figures.figure3()],
    "fig4": _fig4_pair,
    "fig5": lambda: [figures.figure5()],
    "fig6": lambda: [figures.figure6()],
    "fig7": lambda: [figures.figure7()],
    "fig8": lambda: [figures.figure8()],
    "fig9": lambda: [figures.figure9()],
    "emp-dept": lambda: [tables.emp_dept_case()],
    "yao": lambda: [tables.yao_triangle_table(), tables.yao_accuracy_table()],
    "sensitivity": lambda: [tables.sensitivity_table()],
    "breakdown": lambda: [tables.cost_breakdown_table()],
    "validate": lambda: [validation.validation_table()],
    "sim-components": lambda: [components.component_validation_table()],
    "sim-fig1": lambda: [sim_figures.simulated_figure1()],
    "sim-fig5": lambda: [sim_figures.simulated_figure5()],
    "sim-fig8": lambda: [sim_figures.simulated_figure8()],
    "ext-async": lambda: [extensions.async_refresh_figure()],
    "ext-snapshot": lambda: [
        extensions.snapshot_frontier_figure(),
        extensions.snapshot_validation_table(),
    ],
    "ext-hybrid": lambda: [extensions.hybrid_routing_table()],
    "ext-five": lambda: [extensions.five_mechanisms_table()],
    "ext-skew": lambda: [extensions.update_skew_table()],
    "ext-service": lambda: [service.adaptive_serving_table()],
    "ext-durability": lambda: [durability.durability_table()],
    "ext-resilience": lambda: [resilience.resilience_table()],
    "ext-cluster": lambda: [cluster.cluster_scaling_table()],
    "ext-gateway": lambda: [gateway.gateway_table()],
    "ext-failover": lambda: [failover.failover_table()],
    "ablation": lambda: [
        ablation.ad_file_ablation(),
        ablation.bloom_filter_ablation(),
        ablation.refresh_period_ablation(),
        ablation.refresh_period_simulation(),
    ],
}

_REGION_TITLES = {
    "fig2": "Figure 2 — Model 1 best strategy, f vs P (f_v=.1)",
    "fig3": "Figure 3 — Model 1 best strategy, f vs P (f_v=.01)",
    "fig4": "Figure 4 — Model 1 best strategy, f vs P (c3=2, f_v=.1)",
    "fig6": "Figure 6 — Model 2 best strategy, f vs P (f_v=.1)",
    "fig7": "Figure 7 — Model 2 best strategy, f vs P (f_v=.01)",
}


def run_experiment(exp_id: str) -> list[Artifact]:
    """Produce the artifacts of one experiment id."""
    try:
        factory = EXPERIMENTS[exp_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {exp_id!r}; choose from {', '.join(EXPERIMENTS)}"
        ) from None
    return factory()


def _print_artifact(exp_id: str, artifact: Artifact, log_y: bool) -> None:
    if isinstance(artifact, RegionMap):
        print(_REGION_TITLES.get(exp_id, exp_id))
        print(artifact.render())
    elif isinstance(artifact, FigureData):
        print(artifact.render(log_y=log_y))
    else:
        print(artifact.render())
    print()


def _write_csv(directory: Path, exp_id: str, index: int, artifact: Artifact) -> None:
    directory.mkdir(parents=True, exist_ok=True)
    suffix = "" if index == 0 else f"-{index}"
    path = directory / f"{exp_id}{suffix}.csv"
    if isinstance(artifact, RegionMap):
        lines = ["f,P,winner"]
        for i, f in enumerate(artifact.f_values):
            for j, p in enumerate(artifact.p_values):
                lines.append(f"{f},{p},{artifact.winners[i][j].label}")
        path.write_text("\n".join(lines) + "\n")
    else:
        path.write_text(artifact.to_csv())


def _run_timed(exp_id: str) -> tuple[str, list[Artifact], float]:
    """Pool worker: one experiment plus its wall time (picklable)."""
    start = time.perf_counter()
    artifacts = run_experiment(exp_id)
    return exp_id, artifacts, time.perf_counter() - start


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the figures and tables of Hanson's view "
        "materialization performance analysis (SIGMOD 1987).",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=["all"],
        help="experiment ids (default: all). Known: %s" % ", ".join(EXPERIMENTS),
    )
    parser.add_argument("--csv", type=Path, default=None, metavar="DIR",
                        help="also write raw CSV data into DIR")
    parser.add_argument("--markdown", type=Path, default=None, metavar="FILE",
                        help="also write a Markdown report to FILE")
    parser.add_argument("--log-y", action="store_true",
                        help="log-scale y axis for curve figures")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="run independent experiments on N worker "
                        "processes (default: 1, in-process)")
    parser.add_argument("--shards", type=int, default=None, metavar="N",
                        help="widen ext-cluster's sweep to powers of two "
                        "up to N shards (default sweep: %s)"
                        % "/".join(map(str, cluster.DEFAULT_SHARD_COUNTS)))
    args = parser.parse_args(argv)
    if args.jobs < 1:
        print(f"--jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    if args.shards is not None:
        if args.shards < 1:
            print(f"--shards must be >= 1, got {args.shards}", file=sys.stderr)
            return 2
        # Before the worker pool forks, so the override propagates.
        cluster.configure_shard_counts(args.shards)

    wanted = list(EXPERIMENTS) if args.experiments == ["all"] else args.experiments
    unknown = [exp_id for exp_id in wanted if exp_id not in EXPERIMENTS]
    if unknown:
        # Validate the whole grid before spending any compute on it.
        print(
            "unknown experiment%s %s; choose from %s"
            % (
                "s" if len(unknown) > 1 else "",
                ", ".join(repr(e) for e in unknown),
                ", ".join(EXPERIMENTS),
            ),
            file=sys.stderr,
        )
        return 2
    if args.csv is not None:
        args.csv.mkdir(parents=True, exist_ok=True)

    start = time.perf_counter()
    if args.jobs > 1 and len(wanted) > 1:
        # Each experiment builds its own engines from scratch — no
        # shared state — so the grid fans out across processes; results
        # are printed back in request order.
        with ProcessPoolExecutor(max_workers=min(args.jobs, len(wanted))) as pool:
            results = list(pool.map(_run_timed, wanted))
    else:
        results = [_run_timed(exp_id) for exp_id in wanted]
    wall = time.perf_counter() - start

    markdown_sections: list[str] = []
    for exp_id, artifacts, _elapsed in results:
        for index, artifact in enumerate(artifacts):
            _print_artifact(exp_id, artifact, args.log_y)
            if args.csv is not None:
                _write_csv(args.csv, exp_id, index, artifact)
            if args.markdown is not None:
                markdown_sections.append(_markdown_section(exp_id, artifact))
    timings = ", ".join(
        f"{exp_id} {elapsed:.2f}s" for exp_id, _arts, elapsed in results
    )
    print(
        f"ran {len(results)} experiment(s) in {wall:.2f}s "
        f"(jobs={args.jobs}): {timings}"
    )
    if args.markdown is not None:
        header = (
            "# Reproduction report\n\n"
            "Generated by `repro-experiments --markdown` for Hanson, "
            "*A Performance Analysis of View Materialization Strategies* "
            "(SIGMOD 1987).\n"
        )
        args.markdown.parent.mkdir(parents=True, exist_ok=True)
        args.markdown.write_text(header + "\n" + "\n\n".join(markdown_sections) + "\n")
        print(f"markdown report written to {args.markdown}")
    return 0


def _markdown_section(exp_id: str, artifact: Artifact) -> str:
    if isinstance(artifact, RegionMap):
        title = _REGION_TITLES.get(exp_id, exp_id)
        return f"### {title}\n\n```\n{artifact.render()}\n```"
    if isinstance(artifact, FigureData):
        return artifact.to_markdown() + "\n\n```\n" + artifact.render() + "\n```"
    return artifact.to_markdown()


if __name__ == "__main__":
    raise SystemExit(main())
