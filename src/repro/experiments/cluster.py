"""``ext-cluster``: sharded scatter–gather serving scaling.

Forks 1/2/… shard-worker clusters over the same demo data set, drives
identical paced concurrent traffic through the front-end router at
each width, and tabulates aggregate throughput, per-shard routing mix
and the speedup over one shard.  Pacing realizes each request's
modelled milliseconds as wall sleeps *inside the worker processes*,
so the speedup measures process parallelism past the GIL (see
``docs/cluster.md``), not host arithmetic.
"""

from __future__ import annotations

from repro.cluster.harness import launch_demo, run_cluster_traffic
from .series import TableData

__all__ = [
    "DEFAULT_SHARD_COUNTS",
    "configure_shard_counts",
    "cluster_scaling_table",
]

#: Wall seconds per modelled millisecond inside each shard worker.
PACING = 2e-4
CLIENT_THREADS = 4
OPS_PER_THREAD = 12
N_RECORDS = 480

#: Kept small so ``repro-experiments all`` stays fast; ``--shards N``
#: widens the sweep.
DEFAULT_SHARD_COUNTS = (1, 2)

_shard_counts: tuple[int, ...] = DEFAULT_SHARD_COUNTS


def configure_shard_counts(max_shards: int) -> tuple[int, ...]:
    """Widen the default sweep to powers of two up to ``max_shards``.

    Called by the runner's ``--shards N`` flag before any experiment
    executes (and before its worker pool forks, so the override
    propagates to pool workers).
    """
    if max_shards < 1:
        raise ValueError(f"max_shards must be >= 1, got {max_shards}")
    counts = [1]
    while counts[-1] * 2 <= max_shards:
        counts.append(counts[-1] * 2)
    if counts[-1] != max_shards:
        counts.append(max_shards)
    global _shard_counts
    _shard_counts = tuple(counts)
    return _shard_counts


def _routing_mix(export: dict) -> tuple[int, int]:
    """(single-shard, scatter) query totals from a cluster export."""
    single = scatter = 0
    for metric in export["metrics"]:
        if metric["name"] == "single_shard_queries_total":
            single += int(metric["value"])
        elif metric["name"] == "scatter_queries_total":
            scatter += int(metric["value"])
    return single, scatter


def cluster_scaling_table(
    shard_counts: tuple[int, ...] | None = None,
    pacing: float = PACING,
) -> TableData:
    """The ``ext-cluster`` artifact: aggregate qps per shard count."""
    shard_counts = shard_counts if shard_counts is not None else _shard_counts
    rows = []
    baseline_qps: float | None = None
    for n_shards in sorted(set(shard_counts)):
        router = launch_demo(
            n_shards, strategy="deferred", pacing=pacing, n_records=N_RECORDS
        )
        try:
            run_cluster_traffic(router, 2, 4, N_RECORDS)  # warm-up
            summary = run_cluster_traffic(
                router, CLIENT_THREADS, OPS_PER_THREAD, N_RECORDS
            )
            router.refresh_epoch()
            single, scatter = _routing_mix(router.cluster_metrics())
            epochs = router.stats()["epochs"]
        finally:
            router.close()
        if baseline_qps is None:
            baseline_qps = summary["qps"]
        speedup = summary["qps"] / baseline_qps if baseline_qps else 0.0
        rows.append((
            n_shards,
            summary["queries"],
            summary["updates"],
            round(summary["wall_seconds"], 2),
            round(summary["qps"], 1),
            f"{speedup:.2f}x",
            single,
            scatter,
            epochs,
        ))
    return TableData(
        table_id="ext-cluster",
        title="Sharded scatter-gather serving: aggregate throughput by width",
        columns=("shards", "queries", "updates", "wall s", "qps",
                 "speedup", "1-shard q", "scatter q", "epochs"),
        rows=tuple(rows),
        notes=(
            f"{CLIENT_THREADS} client threads x {OPS_PER_THREAD} ops over "
            f"{N_RECORDS} tuples, pacing {pacing:g} s per modelled ms inside "
            "each worker process; chunk-aligned queries keep per-query width "
            "constant across shard counts. Speedup is aggregate qps vs one "
            "shard; the routing mix shows chunk queries staying single-shard "
            "under range placement. Full sweep: repro-experiments "
            "ext-cluster --shards 4."
        ),
    )
