"""Data containers for figure/table regeneration."""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

__all__ = ["FigureData", "TableData"]


@dataclass
class FigureData:
    """One figure: an x-axis sweep with one or more named series.

    ``rows[i]`` maps series label to the y value at ``x_values[i]``
    (``None`` for undefined points, e.g. a crossover that left the
    plot).  ``render`` produces an ASCII chart; ``to_csv`` the raw data.
    """

    figure_id: str
    title: str
    x_label: str
    y_label: str
    x_values: tuple[float, ...]
    rows: tuple[Mapping[str, float | None], ...]
    notes: str = ""

    def __post_init__(self) -> None:
        if len(self.x_values) != len(self.rows):
            raise ValueError(
                f"{self.figure_id}: {len(self.x_values)} x-values but "
                f"{len(self.rows)} rows"
            )

    @property
    def series_labels(self) -> tuple[str, ...]:
        labels: dict[str, None] = {}
        for row in self.rows:
            for label in row:
                labels.setdefault(label, None)
        return tuple(labels)

    def series(self, label: str) -> tuple[float | None, ...]:
        """One series' y values across the sweep."""
        return tuple(row.get(label) for row in self.rows)

    def to_csv(self) -> str:
        """Raw data as CSV text (x column + one column per series)."""
        labels = self.series_labels
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow([self.x_label, *labels])
        for x, row in zip(self.x_values, self.rows):
            writer.writerow([x, *(row.get(label, "") for label in labels)])
        return buffer.getvalue()

    def render(self, width: int = 72, height: int = 20, log_y: bool = False) -> str:
        """ASCII line chart of all series."""
        from .report import render_chart

        return render_chart(self, width=width, height=height, log_y=log_y)

    def to_markdown(self) -> str:
        """Markdown section: title, data table, notes."""
        labels = self.series_labels
        lines = [f"### {self.title}", ""]
        lines.append("| " + " | ".join([self.x_label, *labels]) + " |")
        lines.append("|" + "---|" * (len(labels) + 1))
        for x, row in zip(self.x_values, self.rows):
            cells = [f"{x:g}"]
            for label in labels:
                value = row.get(label)
                cells.append("" if value is None else f"{value:g}")
            lines.append("| " + " | ".join(cells) + " |")
        if self.notes:
            lines.extend(["", f"*{self.notes}*"])
        return "\n".join(lines)


@dataclass
class TableData:
    """One table: named columns and uniform rows."""

    table_id: str
    title: str
    columns: tuple[str, ...]
    rows: tuple[tuple[Any, ...], ...]
    notes: str = ""

    def __post_init__(self) -> None:
        for row in self.rows:
            if len(row) != len(self.columns):
                raise ValueError(
                    f"{self.table_id}: row {row!r} does not match columns "
                    f"{self.columns!r}"
                )

    def to_csv(self) -> str:
        """Raw rows as CSV text."""
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.columns)
        writer.writerows(self.rows)
        return buffer.getvalue()

    def to_markdown(self) -> str:
        """Markdown section: title, table, notes."""
        lines = [f"### {self.title}", ""]
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "---|" * len(self.columns))
        for row in self.rows:
            lines.append("| " + " | ".join(_fmt(v) for v in row) + " |")
        if self.notes:
            lines.extend(["", f"*{self.notes}*"])
        return "\n".join(lines)

    def render(self) -> str:
        """Fixed-width text table."""
        widths = [len(c) for c in self.columns]
        str_rows = [[_fmt(v) for v in row] for row in self.rows]
        for row in str_rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        def line(cells: Sequence[str]) -> str:
            return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

        out = [self.title, line(self.columns), line(["-" * w for w in widths])]
        out.extend(line(row) for row in str_rows)
        if self.notes:
            out.append(f"note: {self.notes}")
        return "\n".join(out)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
