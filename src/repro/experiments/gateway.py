"""``ext-gateway``: overload behaviour of the network front door.

Three phases against one live gateway-fronted demo server (paced so
the saturation point is hardware-independent):

1. **single probe** — one closed-loop client measures the no-queueing
   service rate;
2. **saturation probe** — as many closed-loop clients as the gateway
   has workers measure the sustainable throughput ``S`` through a
   wide-open gateway (no rate limit, deep queue);
3. **overload** — the gateway is relaunched *tuned* (global token
   bucket at ``S``, small burst, short bounded queue, default deadline)
   and an open-loop Zipf population offers ``2×S``.

The acceptance bar is the point of admission control: under 2× offered
load the tuned gateway must keep goodput at ≥80% of saturation (load
is shed by labeled rejection, not by collapse), keep the p99 of
*admitted* requests bounded by the deadline budget, never let the
ingress queue exceed its cap, and serve **zero wrong results** — every
admitted answer passes its invariant validator during the storm, and
after quiescing the gateway-served aggregate equals the engine's own
answer exactly.

``python -m repro.experiments.gateway --json out.json`` writes the
phases, per-outcome latency summaries and rejection counts as JSON;
CI's ``gateway-overload-smoke`` job uploads it as an artifact.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from dataclasses import dataclass
from typing import Any

from repro.gateway import (
    AdmissionConfig,
    GatewayConfig,
    GatewayHandle,
    REJECTION_LABELS,
    ViewServerBackend,
    call_once,
)
from repro.service.metrics import validate_metrics
from repro.service.traffic import demo_server
from repro.workload.clients import (
    LoadReport,
    OpenLoopConfig,
    demo_request_factory,
    run_closed_loop,
    run_open_loop,
)
from .series import TableData

__all__ = [
    "GatewayOverloadRun",
    "run_overload",
    "check_acceptance",
    "gateway_table",
    "main",
]

#: Wall seconds per modelled millisecond: pins the demo's saturation
#: point to the cost model instead of to the host's CPU.
PACING = 2e-4
WORKERS = 4
#: Per-request deadline budget for the overload phase (wall ms).
DEADLINE_MS = 600.0
#: Tuned admission: rate at measured saturation, small burst so bursts
#: cannot swamp the queue, queue short enough that a queued request can
#: still meet its deadline (cap / S << deadline).
QUEUE_CAP = 16
GLOBAL_BURST = 8
CLIENT_CONCURRENCY = 64

#: Outcomes an overload run is allowed to produce.
_ALLOWED_OUTCOMES = (
    frozenset(("ok", "ok_retry", "degraded")) | frozenset(REJECTION_LABELS)
)


@dataclass
class GatewayOverloadRun:
    """Everything the three phases measured."""

    single_client_rps: float
    saturation_rps: float
    offered_rate: float
    deadline_ms: float
    single: LoadReport
    saturation: LoadReport
    overload: LoadReport
    #: Post-quiesce equivalence: gateway-served v_total == engine's own.
    quiesce_match: bool
    quiesce_detail: str
    #: p50/p95/p99 per outcome from the gateway's exported metrics.
    metrics_summary: dict[str, dict[str, float | None]]

    def goodput_ratio(self) -> float:
        if self.saturation_rps <= 0:
            return 0.0
        return self.overload.goodput() / self.saturation_rps

    def to_dict(self) -> dict[str, Any]:
        return {
            "single_client_rps": round(self.single_client_rps, 3),
            "saturation_rps": round(self.saturation_rps, 3),
            "offered_rate": round(self.offered_rate, 3),
            "deadline_ms": self.deadline_ms,
            "goodput_ratio": round(self.goodput_ratio(), 4),
            "single": self.single.to_dict(),
            "saturation": self.saturation.to_dict(),
            "overload": self.overload.to_dict(),
            "quiesce_match": self.quiesce_match,
            "quiesce_detail": self.quiesce_detail,
            "metrics_summary": self.metrics_summary,
        }


def _call(host: str, port: int, doc: dict[str, Any]) -> Any:
    return asyncio.run(call_once(host, port, doc))


def _metrics_summary(export: dict[str, Any]) -> dict[str, dict[str, float | None]]:
    """Per-outcome latency summaries from the gateway's metrics export."""
    validate_metrics(export)
    summary: dict[str, dict[str, float | None]] = {}
    for entry in export["metrics"]:
        if entry["name"] != "gateway_request_ms":
            continue
        outcome = entry["labels"].get("outcome", "")
        summary[outcome] = {
            "count": entry["count"],
            "p50_ms": entry["p50"],
            "p95_ms": entry["p95"],
            "p99_ms": entry["p99"],
        }
    return summary


def run_overload(
    duration_s: float = 2.0,
    probe_s: float = 1.5,
    seed: int = 7,
) -> GatewayOverloadRun:
    demo = demo_server(seed=seed, pacing=PACING)
    backend = ViewServerBackend(demo.server)
    factory = demo_request_factory()

    # Phases 1–2: saturation probes through a wide-open gateway.
    probe_cfg = GatewayConfig(
        admission=AdmissionConfig(max_queue=64, client_concurrency=None),
        workers=WORKERS,
    )
    with GatewayHandle.launch(backend, probe_cfg) as handle:
        single = run_closed_loop(
            handle.host, handle.port, factory,
            concurrency=1, duration_s=probe_s, seed=seed + 1,
        )
        saturation = run_closed_loop(
            handle.host, handle.port, factory,
            concurrency=WORKERS, duration_s=probe_s, seed=seed + 2,
        )
    sat_rps = max(saturation.goodput(), single.goodput())

    # Phase 3: tuned gateway, 2× saturation offered open-loop.
    tuned = GatewayConfig(
        admission=AdmissionConfig(
            global_rate=sat_rps,
            global_burst=GLOBAL_BURST,
            max_queue=QUEUE_CAP,
            client_concurrency=CLIENT_CONCURRENCY,
            default_deadline_ms=DEADLINE_MS,
        ),
        workers=WORKERS,
    )
    offered = 2.0 * sat_rps
    with GatewayHandle.launch(backend, tuned) as handle:
        overload = run_open_loop(
            handle.host, handle.port,
            OpenLoopConfig(
                rate=offered, duration_s=duration_s,
                deadline_ms=DEADLINE_MS, seed=seed + 3,
            ),
            factory,
        )

        # Quiesce: refresh everything, then the gateway and the engine
        # must agree exactly on the aggregate — the wire path added or
        # lost nothing.
        demo.server.refresh_all_stale()
        direct = demo.server.query("v_total", None, None, client="oracle")
        reply = _call(handle.host, handle.port, {
            "op": "query", "view": "v_total", "lo": None, "hi": None,
            "client": "oracle",
        })
        if reply.ok:
            served, degraded = reply.answer()
            quiesce_match = served == direct and degraded is None
            quiesce_detail = f"gateway={served!r} engine={direct!r}"
        else:
            quiesce_match = False
            quiesce_detail = f"quiesce query failed: {reply.doc}"

        export = _call(handle.host, handle.port, {"op": "metrics"})
        metrics_summary = _metrics_summary(export.result["gateway"])

    return GatewayOverloadRun(
        single_client_rps=single.goodput(),
        saturation_rps=sat_rps,
        offered_rate=offered,
        deadline_ms=DEADLINE_MS,
        single=single,
        saturation=saturation,
        overload=overload,
        quiesce_match=quiesce_match,
        quiesce_detail=quiesce_detail,
        metrics_summary=metrics_summary,
    )


def check_acceptance(run: GatewayOverloadRun) -> list[str]:
    """The overload bar; returns human-readable violations (empty = pass)."""
    violations: list[str] = []
    report = run.overload

    ratio = run.goodput_ratio()
    if ratio < 0.8:
        violations.append(
            f"goodput {report.goodput():.1f} rps is {ratio:.0%} of "
            f"saturation {run.saturation_rps:.1f} rps (bar: >= 80%)"
        )
    p99 = report.percentile("ok", 0.99)
    bound = run.deadline_ms * 1.5
    if p99 is None:
        violations.append("no admitted requests completed — p99 undefined")
    elif p99 > bound:
        violations.append(
            f"p99 of admitted requests {p99:.0f} ms exceeds "
            f"{bound:.0f} ms (1.5x the {run.deadline_ms:.0f} ms deadline)"
        )
    if report.wrong:
        violations.append(
            f"{len(report.wrong)} wrong results, e.g. {report.wrong[0]}"
        )
    if not run.quiesce_match:
        violations.append(f"post-quiesce mismatch: {run.quiesce_detail}")

    stats = report.server_stats or {}
    queue = stats.get("queue", {})
    if not queue:
        violations.append("overload report carries no gateway queue stats")
    elif queue["peak"] > queue["cap"]:
        violations.append(
            f"ingress queue peaked at {queue['peak']} above its cap "
            f"{queue['cap']}"
        )
    if report.rejected == 0:
        violations.append(
            "2x offered load produced no labeled rejections — admission "
            "control never engaged"
        )
    unknown = set(report.outcomes) - _ALLOWED_OUTCOMES
    if unknown:
        violations.append(f"unexpected outcome labels: {sorted(unknown)}")

    ok_summary = run.metrics_summary.get("ok", {})
    for field in ("p50_ms", "p95_ms", "p99_ms"):
        if not isinstance(ok_summary.get(field), (int, float)):
            violations.append(
                f"gateway metrics export lacks {field} for outcome 'ok'"
            )
    return violations


def gateway_table(run: GatewayOverloadRun | None = None) -> TableData:
    """The ``ext-gateway`` artifact: the three phases side by side."""
    if run is None:
        run = run_overload()

    def row(phase: str, rate: float, report: LoadReport) -> tuple:
        return (
            phase,
            f"{rate:.0f}",
            f"{report.goodput():.1f}",
            report.ok,
            report.rejected,
            report.outcomes.get("expired", 0),
            _fmt_ms(report.percentile("ok", 0.50)),
            _fmt_ms(report.percentile("ok", 0.95)),
            _fmt_ms(report.percentile("ok", 0.99)),
            len(report.wrong),
        )

    rows = (
        row("single (closed)", run.single.goodput(), run.single),
        row("saturation (closed)", run.saturation_rps, run.saturation),
        row("2x overload (open)", run.offered_rate, run.overload),
    )
    return TableData(
        table_id="ext-gateway",
        title="Gateway goodput and admitted-request latency under overload",
        columns=(
            "phase", "offered rps", "goodput rps", "ok", "rejected",
            "expired", "p50 ms", "p95 ms", "p99 ms", "wrong",
        ),
        rows=rows,
        notes=(
            "Closed-loop probes measure the paced demo server's "
            "saturation through a wide-open gateway; the overload phase "
            "offers twice that rate open-loop (requests issued on "
            "schedule regardless of completions) from a Zipf client "
            "population, against a gateway tuned with its global token "
            "bucket at the measured saturation rate. Excess load must "
            "surface as labeled rejections while goodput holds >= 80% "
            "of saturation, admitted p99 stays within 1.5x the deadline "
            "budget, the bounded ingress queue never exceeds its cap, "
            "and zero answers violate their invariants (plus an exact "
            "post-quiesce equivalence check against the engine)."
        ),
    )


def _fmt_ms(value: float | None) -> str:
    return f"{value:.0f}" if value is not None else "-"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="ext-gateway: overload behaviour of the network front door"
    )
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write phases + summaries as a JSON document")
    parser.add_argument("--duration", type=float, default=2.0,
                        help="open-loop overload window in seconds")
    parser.add_argument("--probe", type=float, default=1.5,
                        help="closed-loop saturation probe window in seconds")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    run = run_overload(duration_s=args.duration, probe_s=args.probe,
                       seed=args.seed)
    table = gateway_table(run=run)
    print(table.render())
    violations = check_acceptance(run)
    for violation in violations:
        print(f"ACCEPTANCE VIOLATION: {violation}", file=sys.stderr)
    if args.json:
        from pathlib import Path

        doc = {
            "experiment": "ext-gateway",
            "title": table.title,
            "columns": list(table.columns),
            "rows": [list(row) for row in table.rows],
            "notes": table.notes,
            "acceptance_violations": violations,
            "run": run.to_dict(),
        }
        Path(args.json).write_text(json.dumps(doc, indent=2) + "\n")
        print(f"wrote {args.json}")
    return 1 if violations else 0


if __name__ == "__main__":  # pragma: no cover - exercised by CI
    sys.exit(main())
