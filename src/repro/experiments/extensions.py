"""Extension experiments: the paper's future-work section, evaluated.

These artifacts go beyond the paper's nine figures:

* ``ext-async`` — Section 4's asynchronous-refresh speculation: query
  latency vs total work as idle-time refresh slices are added.
* ``ext-snapshot`` — the introduction's snapshot mechanism: the
  cost/staleness frontier, with the always-fresh strategies as
  reference points, plus an engine-measured check of the analytic
  snapshot cost.
* ``ext-hybrid`` — Section 3.3's dual-access-path routing, measured on
  the engine: per-field query costs down each path.
"""

from __future__ import annotations

import random

from repro.core import model1
from repro.core.parameters import PAPER_DEFAULTS, Parameters
from repro.core.policies import analyze_snapshot, async_refresh_curve, snapshot_curve
from repro.core.strategies import Strategy
from repro.workload.spec import SCALED_DEFAULTS
from .series import FigureData, TableData

__all__ = [
    "async_refresh_figure",
    "snapshot_frontier_figure",
    "snapshot_validation_table",
    "hybrid_routing_table",
    "five_mechanisms_table",
    "update_skew_table",
]


def async_refresh_figure(
    params: Parameters = PAPER_DEFAULTS, max_extra: int = 8
) -> FigureData:
    """Latency/total-work trade-off of idle-time refresh slices."""
    curve = async_refresh_curve(params, max_extra=max_extra)
    rows = [
        {
            "query latency": point.query_latency_ms,
            "total work": point.total_cost_ms,
        }
        for point in curve
    ]
    return FigureData(
        figure_id="ext-async",
        title="Extension — async refresh: latency vs total work (Model 1)",
        x_label="idle-time refresh slices between queries",
        y_label="ms per query",
        x_values=tuple(float(point.extra_refreshes) for point in curve),
        rows=tuple(rows),
        notes="latency falls toward the pure-read floor; total work rises "
        "(Yao subadditivity) — Section 4's speculation, quantified",
    )


def snapshot_frontier_figure(
    params: Parameters = PAPER_DEFAULTS,
    periods: tuple[int, ...] = (1, 2, 5, 10, 25, 100),
) -> FigureData:
    """Snapshot cost vs refresh period, with fresh strategies as lines."""
    curve = snapshot_curve(params, periods=periods)
    deferred = model1.total_deferred(params).total
    immediate = model1.total_immediate(params).total
    rows = [
        {
            "snapshot": snap.cost_per_query_ms,
            "deferred (fresh)": deferred,
            "immediate (fresh)": immediate,
        }
        for snap in curve
    ]
    return FigureData(
        figure_id="ext-snapshot",
        title="Extension — snapshot cost vs refresh period (Model 1)",
        x_label="queries per rebuild",
        y_label="ms per query",
        x_values=tuple(float(p) for p in periods),
        rows=tuple(rows),
        notes="staleness grows as u*(r-1)/2 unapplied updates; fresh "
        "strategies shown as horizontal references",
    )


def snapshot_validation_table(
    params: Parameters = SCALED_DEFAULTS, periods: tuple[int, ...] = (1, 4)
) -> TableData:
    """Engine-measured snapshot cost vs the analytic amortization."""
    from repro.engine.database import Database
    from repro.storage.tuples import Schema
    from repro.views.definition import SelectProjectView
    from repro.views.predicate import IntervalPredicate

    schema = Schema("r", ("id", "a", "v"), "id", tuple_bytes=params.S)
    domain = 1_000
    bound = max(1, round(params.f * domain))
    view = SelectProjectView(
        "v", "r", IntervalPredicate("a", 0, bound - 1, selectivity=params.f),
        ("id", "a"), "a",
    )
    rows = []
    queries = 12
    for period in periods:
        rng = random.Random(3)
        db = Database.from_parameters(params, buffer_pages=512, cold_operations=True)
        records = [
            schema.new_record(id=i, a=rng.randrange(domain), v=i)
            for i in range(params.N)
        ]
        db.create_relation(schema, "a", kind="plain", records=records)
        db.define_view(view, Strategy.SNAPSHOT, refresh_every=period)
        db.reset_meter()
        width = max(1, round(params.f_v * bound))
        for _ in range(queries):
            lo = rng.randint(0, max(0, bound - width))
            db.query_view("v", lo, lo + width - 1)
        measured = db.meter.milliseconds(params) / queries
        analytic = analyze_snapshot(params, period).cost_per_query_ms
        rows.append((period, round(measured, 1), round(analytic, 1),
                     round(measured / analytic, 2)))
    return TableData(
        table_id="ext-snapshot-validate",
        title="Extension — snapshot: engine-measured vs analytic cost per query",
        columns=("queries per rebuild", "measured ms", "analytic ms", "ratio"),
        rows=tuple(rows),
    )


def hybrid_routing_table(params: Parameters = SCALED_DEFAULTS) -> TableData:
    """Dual-path routing measured: same view, two query shapes."""
    from repro.engine.database import Database
    from repro.storage.tuples import Schema
    from repro.views.definition import SelectProjectView
    from repro.views.predicate import IntervalPredicate

    schema = Schema("r", ("id", "a", "v"), "id", tuple_bytes=params.S)
    domain = 1_000
    bound = max(1, round(params.f * domain))
    view = SelectProjectView(
        "v", "r", IntervalPredicate("a", 0, bound - 1, selectivity=params.f),
        ("id", "a"), "a",
    )
    rng = random.Random(5)
    db = Database.from_parameters(params, buffer_pages=512, cold_operations=True)
    records = [
        schema.new_record(id=i, a=rng.randrange(domain), v=i)
        for i in range(params.N)
    ]
    db.create_relation(schema, "id", kind="plain", records=records)
    strategy = db.define_view(view, Strategy.HYBRID)
    db.reset_meter()

    rows = []
    cases = (
        ("a", 0, max(0, bound // 10 - 1), params.f * 0.1),
        ("id", 0, params.N // 100, 0.01),
    )
    for field, lo, hi, selectivity in cases:
        before = db.meter.snapshot()
        db.pool.invalidate_all()
        result = strategy.query_on(field, lo, hi, selectivity=selectivity)
        delta = db.meter.delta_since(before)
        decision = strategy.decisions[-1]
        rows.append((
            f"{field} in [{lo}, {hi}]",
            decision.path,
            len(result),
            round(delta.milliseconds(params), 1),
        ))
    return TableData(
        table_id="ext-hybrid",
        title="Extension — Section 3.3 dual-path routing, measured",
        columns=("query", "chosen path", "rows", "measured ms"),
        rows=tuple(rows),
        notes="one maintained view, two clusterings: the router picks the "
        "clustered path matching each query's field",
    )


def five_mechanisms_table(
    params: Parameters = SCALED_DEFAULTS, seed: int = 7
) -> TableData:
    """Every materialization mechanism the introduction names, measured.

    One Model-1 workload executed under all five schemes the paper's
    introduction surveys: query modification (Stonebraker 1975),
    immediate incremental maintenance (Blakeley 1986), snapshots
    (Adiba & Lindsay 1980, refreshed every 5 queries — the only stale
    entry), Buneman & Clemons' analyze-and-recompute (1979), and the
    paper's deferred maintenance.
    """
    from collections import Counter

    from repro.engine.database import Database
    from repro.engine.transaction import Transaction, Update
    from repro.storage.tuples import Schema
    from repro.views.definition import SelectProjectView
    from repro.views.predicate import IntervalPredicate

    schema = Schema("r", ("id", "a", "v"), "id", tuple_bytes=params.S)
    domain = 1_000
    bound = max(1, round(params.f * domain))
    view = SelectProjectView(
        "v", "r", IntervalPredicate("a", 0, bound - 1, selectivity=params.f),
        ("id", "a"), "a",
    )
    schemes = (
        (Strategy.QM_CLUSTERED, "query modification [Ston75]", True),
        (Strategy.IMMEDIATE, "immediate incremental [Blak86]", True),
        (Strategy.SNAPSHOT, "snapshot, r=5 [Adib80]", False),
        (Strategy.BC_RECOMPUTE, "analyze & recompute [Bune79]", True),
        (Strategy.DEFERRED, "deferred (this paper)", True),
    )
    queries = 10
    width = max(1, round(params.f_v * bound))

    def run(strategy, with_view: bool) -> tuple[float, bool]:
        rng = random.Random(seed)
        db = Database.from_parameters(params, buffer_pages=512,
                                      cold_operations=True)
        kind = (
            "hypothetical"
            if (with_view and strategy is Strategy.DEFERRED)
            else "plain"
        )
        records = [
            schema.new_record(id=i, a=rng.randrange(domain), v=i)
            for i in range(params.N)
        ]
        db.create_relation(schema, "a", kind=kind, records=records, ad_buckets=1)
        if with_view:
            db.define_view(view, strategy, refresh_every=5)
        db.reset_meter()
        fresh = True
        for _ in range(queries):
            db.apply_transaction(Transaction.of("r", [
                Update(rng.randrange(params.N), {"a": rng.randrange(domain)})
                for _ in range(int(params.l))
            ]))
            lo = rng.randint(0, max(0, bound - width))
            if not with_view:
                continue
            answer = db.query_view("v", lo, lo + width - 1)
            relation = db.relations["r"]
            snapshot = (
                relation.logical_snapshot()
                if kind == "hypothetical"
                else relation.records_snapshot()
            )
            expected = [
                vt for vt in view.evaluate(snapshot)
                if lo <= vt["a"] <= lo + width - 1
            ]
            if Counter(answer) != Counter(expected):
                fresh = False
        return db.meter.milliseconds(params), fresh

    # The paper's accounting: the cost of keeping the base relation
    # current is "normal" work every scheme pays; subtract it so the
    # table shows view-related overhead per query.
    base_ms, _ = run(Strategy.QM_CLUSTERED, with_view=False)
    rows = []
    for strategy, label, always_fresh in schemes:
        total_ms, fresh = run(strategy, with_view=True)
        assert fresh == always_fresh, (label, fresh)
        rows.append((
            label,
            round(max(0.0, total_ms - base_ms) / queries, 1),
            "always fresh" if fresh else "stale between rebuilds",
        ))
    return TableData(
        table_id="ext-five",
        title="Introduction's five mechanisms on one Model 1 workload (measured)",
        columns=("mechanism", "view overhead ms per query", "freshness"),
        rows=tuple(rows),
        notes="identical update/query stream for every scheme; base-relation "
        "update cost subtracted (the paper's accounting); snapshot trades "
        "staleness for amortized rebuilds",
    )


def update_skew_table(
    params: Parameters | None = None, seed: int = 7
) -> TableData:
    """Temporal locality vs the paper's uniform-update assumption.

    The cost model draws updated tuples uniformly.  Re-running the
    Model 1 workload with hot keys (80% of updates on 20% of tuples)
    probes what locality does to each scheme: deferred pays *more* —
    every read or update of a recently-modified tuple false-drops into
    the AD differential file, and those probes outweigh the refresh
    savings from net-change cancellation — while immediate, which keeps
    no differential file, is mildly helped by view-page reuse.  The
    paper's uniform assumption is therefore *optimistic toward
    deferred* under update locality.
    """
    from repro.core.strategies import ViewModel
    from repro.workload.runner import run_config
    from repro.workload.spec import ScenarioConfig

    if params is None:
        params = SCALED_DEFAULTS.with_updates(k=40.0, q=10.0, l=10.0)
    rows = []
    for skew in ("uniform", "hot"):
        for strategy in (Strategy.DEFERRED, Strategy.IMMEDIATE):
            config = ScenarioConfig(
                params=params, model=ViewModel.SELECT_PROJECT,
                strategy=strategy, seed=seed, update_skew=skew,
            )
            result = run_config(config)
            rows.append((skew, strategy.label,
                         round(result.avg_cost_per_query, 1)))
    return TableData(
        table_id="ext-skew",
        title="Extension — update locality vs the uniform-update assumption",
        columns=("update distribution", "strategy", "measured ms/query"),
        rows=tuple(rows),
        notes="hot = 80% of updates on the hottest 20% of keys; deferred "
        "pays extra AD probes under locality, immediate does not",
    )
