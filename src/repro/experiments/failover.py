"""``ext-failover``: killing shard primaries under live gateway load.

One replicated demo cluster (2 shards x 1 replica each, paced workers)
sits behind the network gateway with a health-checking supervisor
attached.  The experiment:

1. **saturation probe** — closed-loop clients measure the sustainable
   query rate ``S`` through a wide-open gateway;
2. **chaos phase** — an open-loop population offers ``0.8 x S`` while a
   dedicated writer thread commits paced updates through the router
   (journaling every acked write), and a seeded
   :class:`~repro.cluster.chaos.ChaosInjector` SIGKILLs one primary
   per shard at scheduled instants (plus a short SIGSTOP black-hole on
   a replica for flavor);
3. **quiesce** — after the storm the cluster is refreshed and compared
   *exactly* against an unsharded twin server that replayed the same
   acked-write journal.

The acceptance bar is the point of replication: **zero wrong answers**
ever (stale replica reads must carry a ``degraded`` staleness label,
never silently lie), failover restores non-degraded service within
**2 s** of each kill, at steady state after the last failover window
**>= 99%** of completions are full-fidelity (``ok``/``ok_retry``), the
writer never loses an acked write (twin equivalence), every killed
primary is both replaced by promotion and backfilled by a respawned
replica, and ``close()`` leaves no orphan worker processes behind.

``python -m repro.experiments.failover --json out.json`` writes the
phases, per-kill failover latencies and the journal/twin verdict as
JSON; CI's ``failover-chaos-smoke`` job runs ``--reduced`` (one kill,
shorter windows) and uploads the document as an artifact.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Any

from repro.cluster.chaos import ChaosInjector
from repro.cluster.harness import (
    DOMAIN,
    demo_spec,
    launch_demo,
    live_worker_pids,
)
from repro.cluster.replication import ReplicationConfig
from repro.cluster.rpc import ShardTimeout
from repro.cluster.worker import build_server
from repro.engine.transaction import Transaction, Update
from repro.gateway import (
    AdmissionConfig,
    ClusterBackend,
    GatewayConfig,
    GatewayHandle,
    REJECTION_LABELS,
)
from repro.resilience.degradation import DegradedResult
from repro.workload.clients import (
    LoadReport,
    OpenLoopConfig,
    demo_request_factory,
    exact_percentile,
    run_closed_loop,
    run_open_loop,
)
from .series import TableData

__all__ = [
    "FailoverRun",
    "run_failover",
    "check_acceptance",
    "failover_table",
    "main",
]

#: Wall seconds per modelled millisecond inside each shard worker.
PACING = 2e-4
N_SHARDS = 2
REPLICAS = 1
N_RECORDS = 480
WORKERS = 4
#: Per-request deadline budget during the chaos phase (wall ms).
DEADLINE_MS = 1000.0
#: Offered open-loop rate as a fraction of measured saturation: below
#: the knee, so every non-ok completion is attributable to the faults,
#: not to overload.
LOAD_FRACTION = 0.8
#: A failover must restore non-degraded service within this window.
FAILOVER_WINDOW_S = 2.0
#: Paced writer period: one single-op transaction per tick.
WRITE_PERIOD_S = 0.025

#: Fast-detection supervision so a kill is noticed in a few hundred ms.
CHAOS_REPLICATION = ReplicationConfig(
    replicas=REPLICAS,
    heartbeat_interval_s=0.1,
    heartbeat_timeout_s=0.4,
    suspect_after=1,
    dead_after=2,
    respawn=True,
)

_ALLOWED_OUTCOMES = (
    frozenset(("ok", "ok_retry", "degraded")) | frozenset(REJECTION_LABELS)
)
_SERVED = ("ok", "ok_retry")


class _PacedWriter(threading.Thread):
    """Single-threaded update stream with an acked-write journal.

    Runs beside the open-loop query load and writes *through the
    router* (the path replication guards), journaling ``(key, value)``
    only after the ack returns — so the journal is exactly the set of
    writes the cluster promised to keep, in commit order, and an
    unsharded twin replaying it must reach the identical state.
    ``ShardTimeout`` acks nothing (the commit is ambiguous by
    definition) and is tallied separately; with kill-only faults it
    should never fire.
    """

    def __init__(
        self, router: Any, n_records: int, period_s: float, seed: int
    ) -> None:
        super().__init__(name="failover-writer", daemon=True)
        self.router = router
        self.n_records = n_records
        self.period_s = period_s
        self.seed = seed
        self.journal: list[tuple[int, int]] = []
        self.ambiguous: list[tuple[int, int]] = []
        self.failures: list[str] = []
        self.latencies_ms: list[float] = []
        self._halt = threading.Event()

    def run(self) -> None:
        rng = random.Random(self.seed)
        step = 0
        while not self._halt.is_set():
            key = rng.randrange(self.n_records)
            value = 100_000 + step  # unique per step: replay is auditable
            txn = Transaction.of("r", [Update(key, {"v": value})])
            started = time.monotonic()
            try:
                self.router.apply_update(txn, client="writer")
            except ShardTimeout:
                self.ambiguous.append((key, value))
            except Exception as exc:  # surfaced via acceptance, not raised
                self.failures.append(f"{type(exc).__name__}: {exc}")
            else:
                self.journal.append((key, value))
            self.latencies_ms.append((time.monotonic() - started) * 1000.0)
            step += 1
            self._halt.wait(self.period_s)

    def stop(self) -> None:
        self._halt.set()


@dataclass
class FailoverRun:
    """Everything the chaos phase measured."""

    saturation_rps: float
    offered_rate: float
    deadline_ms: float
    load: LoadReport
    #: Chaos schedule as executed: the injector's event log.
    chaos_events: list[dict[str, Any]]
    #: Per-kill ``{"shard", "at_s", "failover_ms", ...}`` records.
    kills: list[dict[str, Any]]
    #: Full-fidelity fraction after the last failover window closed.
    steady_served_fraction: float
    steady_samples: int
    writer_acked: int
    writer_ambiguous: int
    writer_failures: list[str]
    writer_p99_ms: float | None
    writer_max_ms: float | None
    #: Post-quiesce equivalence vs the unsharded journal-replay twin.
    quiesce_match: bool
    quiesce_detail: str
    #: Per-shard promotion/respawn counters after the storm.
    shard_counters: list[dict[str, int]]
    #: Worker pids alive after close() — must be empty (no orphans).
    orphans: list[int] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "saturation_rps": round(self.saturation_rps, 3),
            "offered_rate": round(self.offered_rate, 3),
            "deadline_ms": self.deadline_ms,
            "load": self.load.to_dict(),
            "chaos_events": self.chaos_events,
            "kills": self.kills,
            "steady_served_fraction": round(self.steady_served_fraction, 5),
            "steady_samples": self.steady_samples,
            "writer_acked": self.writer_acked,
            "writer_ambiguous": self.writer_ambiguous,
            "writer_failures": self.writer_failures[:5],
            "writer_p99_ms": self.writer_p99_ms,
            "writer_max_ms": self.writer_max_ms,
            "quiesce_match": self.quiesce_match,
            "quiesce_detail": self.quiesce_detail,
            "shard_counters": self.shard_counters,
            "orphans": self.orphans,
        }


def _tuples_of(answer: Any) -> list[dict[str, Any]] | None:
    if isinstance(answer, DegradedResult):
        return None
    return sorted(
        (dict(vt.values) for vt in answer), key=lambda d: d["id"]
    )


def _twin_verdict(
    journal: list[tuple[int, int]], router: Any, seed: int, strategy: str
) -> tuple[bool, str]:
    """Replay the acked journal on an unsharded twin and compare exactly."""
    router.refresh_epoch()
    cluster_tuples = _tuples_of(
        router.query("by_a", 0, DOMAIN - 1, client="oracle")
    )
    cluster_total = router.query("total", None, None, client="oracle")
    if cluster_tuples is None or isinstance(cluster_total, DegradedResult):
        return False, "cluster still degraded after refresh_epoch"

    twin = build_server(
        demo_spec(n_records=N_RECORDS, strategy=strategy, seed=seed)
    )
    try:
        for key, value in journal:
            twin.apply_update(
                Transaction.of("r", [Update(key, {"v": value})]),
                client="twin",
            )
        twin.refresh_all_stale()
        twin_tuples = _tuples_of(twin.query("by_a", 0, DOMAIN - 1, client="twin"))
        twin_total = twin.query("total", None, None, client="twin")
    finally:
        twin.shutdown()
    if cluster_total != twin_total:
        return False, f"total: cluster={cluster_total!r} twin={twin_total!r}"
    if cluster_tuples != twin_tuples:
        diff = [
            (c, t) for c, t in zip(cluster_tuples, twin_tuples) if c != t
        ][:3]
        return False, (
            f"by_a diverges on {sum(1 for c, t in zip(cluster_tuples, twin_tuples) if c != t)}"
            f"/{len(twin_tuples)} tuples, e.g. {diff}"
        )
    return True, (
        f"total={cluster_total!r}, {len(cluster_tuples)} tuples identical "
        f"after replaying {len(journal)} acked writes"
    )


def _kill_records(
    events: list[dict[str, Any]],
    chaos_t0: float,
    samples: list[tuple[float, str]],
    window_s: float,
) -> list[dict[str, Any]]:
    """Per-kill failover latency from the completion sample stream.

    Failover latency is the time from the kill instant to the *last*
    non-full-fidelity completion inside the window (service kept
    wobbling that long), or to the first served completion when the
    wobble never shows up at this sampling rate.
    """
    records = []
    for event in events:
        if event["action"] != "kill":
            continue
        t_kill = chaos_t0 + event["t"]
        in_window = [
            (t - t_kill, outcome)
            for t, outcome in samples
            if t_kill <= t < t_kill + window_s
        ]
        bad = [dt for dt, outcome in in_window if outcome not in _SERVED]
        served = [dt for dt, outcome in in_window if outcome in _SERVED]
        if bad:
            failover_ms = max(bad) * 1000.0
        elif served:
            failover_ms = min(served) * 1000.0
        else:
            failover_ms = None  # no traffic completed in the window at all
        records.append({
            "shard": event["shard"],
            "member": event["member"],
            "at_s": round(event["t"], 3),
            "failover_ms": (
                round(failover_ms, 1) if failover_ms is not None else None
            ),
            "window_samples": len(in_window),
            "window_disrupted": len(bad),
        })
    return records


def run_failover(
    duration_s: float = 6.0,
    probe_s: float = 1.5,
    seed: int = 11,
    reduced: bool = False,
    strategy: str = "deferred",
) -> FailoverRun:
    if reduced:
        duration_s = min(duration_s, 3.5)
        probe_s = min(probe_s, 1.0)
    router = launch_demo(
        N_SHARDS,
        strategy=strategy,
        pacing=PACING,
        n_records=N_RECORDS,
        seed=seed,
        rpc_timeout=10.0,
        replication=CHAOS_REPLICATION,
        supervise=True,
    )
    factory = demo_request_factory(
        tuples_view="by_a", total_view="total",
        view_bound=DOMAIN, query_fraction=1.0,
    )
    config = GatewayConfig(
        admission=AdmissionConfig(max_queue=256, client_concurrency=None),
        workers=WORKERS,
    )
    worker_pids: list[int] = []
    try:
        with GatewayHandle.launch(ClusterBackend(router), config) as handle:
            # The writer runs through the probe too, so the measured
            # saturation already pays for write application, delta
            # shipping and supervision — otherwise the chaos phase
            # would be quietly oversubscribed.
            writer = _PacedWriter(
                router, N_RECORDS, WRITE_PERIOD_S, seed=seed + 2
            )
            writer.start()
            saturation = run_closed_loop(
                handle.host, handle.port, factory,
                concurrency=WORKERS, duration_s=probe_s, seed=seed + 1,
            )
            sat_rps = max(saturation.goodput(), 1.0)
            offered = LOAD_FRACTION * sat_rps

            chaos_t0 = time.monotonic()
            with ChaosInjector(router, seed=seed + 3) as injector:
                # One primary kill per shard, spaced out; plus a brief
                # replica black-hole (full mode) so SIGSTOP detection
                # runs under the same load.
                injector.at(1.0, injector.kill_primary, 0)
                if not reduced:
                    injector.at(2.2, injector.kill_primary, 1)

                    def _blackhole_replica() -> None:
                        replicas = router.shards[0].live_replicas()
                        if replicas:
                            injector.delay(replicas[0], 0.3)

                    injector.at(2.8, _blackhole_replica)
                try:
                    load = run_open_loop(
                        handle.host, handle.port,
                        OpenLoopConfig(
                            rate=offered, duration_s=duration_s,
                            deadline_ms=DEADLINE_MS, seed=seed + 4,
                        ),
                        factory,
                    )
                finally:
                    writer.stop()
                    writer.join(timeout=30.0)
                events = list(injector.events)

            kills = _kill_records(
                events, chaos_t0, load.samples, FAILOVER_WINDOW_S
            )
            last_kill_end = max(
                (chaos_t0 + e["t"] + FAILOVER_WINDOW_S
                 for e in events if e["action"] == "kill"),
                default=chaos_t0,
            )
            steady = [
                outcome for t, outcome in load.samples if t >= last_kill_end
            ]
            steady_served = (
                sum(1 for outcome in steady if outcome in _SERVED) / len(steady)
                if steady else 0.0
            )

            quiesce_match, quiesce_detail = _twin_verdict(
                writer.journal, router, seed, strategy
            )
            shard_counters = [
                {
                    "shard": rs.shard_id,
                    "promotions": rs.promotions_total,
                    "respawns": rs.respawns_total,
                    "repairs": rs.repairs_total,
                    "live_members": len(rs.live_members()),
                }
                for rs in router.shards
            ]
            worker_pids = live_worker_pids(router)
    finally:
        router.close()

    import os

    orphans = []
    for pid in worker_pids:
        try:
            os.kill(pid, 0)
        except (ProcessLookupError, PermissionError):
            continue
        orphans.append(pid)

    return FailoverRun(
        saturation_rps=sat_rps,
        offered_rate=offered,
        deadline_ms=DEADLINE_MS,
        load=load,
        chaos_events=events,
        kills=kills,
        steady_served_fraction=steady_served,
        steady_samples=len(steady),
        writer_acked=len(writer.journal),
        writer_ambiguous=len(writer.ambiguous),
        writer_failures=writer.failures,
        writer_p99_ms=exact_percentile(writer.latencies_ms, 0.99),
        writer_max_ms=max(writer.latencies_ms) if writer.latencies_ms else None,
        quiesce_match=quiesce_match,
        quiesce_detail=quiesce_detail,
        shard_counters=shard_counters,
        orphans=orphans,
    )


def check_acceptance(run: FailoverRun) -> list[str]:
    """The failover bar; returns human-readable violations (empty = pass)."""
    violations: list[str] = []
    report = run.load

    if report.wrong:
        violations.append(
            f"{len(report.wrong)} wrong results, e.g. {report.wrong[0]}"
        )
    unknown = set(report.outcomes) - _ALLOWED_OUTCOMES
    if unknown:
        violations.append(
            f"unexpected outcome labels: {sorted(unknown)} "
            "(a kill must surface as retry/degraded/rejection, never error)"
        )
    if not run.kills:
        violations.append("chaos phase recorded no kills — nothing was tested")
    for kill in run.kills:
        if kill["failover_ms"] is None:
            violations.append(
                f"no completions at all within {FAILOVER_WINDOW_S:.0f}s of "
                f"the shard {kill['shard']} kill"
            )
        elif kill["failover_ms"] > FAILOVER_WINDOW_S * 1000.0:
            violations.append(
                f"shard {kill['shard']} failover took "
                f"{kill['failover_ms']:.0f} ms (bar: < "
                f"{FAILOVER_WINDOW_S * 1000:.0f} ms)"
            )
    if run.steady_samples == 0:
        violations.append("no completions after the last failover window")
    elif run.steady_served_fraction < 0.99:
        violations.append(
            f"steady-state full-fidelity fraction "
            f"{run.steady_served_fraction:.1%} (bar: >= 99%)"
        )
    if run.writer_failures:
        violations.append(
            f"{len(run.writer_failures)} writer errors, e.g. "
            f"{run.writer_failures[0]} — primary kills must be transparent "
            "to acked writes"
        )
    if run.writer_ambiguous:
        violations.append(
            f"{run.writer_ambiguous} ambiguous (timed out) writes under "
            "kill-only faults"
        )
    if run.writer_max_ms is not None and (
        run.writer_max_ms > FAILOVER_WINDOW_S * 1000.0
    ):
        violations.append(
            f"slowest write took {run.writer_max_ms:.0f} ms (bar: < "
            f"{FAILOVER_WINDOW_S * 1000:.0f} ms including failover)"
        )
    if not run.quiesce_match:
        violations.append(f"post-quiesce twin mismatch: {run.quiesce_detail}")
    killed_shards = {kill["shard"] for kill in run.kills}
    for counters in run.shard_counters:
        if counters["shard"] in killed_shards:
            if counters["promotions"] < 1:
                violations.append(
                    f"shard {counters['shard']} lost its primary but "
                    "recorded no promotion"
                )
            if counters["respawns"] < 1:
                violations.append(
                    f"shard {counters['shard']} never respawned a "
                    "replacement replica"
                )
        if counters["live_members"] != 1 + REPLICAS:
            violations.append(
                f"shard {counters['shard']} ended with "
                f"{counters['live_members']} live members "
                f"(want {1 + REPLICAS})"
            )
    if run.orphans:
        violations.append(
            f"worker pids survived close(): {run.orphans}"
        )
    return violations


def failover_table(run: FailoverRun | None = None) -> TableData:
    """The ``ext-failover`` artifact: one row per injected kill."""
    if run is None:
        run = run_failover()
    rows = []
    for kill in run.kills:
        counters = next(
            (c for c in run.shard_counters if c["shard"] == kill["shard"]),
            {},
        )
        rows.append((
            f"kill primary s{kill['shard']}",
            f"{kill['at_s']:.1f}",
            _fmt_ms(kill["failover_ms"]),
            kill["window_samples"],
            kill["window_disrupted"],
            counters.get("promotions", 0),
            counters.get("respawns", 0),
            f"{run.steady_served_fraction:.1%}",
            len(run.load.wrong),
        ))
    return TableData(
        table_id="ext-failover",
        title="Primary kills under load: failover latency and fidelity",
        columns=(
            "fault", "at s", "failover ms", "window n", "disrupted",
            "promotions", "respawns", "steady ok", "wrong",
        ),
        rows=tuple(rows),
        notes=(
            f"Open-loop query load at {LOAD_FRACTION:.0%} of measured "
            f"saturation ({run.offered_rate:.0f} of {run.saturation_rps:.0f} "
            "rps) through the gateway while a paced writer commits through "
            "the router; a seeded chaos injector SIGKILLs one primary per "
            "shard. Reads fail over to the most-caught-up replica within "
            "the request deadline (stale replica answers carry a bounded "
            "staleness label), writes promote inline and replay the "
            "retained delta log, and the supervisor respawns replacement "
            f"replicas. Bars: failover < {FAILOVER_WINDOW_S:.0f} s, >= 99% "
            "full-fidelity at steady state, zero wrong answers, exact "
            f"post-quiesce equivalence vs an unsharded twin replaying all "
            f"{run.writer_acked} acked writes "
            f"({'held' if run.quiesce_match else 'FAILED'})."
        ),
    )


def _fmt_ms(value: float | None) -> str:
    return f"{value:.0f}" if value is not None else "-"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="ext-failover: primary kills under live gateway load"
    )
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write phases + verdicts as a JSON document")
    parser.add_argument("--duration", type=float, default=6.0,
                        help="open-loop chaos window in seconds")
    parser.add_argument("--probe", type=float, default=1.5,
                        help="closed-loop saturation probe window in seconds")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--reduced", action="store_true",
                        help="CI smoke mode: one kill, shorter windows")
    args = parser.parse_args(argv)

    run = run_failover(
        duration_s=args.duration, probe_s=args.probe,
        seed=args.seed, reduced=args.reduced,
    )
    table = failover_table(run=run)
    print(table.render())
    violations = check_acceptance(run)
    for violation in violations:
        print(f"ACCEPTANCE VIOLATION: {violation}", file=sys.stderr)
    if args.json:
        from pathlib import Path

        doc = {
            "experiment": "ext-failover",
            "title": table.title,
            "columns": list(table.columns),
            "rows": [list(row) for row in table.rows],
            "notes": table.notes,
            "acceptance_violations": violations,
            "run": run.to_dict(),
        }
        Path(args.json).write_text(json.dumps(doc, indent=2) + "\n")
        print(f"wrote {args.json}")
    return 1 if violations else 0


if __name__ == "__main__":  # pragma: no cover - exercised by CI
    sys.exit(main())
