"""Simulation-vs-model validation (not in the paper; our addition).

Runs every (model, strategy) combination through the simulated engine
at laptop scale and compares the measured average cost per query with
the analytic formula evaluated at the same parameters.  Two checks:

1. **Ratio bands** — measured/analytic must fall inside a documented
   tolerance band.  The simulator is more physical than the 1986 cost
   model (it pays B+-tree descents the formulas ignore, physically
   moves tuples whose clustering attribute changes, and its AD file is
   a real hash file), so bands are generous for the maintenance
   strategies and tight for the pure query plans.
2. **Ordering** — the measured cheapest strategy per model must agree
   with the analytic recommendation at those parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.advisor import evaluate
from repro.core.parameters import Parameters
from repro.core.strategies import Strategy, ViewModel
from repro.workload.runner import run_config
from repro.workload.spec import SCALED_DEFAULTS, ScenarioConfig
from .series import TableData

__all__ = ["ValidationRow", "validate_all", "validation_table", "RATIO_BANDS", "STRATEGIES_BY_MODEL"]

STRATEGIES_BY_MODEL: Mapping[ViewModel, tuple[Strategy, ...]] = {
    ViewModel.SELECT_PROJECT: (
        Strategy.DEFERRED,
        Strategy.IMMEDIATE,
        Strategy.QM_CLUSTERED,
        Strategy.QM_UNCLUSTERED,
        Strategy.QM_SEQUENTIAL,
    ),
    ViewModel.JOIN: (Strategy.DEFERRED, Strategy.IMMEDIATE, Strategy.QM_LOOPJOIN),
    ViewModel.AGGREGATE: (Strategy.DEFERRED, Strategy.IMMEDIATE, Strategy.QM_CLUSTERED),
}

#: Acceptable measured/analytic ratio per strategy class.  Query plans
#: track the formulas closely; materialized maintenance diverges by the
#: physical effects listed in the module docstring.
RATIO_BANDS: Mapping[Strategy, tuple[float, float]] = {
    Strategy.QM_CLUSTERED: (0.5, 3.0),
    Strategy.QM_UNCLUSTERED: (0.6, 1.8),
    Strategy.QM_SEQUENTIAL: (0.7, 1.6),
    Strategy.QM_LOOPJOIN: (0.6, 1.8),
    Strategy.IMMEDIATE: (0.4, 3.0),
    Strategy.DEFERRED: (0.4, 5.0),
}


@dataclass(frozen=True)
class ValidationRow:
    """One combination's measured-vs-analytic comparison."""

    model: ViewModel
    strategy: Strategy
    measured_ms: float
    analytic_ms: float

    @property
    def ratio(self) -> float:
        if self.analytic_ms == 0:
            return float("inf")
        return self.measured_ms / self.analytic_ms

    @property
    def within_band(self) -> bool:
        lo, hi = RATIO_BANDS[self.strategy]
        return lo <= self.ratio <= hi


def validate_all(
    params: Parameters = SCALED_DEFAULTS, seed: int = 7
) -> list[ValidationRow]:
    """Run every combination and collect comparison rows."""
    rows = []
    for model, strategies in STRATEGIES_BY_MODEL.items():
        analytic = evaluate(params, model)
        for strategy in strategies:
            config = ScenarioConfig(params=params, model=model, strategy=strategy, seed=seed)
            result = run_config(config)
            rows.append(
                ValidationRow(
                    model=model,
                    strategy=strategy,
                    measured_ms=result.avg_cost_per_query,
                    analytic_ms=analytic[strategy].total,
                )
            )
    return rows


def orderings_agree(rows: list[ValidationRow], model: ViewModel) -> bool:
    """Does the simulation pick the same winner as the formulas?"""
    subset = [r for r in rows if r.model is model]
    measured_winner = min(subset, key=lambda r: r.measured_ms).strategy
    analytic_winner = min(subset, key=lambda r: r.analytic_ms).strategy
    return measured_winner is analytic_winner


def validation_table(params: Parameters = SCALED_DEFAULTS, seed: int = 7) -> TableData:
    """The full validation report as a table."""
    rows = validate_all(params, seed=seed)
    table_rows = [
        (
            f"Model {int(r.model)}",
            r.strategy.label,
            round(r.measured_ms, 1),
            round(r.analytic_ms, 1),
            round(r.ratio, 2),
            "ok" if r.within_band else "OUT OF BAND",
        )
        for r in rows
    ]
    for model in STRATEGIES_BY_MODEL:
        table_rows.append(
            (
                f"Model {int(model)}",
                "winner agrees?",
                "",
                "",
                "",
                "yes" if orderings_agree(rows, model) else "NO",
            )
        )
    return TableData(
        table_id="sim-validate",
        title="Simulated engine vs analytic cost model (scaled parameters)",
        columns=("model", "strategy", "measured ms/query", "analytic ms", "ratio", "check"),
        rows=tuple(table_rows),
        notes="bands per strategy class; see module docstring for why they differ",
    )
