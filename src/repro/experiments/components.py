"""Component-level validation: each named cost term, measured alone.

The totals validation (`sim-validate`) compares end-to-end costs; this
experiment goes a level deeper and measures the paper's *individual*
cost components on the engine — the view-query scan (``C_query1``),
the deferred refresh (``C_def_refresh``), the AD read (``C_ADread``)
and the screening term (``C_screen``) — each in isolation, against its
closed-form formula at the same parameters.
"""

from __future__ import annotations

from repro.core import model1
from repro.core.parameters import Parameters
from repro.core.strategies import Strategy, ViewModel
from repro.workload.generator import QueryOp, UpdateOp, build_scenario
from repro.workload.spec import SCALED_DEFAULTS, ScenarioConfig
from .series import TableData

__all__ = ["component_validation_table"]


def component_validation_table(
    params: Parameters = SCALED_DEFAULTS, seed: int = 7
) -> TableData:
    """Measure Model 1 deferred components individually vs the formulas.

    Builds the standard deferred scenario, runs its update stream, and
    then drives one refresh+query cycle by hand with meter snapshots
    around each phase: the AD read (``net_changes``), the view update
    (``apply_net``), the base fold (``reset`` — the "normal" update
    cost, reported for context, not compared) and the final view scan.
    """
    config = ScenarioConfig(
        params=params, model=ViewModel.SELECT_PROJECT,
        strategy=Strategy.DEFERRED, seed=seed,
    )
    scenario = build_scenario(config)
    db = scenario.database
    strategy = db.views[scenario.view_name]
    relation = db.relations["r"]
    meter = db.meter

    # Apply exactly one inter-query batch of transactions (k/q of them).
    per_query = max(1, round(params.k / params.q))
    applied = 0
    query_range = None
    for op in scenario.operations:
        if isinstance(op, UpdateOp) and applied < per_query:
            db.apply_transaction(op.txn)
            applied += 1
        elif isinstance(op, QueryOp) and query_range is None:
            query_range = (op.lo, op.hi)
        if applied >= per_query and query_range is not None:
            break
    assert query_range is not None

    db.pool.invalidate_all()
    rows = []

    # --- C_ADread: read the whole AD file ---
    before = meter.snapshot()
    net = relation.net_changes()
    measured_adread = meter.delta_since(before).milliseconds(params)
    rows.append(("C_ADread", round(measured_adread, 1),
                 round(model1.cost_read_ad(params), 1)))

    # --- C_def_refresh: apply the batched changes to the view ---
    before = meter.snapshot()
    strategy.apply_net(net)
    db.pool.flush_all()
    measured_refresh = meter.delta_since(before).milliseconds(params)
    rows.append(("C_def_refresh", round(measured_refresh, 1),
                 round(model1.cost_deferred_refresh(params), 1)))

    # --- base fold (context only: the "normal" update cost) ---
    before = meter.snapshot()
    relation.reset(net)
    db.pool.flush_all()
    measured_fold = meter.delta_since(before).milliseconds(params)
    rows.append(("base fold (context)", round(measured_fold, 1), None))

    # --- C_query1: scan a fraction f_v of the view ---
    db.pool.invalidate_all()
    before = meter.snapshot()
    strategy.query(*query_range)
    measured_query = meter.delta_since(before).milliseconds(params)
    rows.append(("C_query1", round(measured_query, 1),
                 round(model1.cost_query_view(params), 1)))

    # --- C_screen: stage-2 satisfiability tests for the batch.  The
    # engine screens both the old and new version of each update; the
    # formula counts inserted tuples only, so expect measured ≈ 2×.
    stats = strategy.screen.stats
    measured_screen = stats.stage2_tested * params.c1
    rows.append(("C_screen (per query)", round(measured_screen, 1),
                 round(model1.cost_screen(params), 1)))

    table_rows = []
    for name, measured, analytic in rows:
        if analytic is None:
            table_rows.append((name, measured, "-", "-"))
        else:
            ratio = round(measured / analytic, 2) if analytic else float("inf")
            table_rows.append((name, measured, analytic, ratio))
    return TableData(
        table_id="sim-components",
        title="Model 1 deferred components, measured individually vs formulas",
        columns=("component", "measured ms", "analytic ms", "ratio"),
        rows=tuple(table_rows),
        notes="one inter-query batch at scaled parameters; base fold shown "
        "for context (the model treats it as normal update cost). Small "
        "ratios reflect page quantization at laptop scale (the AD file is "
        "one physical page however few tuples it holds) and the engine "
        "screening both versions of each updated tuple",
    )
