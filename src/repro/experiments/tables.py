"""Regeneration of the paper's tables and in-text numeric results."""

from __future__ import annotations

from repro.core.advisor import evaluate
from repro.core.crossover import CrossoverNotFound, find_crossover_p
from repro.core.parameters import PAPER_DEFAULTS, Parameters
from repro.core.sensitivity import SENSITIVE_PARAMETERS, sensitivity
from repro.core.strategies import Strategy, ViewModel
from repro.core.yao import refresh_batching_savings, triangle_inequality_holds, yao
from .series import TableData

__all__ = [
    "parameter_table",
    "cost_breakdown_table",
    "emp_dept_case",
    "yao_accuracy_table",
    "yao_triangle_table",
    "sensitivity_table",
]


def parameter_table(params: Parameters = PAPER_DEFAULTS) -> TableData:
    """Section 3.1's parameter tables: definitions and default values."""
    rows = tuple(
        (name, definition, value) for name, definition, value in params.iter_rows()
    )
    return TableData(
        table_id="params",
        title="Section 3.1 — cost-model parameters (definitions and defaults)",
        columns=("parameter", "definition", "value"),
        rows=rows,
    )


def cost_breakdown_table(
    params: Parameters = PAPER_DEFAULTS, model: ViewModel = ViewModel.SELECT_PROJECT
) -> TableData:
    """Every strategy's cost components at one parameter setting."""
    rows = []
    for strategy, breakdown in evaluate(params, model).items():
        for component, value in breakdown.components.items():
            rows.append((strategy.label, component, round(value, 2)))
        rows.append((strategy.label, "TOTAL", round(breakdown.total, 2)))
    return TableData(
        table_id=f"breakdown-m{int(model)}",
        title=f"Model {int(model)} cost breakdown at P={params.P:.2f}, "
        f"f={params.f}, f_v={params.f_v}",
        columns=("strategy", "component", "ms"),
        rows=tuple(rows),
    )


def emp_dept_case(base: Parameters = PAPER_DEFAULTS) -> TableData:
    """Section 3.5's EMP-DEPT result: big join view, single-tuple queries.

    Modeled as the paper does with ``f = 1``, ``l = 1``,
    ``f_v = 1/N`` (one tuple per query).  The paper reports query
    modification superior for all ``P >= .08``; we report the measured
    crossover for deferred and immediate against nested loops.
    """
    params = base.with_updates(f=1.0, l=1.0, f_v=1.0 / base.N)
    rows = []
    for strategy in (Strategy.DEFERRED, Strategy.IMMEDIATE):
        try:
            p_star = find_crossover_p(
                params, ViewModel.JOIN, strategy, Strategy.QM_LOOPJOIN
            )
        except CrossoverNotFound:
            rows.append((strategy.label, "loopjoin", None, "loopjoin always wins"))
            continue
        rows.append(
            (
                strategy.label,
                "loopjoin",
                round(p_star, 4),
                f"query modification wins for P >= {p_star:.3f}",
            )
        )
    return TableData(
        table_id="emp-dept",
        title="EMP-DEPT special case (f=1, l=1, f_v=1/N): crossover vs loopjoin",
        columns=("materialized strategy", "qm plan", "crossover P", "interpretation"),
        rows=tuple(rows),
        notes="paper: query modification superior for all P >= ~.08",
    )


def yao_triangle_table(
    params: Parameters = PAPER_DEFAULTS,
    batch_sizes: tuple[int, ...] = (10, 50, 200, 1000),
    splits: tuple[int, ...] = (2, 5, 10),
) -> TableData:
    """Section 4's refresh-batching claim, quantified.

    ``y(n,m,a+b) <= y(n,m,a) + y(n,m,b)`` implies refresh-on-demand
    touches no more view pages than refreshing several times; the table
    reports the pages saved by batching for the Model 1 view geometry.
    """
    n = params.view_tuples_model1
    m = params.view_pages_model1
    rows = []
    for batch in batch_sizes:
        for split in splits:
            saved = refresh_batching_savings(n, m, float(batch), split)
            holds = triangle_inequality_holds(n, m, batch / 2.0, batch / 2.0)
            rows.append(
                (
                    batch,
                    split,
                    round(yao(n, m, float(batch)), 2),
                    round(saved, 2),
                    holds,
                )
            )
    return TableData(
        table_id="yao-triangle",
        title="Section 4 — Yao subadditivity: pages saved by deferring refresh",
        columns=(
            "batched changes",
            "eager refreshes",
            "pages (one refresh)",
            "pages saved vs eager",
            "triangle holds",
        ),
        rows=tuple(rows),
        notes="savings >= 0 everywhere: refresh-on-demand never loses",
    )


def yao_accuracy_table(
    blocking_factors: tuple[int, ...] = (2, 5, 10, 40),
    pages: int = 100,
    k_fractions: tuple[float, ...] = (0.01, 0.05, 0.2, 0.5),
) -> TableData:
    """Appendix B's accuracy claim: Cardenas ≈ exact for n/m > 10.

    For each blocking factor, reports the worst relative error of the
    approximation over a sweep of access counts.
    """
    from repro.core.yao import yao_cardenas, yao_exact

    rows = []
    for blocking in blocking_factors:
        n = pages * blocking
        worst = 0.0
        for fraction in k_fractions:
            k = max(1, round(fraction * n))
            exact = yao_exact(n, pages, k)
            approx = yao_cardenas(n, pages, k)
            if exact > 0:
                worst = max(worst, abs(approx - exact) / exact)
        rows.append((blocking, n, pages, f"{worst:.3%}"))
    return TableData(
        table_id="yao-accuracy",
        title="Appendix B — Cardenas approximation error vs blocking factor",
        columns=("blocking factor n/m", "records n", "blocks m", "worst relative error"),
        rows=tuple(rows),
        notes="the paper: 'very close if the blocking factor is large (e.g. n/m > 10)'",
    )


def sensitivity_table(
    base: Parameters = PAPER_DEFAULTS, model: ViewModel = ViewModel.SELECT_PROJECT
) -> TableData:
    """The conclusion's five sensitive parameters, quantified.

    Cost elasticity (d log cost / d log parameter) of each strategy at
    the default point, for each parameter Section 4 names.
    """
    base_values = {"P": base.P, "f": base.f, "f_v": base.f_v, "l": base.l, "c3": base.c3}
    rows = []
    for name in SENSITIVE_PARAMETERS:
        result = sensitivity(base, model, name, base_values[name])
        for strategy, elasticity in sorted(
            result.elasticities.items(), key=lambda kv: kv[0].value
        ):
            rows.append((name, strategy.label, round(elasticity, 3)))
        rows.append(
            (
                name,
                "winner flips?",
                f"{result.winner_before.label}->{result.winner_after.label}"
                if result.flips_winner
                else "no",
            )
        )
    return TableData(
        table_id="sensitivity",
        title=f"Conclusion — parameter sensitivity (Model {int(model)} elasticities)",
        columns=("parameter", "strategy", "elasticity (dlog cost/dlog x)"),
        rows=tuple(rows),
    )
