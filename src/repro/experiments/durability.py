"""``ext-durability``: what journaling, checkpoints and recovery cost.

The paper's cost model prices query and maintenance work; this
experiment prices *surviving a crash*.  For each strategy the fixture
workload from :mod:`repro.durability.faults` is driven with the WAL
armed and a mid-run checkpoint, then the state directory is reopened
cold and the :class:`~repro.durability.recovery.RecoveryReport` is
compared against rebuilding the same database from scratch.

Two claims are tabulated:

* journaling is free in *modelled* I/O — the WAL writes real bytes to
  the host filesystem, not pages through the simulated
  :class:`~repro.storage.pager.BufferPool`; the small residual
  "journal overhead" in the table is the checkpoint capture scan
  cycling the buffer pool (post-checkpoint reads re-fault pages the
  bare run still had cached), not the log itself;
* recovery is cheaper than a rebuild — restoring the checkpoint image
  plus replaying the WAL tail (deferred views re-install net A/D sets
  through the differential-refresh path, never a recompute) costs a
  fraction of re-running bootstrap plus the full transaction history.

``python -m repro.experiments.durability --json out.json`` writes the
runs as JSON; CI uploads that file as the ``ext-durability`` artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.core.parameters import Parameters
from repro.core.strategies import Strategy
from repro.durability.faults import (
    ENGINE_CONFIG,
    _QUERY_RANGE,
    _view_names,
    build_database,
    make_workload,
)
from repro.durability.manager import DurabilityManager
from .series import TableData

__all__ = [
    "DurabilityRun",
    "run_durability_probe",
    "run_durability_comparison",
    "durability_table",
    "main",
]

_STRATEGIES = (Strategy.QM_CLUSTERED, Strategy.IMMEDIATE, Strategy.DEFERRED)


@dataclass(frozen=True)
class DurabilityRun:
    """One strategy's journaled run, its recovery, and its rebuild twin."""

    strategy: str
    transactions: int
    #: Modelled cost of the workload with the WAL armed.
    journaled_ms: float
    #: Modelled cost of the identical workload with no durability.
    bare_ms: float
    wal_records: int
    wal_bytes: int
    fsyncs: int
    checkpoint_bytes: int
    #: Modelled cost of restoring the checkpoint image.
    restore_ms: float
    replay_records: int
    #: Modelled cost of replaying the WAL tail.
    replay_ms: float
    #: Modelled cost of bootstrap + full history, i.e. recovery's rival.
    rebuild_ms: float
    full_recomputes_during_replay: int

    @property
    def recovery_ms(self) -> float:
        return self.restore_ms + self.replay_ms

    @property
    def journaling_overhead_ms(self) -> float:
        return self.journaled_ms - self.bare_ms


def _drive(db, strategy: Strategy, txns, query_every: int) -> None:
    views = _view_names(strategy)
    for i, txn in enumerate(txns):
        db.apply_transaction(txn)
        if query_every and i % query_every == 0:
            for view in views:
                db.query_view(view, *_QUERY_RANGE)


def _total_ms(db, params: Parameters) -> float:
    return db.meter.setup_milliseconds(params) + db.meter.milliseconds(params)


def run_durability_probe(
    strategy: Strategy,
    transactions: int = 60,
    seed: int = 7,
    checkpoint_at: int = 30,
    query_every: int = 7,
    params: Parameters | None = None,
) -> DurabilityRun:
    """Journaled run + cold recovery + bare/rebuild twins for one strategy."""
    params = params or Parameters()
    txns = make_workload(seed, transactions)

    with tempfile.TemporaryDirectory(prefix="repro-ext-durability-") as tmp:
        state_dir = Path(tmp)

        # Journaled run: bootstrap, baseline checkpoint, seeded workload
        # with one mid-run checkpoint, graceful close.
        manager = DurabilityManager(state_dir)
        manager.save_config(ENGINE_CONFIG)
        db = build_database(strategy, manager)
        manager.checkpoint(db)
        db.reset_meter()
        _drive(db, strategy, txns[:checkpoint_at], query_every)
        info = manager.checkpoint(db)
        _drive(db, strategy, txns[checkpoint_at:], query_every)
        journaled_ms = _total_ms(db, params)
        stats = manager.stats()
        manager.close()

        # Cold recovery of the directory the journaled run left behind.
        recovered_manager = DurabilityManager(state_dir)
        _, report, _ = recovered_manager.open()
        recovered_manager.close()

    # Bare twin: byte-identical workload, no durability attached.
    bare = build_database(strategy)
    bare.reset_meter()
    _drive(bare, strategy, txns, query_every)
    bare_ms = _total_ms(bare, params)

    # Rebuild twin: what recovery avoids — bootstrap plus full history.
    rebuild = build_database(strategy)
    _drive(rebuild, strategy, txns, query_every)
    rebuild_ms = _total_ms(rebuild, params)

    return DurabilityRun(
        strategy=strategy.value,
        transactions=transactions,
        journaled_ms=journaled_ms,
        bare_ms=bare_ms,
        wal_records=stats["wal_records"],
        wal_bytes=stats["wal_bytes"],
        fsyncs=stats["wal_fsyncs"],
        checkpoint_bytes=info.bytes_written,
        restore_ms=report.restore_milliseconds(params),
        replay_records=report.replay_records,
        replay_ms=report.replay_milliseconds(params),
        rebuild_ms=rebuild_ms,
        full_recomputes_during_replay=report.full_recomputes_during_replay,
    )


def run_durability_comparison(
    transactions: int = 60, seed: int = 7
) -> tuple[DurabilityRun, ...]:
    return tuple(
        run_durability_probe(strategy, transactions=transactions, seed=seed)
        for strategy in _STRATEGIES
    )


def durability_table(
    transactions: int = 60,
    seed: int = 7,
    runs: tuple[DurabilityRun, ...] | None = None,
) -> TableData:
    """The ``ext-durability`` artifact: durability overhead per strategy."""
    if runs is None:
        runs = run_durability_comparison(transactions=transactions, seed=seed)
    rows = []
    for run in runs:
        ratio = run.recovery_ms / run.rebuild_ms if run.rebuild_ms else 0.0
        rows.append((
            run.strategy,
            run.transactions,
            round(run.journaled_ms, 0),
            round(run.journaling_overhead_ms, 1),
            run.wal_records,
            round(run.wal_bytes / 1024, 1),
            run.fsyncs,
            round(run.checkpoint_bytes / 1024, 1),
            round(run.restore_ms, 1),
            run.replay_records,
            round(run.replay_ms, 1),
            round(run.rebuild_ms, 0),
            f"{ratio:.2f}x",
            run.full_recomputes_during_replay,
        ))
    return TableData(
        table_id="ext-durability",
        title="Durability overhead and recovery cost per strategy",
        columns=(
            "strategy", "txns", "workload ms", "journal overhead ms",
            "wal recs", "wal KiB", "fsyncs", "ckpt KiB",
            "restore ms", "replayed", "replay ms",
            "rebuild ms", "recovery/rebuild", "recomputes",
        ),
        rows=tuple(rows),
        notes=(
            "Seeded fixture workload from repro.durability.faults with a "
            "mid-run checkpoint; 'workload ms' is metered with the WAL "
            "armed and 'journal overhead ms' is its delta vs the same run "
            "bare — the WAL writes host bytes, not simulated pages, so "
            "the residue is the checkpoint capture scan cycling the "
            "buffer pool. Recovery = restore + replay in CostMeter units; "
            "'rebuild ms' re-runs bootstrap plus the full history. "
            "'recomputes' counts matview bulk-loads/rebuilds during "
            "replay — deferred views must recover via net-change "
            "installation, so it must be 0."
        ),
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="ext-durability: durability overhead per strategy"
    )
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write runs + table as a JSON document")
    parser.add_argument("--transactions", type=int, default=60)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    runs = run_durability_comparison(
        transactions=args.transactions, seed=args.seed
    )
    table = durability_table(runs=runs)
    print(table.render())
    if args.json:
        doc = {
            "experiment": "ext-durability",
            "title": table.title,
            "columns": list(table.columns),
            "rows": [list(row) for row in table.rows],
            "notes": table.notes,
            "runs": [
                {**asdict(run), "recovery_ms": run.recovery_ms}
                for run in runs
            ],
        }
        Path(args.json).write_text(json.dumps(doc, indent=2) + "\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised by CI
    sys.exit(main())
