"""``ext-service``: adaptive strategy routing under a drifting workload.

The paper compares strategies at *fixed* workload parameters; its
conclusion is a decision procedure.  This experiment runs the decision
procedure live: the same seeded request stream — an update-light phase
followed by an update-heavy one — is replayed against the two-view demo
server once per static strategy and once with the adaptive router on,
and the measured total cost per query is tabulated.

The claim being checked (asserted by ``benchmarks/test_bench_service.py``):
the adaptive run must beat the worst static strategy outright and land
within 15% of the best static strategy chosen in hindsight, while
performing at least one mid-run migration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.strategies import Strategy
from repro.service.cli import DEFAULT_PHASES, parse_phases
from repro.service.router import RouterConfig
from repro.service.traffic import PhaseSpec, demo_server, drifting_traffic, run_traffic
from .series import TableData

__all__ = ["ServingRun", "run_serving_comparison", "adaptive_serving_table"]

#: Static baselines the adaptive run is compared against.
STATIC_STRATEGIES = (Strategy.DEFERRED, Strategy.IMMEDIATE, Strategy.QM_CLUSTERED)


@dataclass(frozen=True)
class ServingRun:
    """One replay of the drifting workload under one serving mode."""

    mode: str
    queries: int
    updates: int
    total_ms: float
    switches: tuple[str, ...]

    @property
    def ms_per_query(self) -> float:
        return self.total_ms / self.queries if self.queries else 0.0


def _replay(
    strategy: Strategy,
    adaptive: bool,
    phases: tuple[PhaseSpec, ...],
    seed: int,
    decision_every: int,
) -> ServingRun:
    demo = demo_server(
        seed=seed,
        strategy=strategy,
        adaptive=adaptive,
        router_config=RouterConfig(decision_every=decision_every),
    )
    requests = drifting_traffic(demo, phases, seed=seed + 1)
    summary = run_traffic(demo.server, requests)
    switches: tuple[str, ...] = ()
    if demo.server.router is not None:
        switches = tuple(
            f"{sw.view}: {sw.from_strategy.label} -> {sw.to_strategy.label} "
            f"@ op {sw.at_operation} (P~{sw.estimated_p:.2f})"
            for sw in demo.server.router.switches
        )
    return ServingRun(
        mode="adaptive" if adaptive else f"static {strategy.label}",
        queries=summary.queries,
        updates=summary.updates,
        total_ms=demo.database.meter.milliseconds(demo.server.params),
        switches=switches,
    )


def run_serving_comparison(
    phases: tuple[PhaseSpec, ...] | None = None,
    seed: int = 7,
    decision_every: int = 20,
) -> tuple[ServingRun, ...]:
    """Replay one stream under every static strategy plus the router.

    The adaptive run comes last; all runs see byte-identical traffic
    (same seeds), so their measured totals are directly comparable.
    """
    phases = phases or parse_phases(DEFAULT_PHASES)
    runs = [
        _replay(strategy, False, phases, seed, decision_every)
        for strategy in STATIC_STRATEGIES
    ]
    runs.append(_replay(Strategy.DEFERRED, True, phases, seed, decision_every))
    return tuple(runs)


def adaptive_serving_table(
    phases: tuple[PhaseSpec, ...] | None = None,
    seed: int = 7,
) -> TableData:
    """The ``ext-service`` artifact: adaptive vs static serving cost."""
    phases = phases or parse_phases(DEFAULT_PHASES)
    runs = run_serving_comparison(phases, seed=seed)
    statics = [r for r in runs if r.mode != "adaptive"]
    adaptive = next(r for r in runs if r.mode == "adaptive")
    best = min(statics, key=lambda r: r.ms_per_query)
    worst = max(statics, key=lambda r: r.ms_per_query)

    rows = []
    for run in runs:
        vs_best = run.ms_per_query / best.ms_per_query if best.ms_per_query else 0.0
        rows.append((
            run.mode,
            run.queries,
            run.updates,
            round(run.total_ms, 0),
            round(run.ms_per_query, 1),
            f"{vs_best:.2f}x",
            "; ".join(run.switches) if run.switches else "-",
        ))

    phase_text = ", ".join(
        f"P={ph.update_probability:g} x{ph.operations} (l={ph.batch_size})"
        for ph in phases
    )
    return TableData(
        table_id="ext-service",
        title="Adaptive strategy routing vs static strategies (drifting P)",
        columns=("mode", "queries", "updates", "total ms",
                 "ms/query", "vs best static", "migrations"),
        rows=tuple(rows),
        notes=(
            f"Phases: {phase_text}; identical seeded traffic per run. "
            f"Best static in hindsight: {best.mode} "
            f"({best.ms_per_query:.1f} ms/query); worst: {worst.mode} "
            f"({worst.ms_per_query:.1f}). The router re-runs the advisor on "
            "decayed live statistics and migrates views mid-run."
        ),
    )
