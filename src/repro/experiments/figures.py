"""Regeneration of every figure in the paper (Figures 1-9).

Each ``figure*`` function evaluates the analytic cost model over the
same sweep the paper plots and returns the raw data
(:class:`~repro.experiments.series.FigureData` for curve figures,
:class:`~repro.core.regions.RegionMap` for the best-strategy region
maps of Figures 2-4 and 6-7).
"""

from __future__ import annotations

from typing import Sequence

from repro.core import model1, model2, model3
from repro.core.crossover import equal_cost_curve
from repro.core.parameters import PAPER_DEFAULTS, Parameters
from repro.core.regions import RegionMap, compute_region_map, linspace
from repro.core.strategies import Strategy, ViewModel
from .series import FigureData

__all__ = [
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure4_c3_sweep",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "DEFAULT_P_SWEEP",
]

DEFAULT_P_SWEEP = tuple(p / 100 for p in range(2, 99, 2))

_MODEL1_REGION_STRATEGIES = (
    Strategy.DEFERRED,
    Strategy.IMMEDIATE,
    Strategy.QM_CLUSTERED,
)
_MODEL2_REGION_STRATEGIES = (
    Strategy.DEFERRED,
    Strategy.IMMEDIATE,
    Strategy.QM_LOOPJOIN,
)


def figure1(
    base: Parameters = PAPER_DEFAULTS, p_values: Sequence[float] = DEFAULT_P_SWEEP
) -> FigureData:
    """Figure 1: Model 1 cost per query vs update probability ``P``.

    Curves: deferred, immediate, clustered, unclustered (sequential is
    off the paper's scale and omitted, as in the original).
    """
    rows = []
    for p in p_values:
        params = base.with_update_probability(p)
        totals = model1.all_totals(params)
        rows.append(
            {
                "deferred": totals[Strategy.DEFERRED].total,
                "immediate": totals[Strategy.IMMEDIATE].total,
                "clustered": totals[Strategy.QM_CLUSTERED].total,
                "unclustered": totals[Strategy.QM_UNCLUSTERED].total,
            }
        )
    return FigureData(
        figure_id="fig1",
        title="Figure 1 — Model 1: average cost per view query vs P",
        x_label="P",
        y_label="cost (ms)",
        x_values=tuple(p_values),
        rows=tuple(rows),
        notes="sequential scan omitted (off scale), as in the paper",
    )


def _model1_regions(
    base: Parameters, resolution: int, f_range: tuple[float, float] = (0.02, 1.0)
) -> RegionMap:
    return compute_region_map(
        base,
        ViewModel.SELECT_PROJECT,
        p_values=linspace(0.02, 0.98, resolution),
        f_values=linspace(f_range[0], f_range[1], resolution),
        strategies=_MODEL1_REGION_STRATEGIES,
    )


def figure2(base: Parameters = PAPER_DEFAULTS, resolution: int = 25) -> RegionMap:
    """Figure 2: Model 1 best-strategy regions, f vs P (f_v = .1)."""
    return _model1_regions(base.with_updates(f_v=0.1), resolution)


def figure3(base: Parameters = PAPER_DEFAULTS, resolution: int = 25) -> RegionMap:
    """Figure 3: Model 1 regions with smaller queries (f_v = .01)."""
    return _model1_regions(base.with_updates(f_v=0.01), resolution)


def figure4(base: Parameters = PAPER_DEFAULTS, resolution: int = 25) -> RegionMap:
    """Figure 4: Model 1 regions with doubled A/D overhead (c3 = 2).

    The paper reports a (thin) region where deferred becomes best.  With
    the printed ``C_overhead = c3*2*f*l*(k/q)`` our deferred-best sliver
    appears around ``c3 ≈ 4`` instead (see EXPERIMENTS.md);
    :func:`figure4_c3_sweep` quantifies the shift.
    """
    return _model1_regions(base.with_updates(c3=2.0, f_v=0.1), resolution)


def figure4_c3_sweep(
    base: Parameters = PAPER_DEFAULTS,
    c3_values: Sequence[float] = (1.0, 2.0, 4.0, 8.0),
    resolution: int = 25,
) -> FigureData:
    """Companion to Figure 4: deferred's region area as ``c3`` grows."""
    rows = []
    for c3 in c3_values:
        region = _model1_regions(base.with_updates(c3=c3, f_v=0.1), resolution)
        rows.append(
            {
                "deferred": region.area_fraction(Strategy.DEFERRED),
                "immediate": region.area_fraction(Strategy.IMMEDIATE),
                "clustered": region.area_fraction(Strategy.QM_CLUSTERED),
            }
        )
    return FigureData(
        figure_id="fig4-c3",
        title="Figure 4 companion — best-strategy area fraction vs c3 (Model 1)",
        x_label="c3 (ms)",
        y_label="area fraction",
        x_values=tuple(c3_values),
        rows=tuple(rows),
        notes="raising the A/D maintenance overhead grows deferred's region",
    )


def figure5(
    base: Parameters = PAPER_DEFAULTS, p_values: Sequence[float] = DEFAULT_P_SWEEP
) -> FigureData:
    """Figure 5: Model 2 cost per query vs ``P`` (deferred/immediate/loopjoin)."""
    rows = []
    for p in p_values:
        params = base.with_update_probability(p)
        totals = model2.all_totals2(params)
        rows.append(
            {
                "deferred": totals[Strategy.DEFERRED].total,
                "immediate": totals[Strategy.IMMEDIATE].total,
                "loopjoin": totals[Strategy.QM_LOOPJOIN].total,
            }
        )
    return FigureData(
        figure_id="fig5",
        title="Figure 5 — Model 2: average cost per view query vs P",
        x_label="P",
        y_label="cost (ms)",
        x_values=tuple(p_values),
        rows=tuple(rows),
    )


def _model2_regions(base: Parameters, resolution: int) -> RegionMap:
    return compute_region_map(
        base,
        ViewModel.JOIN,
        p_values=linspace(0.02, 0.98, resolution),
        f_values=linspace(0.02, 1.0, resolution),
        strategies=_MODEL2_REGION_STRATEGIES,
    )


def figure6(base: Parameters = PAPER_DEFAULTS, resolution: int = 25) -> RegionMap:
    """Figure 6: Model 2 best-strategy regions, f vs P (f_v = .1)."""
    return _model2_regions(base.with_updates(f_v=0.1), resolution)


def figure7(base: Parameters = PAPER_DEFAULTS, resolution: int = 25) -> RegionMap:
    """Figure 7: Model 2 regions with smaller queries (f_v = .01)."""
    return _model2_regions(base.with_updates(f_v=0.01), resolution)


def figure8(
    base: Parameters = PAPER_DEFAULTS,
    l_values: Sequence[float] = (1, 2, 5, 10, 25, 50, 100, 200, 400),
) -> FigureData:
    """Figure 8: Model 3 aggregate cost vs transaction size ``l``.

    For small ``l`` maintaining the aggregate costs a small percentage
    of recomputing it with a clustered scan.
    """
    rows = []
    for l in l_values:
        params = base.with_updates(l=float(l))
        totals = model3.all_totals3(params)
        rows.append(
            {
                "deferred": totals[Strategy.DEFERRED].total,
                "immediate": totals[Strategy.IMMEDIATE].total,
                "clustered": totals[Strategy.QM_CLUSTERED].total,
            }
        )
    return FigureData(
        figure_id="fig8",
        title="Figure 8 — Model 3: aggregate query cost vs l",
        x_label="l (tuples per transaction)",
        y_label="cost (ms)",
        x_values=tuple(float(l) for l in l_values),
        rows=tuple(rows),
        notes="clustered = recompute from scratch with a clustered index scan",
    )


def figure9(
    base: Parameters = PAPER_DEFAULTS,
    f_values: Sequence[float] = (0.05, 0.1, 0.25, 0.5, 1.0),
    l_values: Sequence[float] = (1, 5, 25, 100, 500, 2_500, 10_000, 50_000, 200_000),
) -> FigureData:
    """Figure 9: equal-cost curves of immediate vs clustered recompute.

    For each ``f``, the curve gives the update probability ``P`` at
    which immediate aggregate maintenance and standard clustered-scan
    processing cost the same, as ``l`` sweeps.  Standard processing is
    best above a curve; immediate maintenance below.  Points where
    maintenance wins for every ``P`` are left empty.
    """
    rows: list[dict[str, float | None]] = [dict() for _ in l_values]
    for f in f_values:
        params = base.with_updates(f=f)
        curve = equal_cost_curve(
            params,
            ViewModel.AGGREGATE,
            Strategy.IMMEDIATE,
            Strategy.QM_CLUSTERED,
            x_values=l_values,
            apply_x=lambda p, l: p.with_updates(l=float(l)),
        )
        for i, point in enumerate(curve):
            rows[i][f"f={f:g}"] = point.p
    return FigureData(
        figure_id="fig9",
        title="Figure 9 — Model 3: equal-cost curves (P vs l) for several f",
        x_label="l (tuples per transaction)",
        y_label="P at equal cost",
        x_values=tuple(float(l) for l in l_values),
        rows=tuple(rows),
        notes=(
            "standard processing best above each curve; immediate below. "
            "Maintained aggregates are so cheap that for realistic l the "
            "curves hug P≈1 (cost savings in significantly more cases than "
            "other views, as the paper concludes); larger f lifts the curve."
        ),
    )
