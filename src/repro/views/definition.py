"""View definitions: the three structures of Section 3.1.

A view definition is declarative — it names base relations, a
predicate, projections and (for Model 3) an aggregate — and knows how
to *evaluate itself from scratch* over in-memory record collections.
The maintenance strategies and the delta algebra
(:mod:`repro.views.delta`) use the same definition objects, so
"recompute" and "incrementally maintain" are guaranteed to describe the
same view.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from repro.storage.tuples import Record
from .aggregates import AggregateFunction, make_aggregate
from .predicate import Predicate, TruePredicate

__all__ = [
    "ViewTuple",
    "SelectProjectView",
    "JoinView",
    "AggregateView",
    "ViewDefinitionError",
]


class ViewDefinitionError(ValueError):
    """A view definition is internally inconsistent."""


class ViewTuple:
    """A projected result tuple — hashable by value for duplicate counts.

    Identity (the sorted item tuple) and the hash derived from it are
    computed lazily and cached: query results build many view tuples
    that are returned to the caller without ever being hashed or
    stored, and the batch apply path calls :meth:`identity` repeatedly
    on the same tuple.
    """

    __slots__ = ("values", "_hash", "_identity")

    def __init__(self, values: Mapping[str, Any]) -> None:
        object.__setattr__(self, "values", dict(values))
        object.__setattr__(self, "_hash", None)
        object.__setattr__(self, "_identity", None)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("ViewTuple is immutable")

    def __getitem__(self, field: str) -> Any:
        return self.values[field]

    def get(self, field: str, default: Any = None) -> Any:
        """Field access with a default (dict.get semantics)."""
        return self.values.get(field, default)

    def identity(self) -> tuple:
        """Canonical sortable identity used as a storage key."""
        identity = self._identity
        if identity is None:
            identity = tuple(sorted(self.values.items()))
            object.__setattr__(self, "_identity", identity)
        return identity

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ViewTuple):
            return NotImplemented
        return self.values == other.values

    def __hash__(self) -> int:
        value = self._hash
        if value is None:
            value = hash(self.identity())
            object.__setattr__(self, "_hash", value)
        return value

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in sorted(self.values.items()))
        return f"ViewTuple({inner})"


@dataclass(frozen=True)
class SelectProjectView:
    """Model 1: ``V = pi_projection(sigma_predicate(R))``.

    ``view_key`` is the projected field the materialized copy is
    clustered on (the paper clusters the view on the field used in the
    view predicate).
    """

    name: str
    relation: str
    predicate: Predicate
    projection: tuple[str, ...]
    view_key: str

    def __post_init__(self) -> None:
        if not self.projection:
            raise ViewDefinitionError(f"view {self.name!r} projects no fields")
        if self.view_key not in self.projection:
            raise ViewDefinitionError(
                f"view key {self.view_key!r} must be projected in {self.name!r}"
            )

    def fields_read(self) -> frozenset[str]:
        """Fields the definition reads (predicate + projection): RIU set."""
        return self.predicate.fields_read() | frozenset(self.projection)

    def project(self, record: Record) -> ViewTuple:
        """Project one base tuple to its view tuple."""
        return ViewTuple({f: record[f] for f in self.projection})

    def evaluate(self, records: Iterable[Record]) -> list[ViewTuple]:
        """Compute the view from scratch (duplicates preserved)."""
        return [self.project(r) for r in records if self.predicate.matches(r)]


@dataclass(frozen=True)
class JoinView:
    """Model 2: natural join of ``outer`` and ``inner`` on a key field.

    ``predicate`` restricts the outer relation (the paper's ``C_f``
    clause with selectivity ``f``); the join is on
    ``outer.join_field = inner.join_field`` where the join field is a
    key of the inner relation (each outer tuple joins at most one inner
    tuple).  Half of each side's attributes are projected.
    """

    name: str
    outer: str
    inner: str
    join_field: str
    predicate: Predicate
    outer_projection: tuple[str, ...]
    inner_projection: tuple[str, ...]
    view_key: str

    def __post_init__(self) -> None:
        if not self.outer_projection and not self.inner_projection:
            raise ViewDefinitionError(f"join view {self.name!r} projects no fields")
        overlap = set(self.outer_projection) & set(self.inner_projection)
        if overlap - {self.join_field}:
            raise ViewDefinitionError(
                f"join view {self.name!r}: ambiguous projected fields {sorted(overlap)}"
            )
        projected = set(self.outer_projection) | set(self.inner_projection)
        if self.view_key not in projected:
            raise ViewDefinitionError(
                f"view key {self.view_key!r} must be projected in {self.name!r}"
            )

    def fields_read(self) -> frozenset[str]:
        """Outer-side fields the definition reads (RIU set for R1 updates)."""
        return (
            self.predicate.fields_read()
            | frozenset(self.outer_projection)
            | frozenset((self.join_field,))
        )

    def combine(self, outer_record: Record, inner_record: Record) -> ViewTuple:
        """Build the result tuple for one joining pair."""
        values = {f: outer_record[f] for f in self.outer_projection}
        values.update({f: inner_record[f] for f in self.inner_projection})
        return ViewTuple(values)

    def evaluate(
        self, outer_records: Iterable[Record], inner_records: Iterable[Record]
    ) -> list[ViewTuple]:
        """Compute the join view from scratch (hash join in memory)."""
        by_key: dict[Any, list[Record]] = {}
        for inner in inner_records:
            by_key.setdefault(inner[self.join_field], []).append(inner)
        result = []
        for outer in outer_records:
            if not self.predicate.matches(outer):
                continue
            for inner in by_key.get(outer[self.join_field], ()):
                result.append(self.combine(outer, inner))
        return result


@dataclass(frozen=True)
class AggregateView:
    """Model 3: an aggregate over a Model-1-style selection.

    ``aggregate`` is the function name (count/sum/avg/min/max);
    ``field`` is the aggregated attribute (ignored by count).
    """

    name: str
    relation: str
    predicate: Predicate
    aggregate: str
    field: str

    def function(self) -> AggregateFunction:
        """Instantiate the aggregate function."""
        return make_aggregate(self.aggregate)

    def fields_read(self) -> frozenset[str]:
        """Fields the definition reads (predicate + aggregated field)."""
        return self.predicate.fields_read() | frozenset((self.field,))

    def evaluate(self, records: Iterable[Record]) -> Any:
        """Compute the aggregate from scratch."""
        function = self.function()
        state = function.initial_state()
        for record in records:
            if self.predicate.matches(record):
                function.insert(state, record[self.field])
        return function.value(state)


def unrestricted(name: str, relation: str, projection: tuple[str, ...], view_key: str) -> SelectProjectView:
    """Convenience: a projection-only view (``f = 1``)."""
    return SelectProjectView(
        name=name,
        relation=relation,
        predicate=TruePredicate(),
        projection=projection,
        view_key=view_key,
    )
