"""Incrementally maintainable aggregates (Model 3, Section 3.6).

An aggregate is defined by a *state*, update functions for insertion
and deletion of values, and a finalizer from state to value.  Sum,
count and average (the paper's examples) are fully incremental; min and
max are provided as an extension using a value-multiset state, since a
bare running minimum cannot survive deletion of the current minimum.

States are small (the paper: "normally requires less than one disk
block"), serializable mappings so :class:`~repro.views.matview
.AggregateStateStore` can persist them in a single page.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import Counter
from typing import Any, Iterable

__all__ = [
    "AggregateFunction",
    "CountAggregate",
    "SumAggregate",
    "AverageAggregate",
    "MinAggregate",
    "MaxAggregate",
    "make_aggregate",
    "AGGREGATE_NAMES",
]


class AggregateFunction(ABC):
    """Defines one incrementally maintainable aggregate.

    Implementations are stateless; the state itself is a plain dict so
    it can be stored on a page and inspected in tests.
    """

    name: str = "aggregate"

    @abstractmethod
    def initial_state(self) -> dict[str, Any]:
        """State of the aggregate over the empty set."""

    @abstractmethod
    def insert(self, state: dict[str, Any], value: Any) -> None:
        """Fold one inserted value into the state, in place."""

    @abstractmethod
    def delete(self, state: dict[str, Any], value: Any) -> None:
        """Remove one previously inserted value from the state, in place."""

    @abstractmethod
    def value(self, state: dict[str, Any]) -> Any:
        """Current aggregate value (None over the empty set)."""

    def insert_many(self, state: dict[str, Any], values: Iterable[Any]) -> None:
        """Fold many inserted values at once (batch apply path).

        Equivalent to inserting each value in order; concrete
        aggregates override with whole-column folds.
        """
        for value in values:
            self.insert(state, value)

    def delete_many(self, state: dict[str, Any], values: Iterable[Any]) -> None:
        """Remove many values at once; equivalent to per-value deletes."""
        for value in values:
            self.delete(state, value)

    def merge(self, state: dict[str, Any], other: dict[str, Any]) -> None:
        """Fold another state into ``state`` (default: not supported)."""
        raise NotImplementedError(f"{self.name} does not support merge")


class CountAggregate(AggregateFunction):
    """``count(*)`` over the selected set."""

    name = "count"

    def initial_state(self) -> dict[str, Any]:
        return {"count": 0}

    def insert(self, state: dict[str, Any], value: Any) -> None:
        state["count"] += 1

    def delete(self, state: dict[str, Any], value: Any) -> None:
        if state["count"] <= 0:
            raise ValueError("count aggregate underflow: delete without insert")
        state["count"] -= 1

    def insert_many(self, state: dict[str, Any], values: Iterable[Any]) -> None:
        state["count"] += len(values) if isinstance(values, (list, tuple)) else sum(1 for _ in values)

    def delete_many(self, state: dict[str, Any], values: Iterable[Any]) -> None:
        n = len(values) if isinstance(values, (list, tuple)) else sum(1 for _ in values)
        if n > state["count"]:
            raise ValueError("count aggregate underflow: delete without insert")
        state["count"] -= n

    def value(self, state: dict[str, Any]) -> int:
        return state["count"]

    def merge(self, state: dict[str, Any], other: dict[str, Any]) -> None:
        state["count"] += other["count"]


class SumAggregate(AggregateFunction):
    """``sum(field)`` over the selected set (0 over the empty set)."""

    name = "sum"

    def initial_state(self) -> dict[str, Any]:
        return {"sum": 0, "count": 0}

    def insert(self, state: dict[str, Any], value: Any) -> None:
        state["sum"] += value
        state["count"] += 1

    def delete(self, state: dict[str, Any], value: Any) -> None:
        if state["count"] <= 0:
            raise ValueError("sum aggregate underflow: delete without insert")
        state["sum"] -= value
        state["count"] -= 1

    def insert_many(self, state: dict[str, Any], values: Iterable[Any]) -> None:
        values = values if isinstance(values, (list, tuple)) else list(values)
        state["sum"] += sum(values)
        state["count"] += len(values)

    def delete_many(self, state: dict[str, Any], values: Iterable[Any]) -> None:
        values = values if isinstance(values, (list, tuple)) else list(values)
        if len(values) > state["count"]:
            raise ValueError("sum aggregate underflow: delete without insert")
        state["sum"] -= sum(values)
        state["count"] -= len(values)

    def value(self, state: dict[str, Any]) -> Any:
        return state["sum"]

    def merge(self, state: dict[str, Any], other: dict[str, Any]) -> None:
        state["sum"] += other["sum"]
        state["count"] += other["count"]


class AverageAggregate(AggregateFunction):
    """``avg(field)``: maintained as (sum, count); None over the empty set."""

    name = "avg"

    def initial_state(self) -> dict[str, Any]:
        return {"sum": 0, "count": 0}

    def insert(self, state: dict[str, Any], value: Any) -> None:
        state["sum"] += value
        state["count"] += 1

    def delete(self, state: dict[str, Any], value: Any) -> None:
        if state["count"] <= 0:
            raise ValueError("avg aggregate underflow: delete without insert")
        state["sum"] -= value
        state["count"] -= 1

    def insert_many(self, state: dict[str, Any], values: Iterable[Any]) -> None:
        values = values if isinstance(values, (list, tuple)) else list(values)
        state["sum"] += sum(values)
        state["count"] += len(values)

    def delete_many(self, state: dict[str, Any], values: Iterable[Any]) -> None:
        values = values if isinstance(values, (list, tuple)) else list(values)
        if len(values) > state["count"]:
            raise ValueError("avg aggregate underflow: delete without insert")
        state["sum"] -= sum(values)
        state["count"] -= len(values)

    def value(self, state: dict[str, Any]) -> Any:
        if state["count"] == 0:
            return None
        return state["sum"] / state["count"]

    def merge(self, state: dict[str, Any], other: dict[str, Any]) -> None:
        state["sum"] += other["sum"]
        state["count"] += other["count"]


class _ExtremeAggregate(AggregateFunction):
    """Min/max with deletion support via a value multiset.

    The state's ``values`` Counter is bounded by the number of live
    values; the paper notes such states may exceed one block — the
    Model 3 cost formulas apply to the one-block aggregates, so these
    are an extension, not part of the reproduced experiments.
    """

    _pick = staticmethod(min)

    def initial_state(self) -> dict[str, Any]:
        return {"values": Counter()}

    def insert(self, state: dict[str, Any], value: Any) -> None:
        state["values"][value] += 1

    def insert_many(self, state: dict[str, Any], values: Iterable[Any]) -> None:
        state["values"].update(values)

    def delete(self, state: dict[str, Any], value: Any) -> None:
        counts = state["values"]
        if counts[value] <= 0:
            raise ValueError(f"{self.name} aggregate underflow for value {value!r}")
        counts[value] -= 1
        if counts[value] == 0:
            del counts[value]

    def value(self, state: dict[str, Any]) -> Any:
        counts = state["values"]
        if not counts:
            return None
        return self._pick(counts)

    def merge(self, state: dict[str, Any], other: dict[str, Any]) -> None:
        state["values"].update(other["values"])


class MinAggregate(_ExtremeAggregate):
    """``min(field)`` with deletion support (multiset state)."""

    name = "min"
    _pick = staticmethod(min)


class MaxAggregate(_ExtremeAggregate):
    """``max(field)`` with deletion support (multiset state)."""

    name = "max"
    _pick = staticmethod(max)


_REGISTRY: dict[str, type[AggregateFunction]] = {
    cls.name: cls
    for cls in (CountAggregate, SumAggregate, AverageAggregate, MinAggregate, MaxAggregate)
}

AGGREGATE_NAMES = tuple(sorted(_REGISTRY))


def make_aggregate(name: str) -> AggregateFunction:
    """Instantiate an aggregate by name (count/sum/avg/min/max)."""
    try:
        return _REGISTRY[name]()
    except KeyError:
        raise KeyError(
            f"unknown aggregate {name!r}; expected one of {AGGREGATE_NAMES}"
        ) from None
