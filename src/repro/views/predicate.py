"""View predicates, satisfiability screening and RIU analysis.

Predicates serve three roles in the paper:

1. **Selection** — deciding which base tuples belong to the view.
2. **Screening stage 2** — substituting an inserted/deleted tuple into
   the view predicate and testing satisfiability (Blakeley 1986); this
   is the ``c1``-priced CPU test.
3. **Rule indexing** — stage 1 of screening: the index intervals the
   predicate covers are t-locked (Stonebraker 1986) so non-conflicting
   tuples are rejected for free (:mod:`repro.maintenance.screening`).

Buneman & Clemons' *readily ignorable update* (RIU) compile-time test —
"does the command write any field the view reads?" — is
:func:`is_readily_ignorable`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Iterable

from repro.storage.columnar import ColumnBatch, SelectionVector
from repro.storage.tuples import Record

__all__ = [
    "Predicate",
    "TruePredicate",
    "IntervalPredicate",
    "ComparisonPredicate",
    "AndPredicate",
    "OrPredicate",
    "NotPredicate",
    "Interval",
    "is_readily_ignorable",
]


@dataclass(frozen=True)
class Interval:
    """A closed interval ``[lo, hi]`` on one field (a t-lockable range)."""

    field: str
    lo: Any
    hi: Any

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"empty interval on {self.field!r}: [{self.lo}, {self.hi}]")

    def contains(self, value: Any) -> bool:
        """Inclusive membership test."""
        return self.lo <= value <= self.hi


class Predicate(ABC):
    """A boolean condition over one record."""

    @abstractmethod
    def matches(self, record: Record) -> bool:
        """True when the record satisfies the predicate."""

    def matches_batch(
        self, batch: ColumnBatch, selection: SelectionVector | None = None
    ) -> SelectionVector:
        """Rows of ``batch`` (within ``selection``) satisfying the predicate.

        The returned selection preserves row order and, for every
        predicate class, selects exactly the rows whose records pass
        :meth:`matches` — the per-record method remains the executable
        specification (asserted by the hypothesis equivalence suite).
        This base implementation is that specification applied row by
        row; the concrete classes override it with column kernels.
        """
        indices = range(len(batch)) if selection is None else selection.indices
        matches = self.matches
        record_at = batch.record_at
        return SelectionVector([i for i in indices if matches(record_at(i))])

    @abstractmethod
    def fields_read(self) -> frozenset[str]:
        """Fields the predicate inspects (drives the RIU test)."""

    def intervals(self) -> tuple[Interval, ...]:
        """Index intervals covered by the predicate's clauses.

        Used to place t-locks.  Predicates with no indexable clause
        return an empty tuple, which forces every tuple through stage 2
        screening (conservative, never incorrect).
        """
        return ()

    def selectivity_hint(self) -> float | None:
        """Optional selectivity estimate for plan costing (None=unknown)."""
        return None

    def __and__(self, other: "Predicate") -> "AndPredicate":
        return AndPredicate((self, other))

    def __or__(self, other: "Predicate") -> "OrPredicate":
        return OrPredicate((self, other))

    def __invert__(self) -> "NotPredicate":
        return NotPredicate(self)


class TruePredicate(Predicate):
    """Matches every record (``f = 1`` views)."""

    def matches(self, record: Record) -> bool:
        return True

    def matches_batch(
        self, batch: ColumnBatch, selection: SelectionVector | None = None
    ) -> SelectionVector:
        if selection is None:
            return SelectionVector.full(len(batch))
        return SelectionVector(list(selection.indices))

    def fields_read(self) -> frozenset[str]:
        return frozenset()

    def selectivity_hint(self) -> float | None:
        return 1.0

    def __repr__(self) -> str:
        return "TruePredicate()"


@dataclass(frozen=True)
class IntervalPredicate(Predicate):
    """``lo <= record[field] <= hi`` — the paper's canonical view clause.

    A selectivity hint may be attached when the caller knows the
    attribute's domain (the workload generator does).
    """

    field: str
    lo: Any
    hi: Any
    selectivity: float | None = None

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"empty interval on {self.field!r}: [{self.lo}, {self.hi}]")

    def matches(self, record: Record) -> bool:
        value = record.get(self.field)
        return value is not None and self.lo <= value <= self.hi

    def matches_batch(
        self, batch: ColumnBatch, selection: SelectionVector | None = None
    ) -> SelectionVector:
        col = batch.column(self.field)
        lo, hi = self.lo, self.hi
        indices = range(len(batch)) if selection is None else selection.indices
        return SelectionVector(
            [i for i in indices if (v := col[i]) is not None and lo <= v <= hi]
        )

    def fields_read(self) -> frozenset[str]:
        return frozenset((self.field,))

    def intervals(self) -> tuple[Interval, ...]:
        return (Interval(self.field, self.lo, self.hi),)

    def selectivity_hint(self) -> float | None:
        return self.selectivity

    def __repr__(self) -> str:
        return f"IntervalPredicate({self.field!r}, {self.lo!r}, {self.hi!r})"


_OPS = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class ComparisonPredicate(Predicate):
    """``record[field] <op> constant`` for ``op`` in ==, !=, <, <=, >, >=."""

    field: str
    op: str
    constant: Any

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(f"unknown operator {self.op!r}; expected one of {sorted(_OPS)}")

    def matches(self, record: Record) -> bool:
        value = record.get(self.field)
        if value is None:
            return False
        return _OPS[self.op](value, self.constant)

    def matches_batch(
        self, batch: ColumnBatch, selection: SelectionVector | None = None
    ) -> SelectionVector:
        col = batch.column(self.field)
        c = self.constant
        indices = range(len(batch)) if selection is None else selection.indices
        # One comprehension per operator: dispatching through the _OPS
        # lambda per row costs more than the comparison itself.
        op = self.op
        if op == "==":
            hits = [i for i in indices if (v := col[i]) is not None and v == c]
        elif op == "!=":
            hits = [i for i in indices if (v := col[i]) is not None and v != c]
        elif op == "<":
            hits = [i for i in indices if (v := col[i]) is not None and v < c]
        elif op == "<=":
            hits = [i for i in indices if (v := col[i]) is not None and v <= c]
        elif op == ">":
            hits = [i for i in indices if (v := col[i]) is not None and v > c]
        else:
            hits = [i for i in indices if (v := col[i]) is not None and v >= c]
        return SelectionVector(hits)

    def fields_read(self) -> frozenset[str]:
        return frozenset((self.field,))

    def intervals(self) -> tuple[Interval, ...]:
        if self.op == "==":
            return (Interval(self.field, self.constant, self.constant),)
        return ()

    def __repr__(self) -> str:
        return f"ComparisonPredicate({self.field!r} {self.op} {self.constant!r})"


@dataclass(frozen=True)
class AndPredicate(Predicate):
    """Conjunction of clauses."""

    clauses: tuple[Predicate, ...]

    def matches(self, record: Record) -> bool:
        return all(clause.matches(record) for clause in self.clauses)

    def matches_batch(
        self, batch: ColumnBatch, selection: SelectionVector | None = None
    ) -> SelectionVector:
        # Successive narrowing: each clause sees only the survivors of
        # the previous one, so selective leading clauses short-circuit
        # the rest without materializing intermediate batches.  A None
        # selection is handed to the first clause as-is — leaf kernels
        # iterate a bare range for it, which beats materializing the
        # full index list here.
        sel = selection
        for clause in self.clauses:
            if sel is not None and not sel.indices:
                break
            sel = clause.matches_batch(batch, sel)
        if sel is None:
            return SelectionVector.full(len(batch))
        if sel is selection:
            sel = SelectionVector(list(sel.indices))
        return sel

    def fields_read(self) -> frozenset[str]:
        return frozenset().union(*(c.fields_read() for c in self.clauses)) if self.clauses else frozenset()

    def intervals(self) -> tuple[Interval, ...]:
        collected: list[Interval] = []
        for clause in self.clauses:
            collected.extend(clause.intervals())
        return tuple(collected)

    def selectivity_hint(self) -> float | None:
        product = 1.0
        for clause in self.clauses:
            hint = clause.selectivity_hint()
            if hint is None:
                return None
            product *= hint
        return product


@dataclass(frozen=True)
class OrPredicate(Predicate):
    """Disjunction of clauses."""

    clauses: tuple[Predicate, ...]

    def matches(self, record: Record) -> bool:
        return any(clause.matches(record) for clause in self.clauses)

    def matches_batch(
        self, batch: ColumnBatch, selection: SelectionVector | None = None
    ) -> SelectionVector:
        # Each clause tests only the rows no earlier clause matched
        # (the batch analogue of any()'s short-circuit); matched rows
        # are marked in a byte mask and re-emitted in original order.
        indices = list(range(len(batch))) if selection is None else selection.indices
        matched = bytearray(len(batch))
        pending = indices
        for clause in self.clauses:
            if not pending:
                break
            for i in clause.matches_batch(batch, SelectionVector(pending)).indices:
                matched[i] = 1
            pending = [i for i in pending if not matched[i]]
        return SelectionVector([i for i in indices if matched[i]])

    def fields_read(self) -> frozenset[str]:
        return frozenset().union(*(c.fields_read() for c in self.clauses)) if self.clauses else frozenset()

    def intervals(self) -> tuple[Interval, ...]:
        # A disjunction is coverable only if *every* branch is: a tuple
        # that breaks no interval must be guaranteed non-matching.
        collected: list[Interval] = []
        for clause in self.clauses:
            branch = clause.intervals()
            if not branch:
                return ()
            collected.extend(branch)
        return tuple(collected)


@dataclass(frozen=True)
class NotPredicate(Predicate):
    """Negation; never index-coverable (its complement is unbounded)."""

    clause: Predicate

    def matches(self, record: Record) -> bool:
        return not self.clause.matches(record)

    def matches_batch(
        self, batch: ColumnBatch, selection: SelectionVector | None = None
    ) -> SelectionVector:
        indices = range(len(batch)) if selection is None else selection.indices
        hit = bytearray(len(batch))
        for i in self.clause.matches_batch(batch, selection).indices:
            hit[i] = 1
        return SelectionVector([i for i in indices if not hit[i]])

    def fields_read(self) -> frozenset[str]:
        return self.clause.fields_read()


def is_readily_ignorable(
    written_fields: Iterable[str], view_fields_read: Iterable[str]
) -> bool:
    """Buneman-Clemons compile-time RIU test.

    A command is a *readily ignorable update* with respect to a view if
    it writes no field the view definition reads; such a command cannot
    change the view's state, so run-time screening is skipped entirely.
    """
    return not (set(written_fields) & set(view_fields_read))
