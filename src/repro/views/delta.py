"""Delta sets and the differential view update algebra (Section 2.1).

A :class:`DeltaSet` holds the *net* inserted (``A``) and deleted
(``D``) tuples of one relation for one transaction or one deferred
batch, maintaining the paper's invariant ``A ∩ D = ∅``.

:func:`select_project_changes`, :func:`join_changes` and
:func:`aggregate_changes` turn delta sets into signed multisets of view
changes — the quantities the maintenance strategies apply to the
stored view with duplicate counts.

Appendix A: the original formulation in [Blak86] evaluates the
deletion terms against the *pre-update* relations (``D1 x R2``,
``R1 x D2``, ``D1 x D2``) and over-deletes when a transaction removes
both halves of a joining pair.  :func:`join_changes_blakeley_original`
implements that expression verbatim so tests and the Appendix-A
example can demonstrate the bug; :func:`join_changes` implements the
paper's corrected expression (using ``R1' = R1 - D1`` and
``R2' = R2 - D2``), and :func:`product_changes_telescoped` generalizes
the corrected rule to N-way products.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Iterable, Sequence

from repro.storage.columnar import ColumnBatch
from repro.storage.tuples import Record
from .definition import AggregateView, JoinView, SelectProjectView, ViewTuple

__all__ = [
    "DeltaSet",
    "ChangeSet",
    "select_project_changes",
    "join_changes",
    "join_changes_blakeley_original",
    "product_changes_telescoped",
    "aggregate_changes",
]


class DeltaSet:
    """Net changes to one relation: inserted set ``A`` and deleted set ``D``.

    The *net* semantics the differential algorithm requires
    (Section 2.1's ``A_i ∩ D_i = ∅``) are enforced on entry:

    * deleting a tuple inserted earlier in the same batch cancels the
      insertion;
    * re-inserting a tuple deleted earlier cancels the deletion.
    """

    def __init__(self, relation: str) -> None:
        self.relation = relation
        self._inserted: dict[Record, None] = {}
        self._deleted: dict[Record, None] = {}

    @classmethod
    def from_disjoint(
        cls,
        relation: str,
        inserted: Iterable[Record],
        deleted: Iterable[Record],
    ) -> "DeltaSet":
        """Build directly from already-net sets (``A ∩ D = ∅``).

        The batch net-change kernels resolve cancellations on cheap
        tokens before constructing any :class:`Record`; this adopts
        their results without re-running the per-record toggling.
        """
        delta = cls(relation)
        delta._inserted = dict.fromkeys(inserted)
        delta._deleted = dict.fromkeys(deleted)
        return delta

    @property
    def inserted(self) -> tuple[Record, ...]:
        return tuple(self._inserted)

    @property
    def deleted(self) -> tuple[Record, ...]:
        return tuple(self._deleted)

    def __bool__(self) -> bool:
        return bool(self._inserted or self._deleted)

    def __len__(self) -> int:
        return len(self._inserted) + len(self._deleted)

    def add_insert(self, record: Record) -> None:
        """Record an insertion (cancels a pending deletion of the tuple)."""
        if record in self._deleted:
            del self._deleted[record]
        else:
            self._inserted[record] = None

    def add_delete(self, record: Record) -> None:
        """Record a deletion (cancels a pending insertion of the tuple)."""
        if record in self._inserted:
            del self._inserted[record]
        else:
            self._deleted[record] = None

    def add_update(self, old: Record, new: Record) -> None:
        """Record a modification: old value deleted, new value inserted."""
        self.add_delete(old)
        self.add_insert(new)

    def merge(self, other: "DeltaSet") -> None:
        """Fold another batch in, preserving net semantics."""
        if other.relation != self.relation:
            raise ValueError(
                f"cannot merge deltas of {other.relation!r} into {self.relation!r}"
            )
        for record in other.deleted:
            self.add_delete(record)
        for record in other.inserted:
            self.add_insert(record)

    def clear(self) -> None:
        """Drop all recorded changes."""
        self._inserted.clear()
        self._deleted.clear()

    def invariant_ok(self) -> bool:
        """The paper's net-change invariant: ``A ∩ D = ∅``."""
        return not (set(self._inserted) & set(self._deleted))


class ChangeSet:
    """Signed multiset of view-tuple changes produced by a refresh step.

    Positive counts are insertions into the view, negative counts
    deletions; applying a change set to a duplicate-counted stored view
    is a per-tuple count adjustment.
    """

    def __init__(self) -> None:
        self._counts: Counter[ViewTuple] = Counter()

    def insert(self, tuple_: ViewTuple, count: int = 1) -> None:
        """Record ``count`` insertions of a view tuple."""
        self._add(tuple_, count)

    def delete(self, tuple_: ViewTuple, count: int = 1) -> None:
        """Record ``count`` deletions of a view tuple."""
        self._add(tuple_, -count)

    def _add(self, tuple_: ViewTuple, signed: int) -> None:
        new = self._counts[tuple_] + signed
        if new == 0:
            del self._counts[tuple_]
        else:
            self._counts[tuple_] = new

    def __bool__(self) -> bool:
        return bool(self._counts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ChangeSet):
            return NotImplemented
        return self._counts == other._counts

    def items(self) -> Iterable[tuple[ViewTuple, int]]:
        """(tuple, signed count) pairs; deterministic order by identity."""
        return sorted(self._counts.items(), key=lambda item: repr(item[0].identity()))

    def count(self, tuple_: ViewTuple) -> int:
        """Signed multiplicity of one tuple (0 if untouched)."""
        return self._counts.get(tuple_, 0)

    @property
    def insertions(self) -> int:
        """Total positive multiplicity."""
        return sum(c for c in self._counts.values() if c > 0)

    @property
    def deletions(self) -> int:
        """Total negative multiplicity (as a positive number)."""
        return -sum(c for c in self._counts.values() if c < 0)

    def merged(self, other: "ChangeSet") -> "ChangeSet":
        """Return a new change set combining both operands."""
        result = ChangeSet()
        result._counts = self._counts + Counter()
        for tuple_, signed in other._counts.items():
            result._add(tuple_, signed)
        return result


def select_project_changes(
    view: SelectProjectView, delta: DeltaSet
) -> ChangeSet:
    """Changes to a Model 1 view: screen and project the delta.

    ``V1 = V0 ∪ pi(sigma(A)) - pi(sigma(D))`` — selection and
    projection distribute over union and difference once duplicate
    counts are maintained.
    """
    changes = ChangeSet()
    inserted = delta.inserted
    if inserted:
        batch = ColumnBatch.from_records(inserted)
        for i in view.predicate.matches_batch(batch).indices:
            changes.insert(view.project(inserted[i]))
    deleted = delta.deleted
    if deleted:
        batch = ColumnBatch.from_records(deleted)
        for i in view.predicate.matches_batch(batch).indices:
            changes.delete(view.project(deleted[i]))
    return changes


def _join_side(
    view: JoinView,
    outer_records: Iterable[Record],
    inner_records: Iterable[Record],
    sign: int,
    changes: ChangeSet,
    apply_predicate: bool = True,
) -> None:
    by_key: dict[Any, list[Record]] = {}
    for inner in inner_records:
        by_key.setdefault(inner[view.join_field], []).append(inner)
    for outer in outer_records:
        if apply_predicate and not view.predicate.matches(outer):
            continue
        for inner in by_key.get(outer[view.join_field], ()):
            changes._add(view.combine(outer, inner), sign)


def join_changes(
    view: JoinView,
    r1: Iterable[Record],
    r2: Iterable[Record],
    delta1: DeltaSet,
    delta2: DeltaSet,
) -> ChangeSet:
    """The paper's corrected differential join update (Section 2.1).

    With ``R1' = R1 - D1`` and ``R2' = R2 - D2``::

        V1 = V0 - pi(sigma(R1' x D2)) - pi(sigma(D1 x R2')) - pi(sigma(D1 x D2))
                + pi(sigma(R1' x A2)) + pi(sigma(A1 x R2')) + pi(sigma(A1 x A2))

    ``r1``/``r2`` are the *pre-update* relation states.
    """
    d1, a1 = set(delta1.deleted), list(delta1.inserted)
    d2, a2 = set(delta2.deleted), list(delta2.inserted)
    r1_prime = [t for t in r1 if t not in d1]
    r2_prime = [t for t in r2 if t not in d2]

    changes = ChangeSet()
    _join_side(view, r1_prime, d2, -1, changes)
    _join_side(view, d1, r2_prime, -1, changes)
    _join_side(view, d1, d2, -1, changes)
    _join_side(view, r1_prime, a2, +1, changes)
    _join_side(view, a1, r2_prime, +1, changes)
    _join_side(view, a1, a2, +1, changes)
    return changes


def join_changes_blakeley_original(
    view: JoinView,
    r1: Iterable[Record],
    r2: Iterable[Record],
    delta1: DeltaSet,
    delta2: DeltaSet,
) -> ChangeSet:
    """The original [Blak86] expression — *incorrect* per Appendix A.

    Deletion terms run against the pre-update ``R1``/``R2``::

        V1 = V0 + pi(sigma(A1 x A2 ∪ A1 x R2 ∪ R1 x A2))
                - pi(sigma(D1 x D2 ∪ D1 x R2 ∪ R1 x D2))

    When a transaction deletes tuples ``t1`` and ``t2`` that join, the
    pair's view tuple is deleted three times (``t1 ∈ R1 ∩ D1`` and
    ``t2 ∈ R2 ∩ D2``) instead of once, corrupting duplicate counts.
    Kept for the Appendix-A demonstration; never used for maintenance.
    """
    r1, r2 = list(r1), list(r2)
    a1, d1 = list(delta1.inserted), list(delta1.deleted)
    a2, d2 = list(delta2.inserted), list(delta2.deleted)

    changes = ChangeSet()
    _join_side(view, a1, a2, +1, changes)
    _join_side(view, a1, r2, +1, changes)
    _join_side(view, r1, a2, +1, changes)
    _join_side(view, d1, d2, -1, changes)
    _join_side(view, d1, r2, -1, changes)
    _join_side(view, r1, d2, -1, changes)
    return changes


def product_changes_telescoped(
    view: JoinView,
    relations: Sequence[tuple[Iterable[Record], DeltaSet]],
) -> ChangeSet:
    """N-way generalization of the corrected rule (telescoping deltas).

    For relations ``R_1..R_N`` with new states ``N_i = (R_i - D_i) ∪
    A_i``, the change to the product telescopes as::

        V1 - V0 = sum_i  N_1 x .. x N_{i-1} x (A_i - D_i) x R_{i+1} x .. x R_N

    which for N=2 is algebraically identical to :func:`join_changes`
    (tested in ``tests/views/test_delta.py``).  Only 2-way views are
    used by the paper's models; this exists to show the algorithm is
    not limited to them.  The ``view`` is used for predicate screening
    of the first relation and pairwise combination; for N > 2 callers
    supply a combining view chain (see tests).
    """
    if len(relations) != 2:
        raise NotImplementedError(
            "telescoped products beyond 2 relations require a view chain; "
            "use join_changes composition as shown in the tests"
        )
    (r1, delta1), (r2, delta2) = relations
    d1 = set(delta1.deleted)
    r1_new = [t for t in r1 if t not in d1] + list(delta1.inserted)

    changes = ChangeSet()
    # Term 1: (A1 - D1) x R2_old
    _join_side(view, delta1.inserted, r2, +1, changes)
    _join_side(view, delta1.deleted, r2, -1, changes)
    # Term 2: N1 x (A2 - D2)
    _join_side(view, r1_new, delta2.inserted, +1, changes)
    _join_side(view, r1_new, delta2.deleted, -1, changes)
    return changes


def aggregate_changes(
    view: AggregateView, delta: DeltaSet
) -> tuple[list[Any], list[Any]]:
    """Values entering / leaving a Model 3 aggregate for one batch."""
    return (
        _selected_values(view, delta.inserted),
        _selected_values(view, delta.deleted),
    )


def _selected_values(view: AggregateView, records: Sequence[Record]) -> list[Any]:
    """Aggregated-field values of the records passing the view predicate."""
    if not records:
        return []
    batch = ColumnBatch.from_records(records)
    selection = view.predicate.matches_batch(batch)
    field = view.field
    return [records[i][field] for i in selection.indices]
