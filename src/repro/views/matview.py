"""Materialized view storage with duplicate counts (Section 2.1).

Projection can map several base tuples to one view value, so the
stored view keeps a *duplicate count* per distinct tuple: insertion
increments (or creates with count 1), deletion decrements (physically
removing at zero).  The copy is clustered in a B+-tree on the view key
field, matching Section 3.1's access-method table, so refresh I/O and
query scans are costed by the same machinery as any other relation.

:class:`AggregateStateStore` is Model 3's one-block stored aggregate
state: a read is one page read, a refresh one page write.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.storage.bplustree import BPlusTree
from repro.storage.pager import BufferPool
from repro.storage.tuples import Record
from .aggregates import AggregateFunction
from .definition import ViewTuple
from .delta import ChangeSet

__all__ = ["MaterializedView", "AggregateStateStore", "DuplicateCountError"]

_DUP_FIELD = "_dup"


class DuplicateCountError(RuntimeError):
    """A deletion arrived for a view tuple that is not stored."""


class MaterializedView:
    """Duplicate-counted stored copy of a select-project or join view."""

    def __init__(
        self,
        name: str,
        pool: BufferPool,
        view_key: str,
        records_per_page: int,
        fanout: int = 200,
    ) -> None:
        self.name = name
        self.view_key = view_key
        #: Full-recompute operation counts.  Crash recovery asserts on
        #: these: a deferred view must recover via net-change replay,
        #: never by re-running the view query from scratch.
        self.bulk_loads = 0
        self.rebuilds = 0
        self._tree = BPlusTree(
            f"view.{name}",
            pool,
            sort_key=lambda record: record[view_key],
            records_per_leaf=records_per_page,
            fanout=fanout,
        )

    # ------------------------------------------------------------------
    # loading and maintenance
    # ------------------------------------------------------------------
    def bulk_load(self, tuples: list[ViewTuple]) -> None:
        """Materialize from scratch, folding duplicates into counts."""
        self.bulk_loads += 1
        counts: dict[ViewTuple, int] = {}
        for vt in tuples:
            counts[vt] = counts.get(vt, 0) + 1
        records = [self._record(vt, dup) for vt, dup in counts.items()]
        self._tree.bulk_load(records)

    def rebuild(self, tuples: list[ViewTuple]) -> None:
        """Replace the stored contents wholesale (snapshot refresh).

        Drops every page and bulk-loads the fresh result; the load's
        page writes are charged (they are the rebuild cost).
        """
        self.rebuilds += 1
        self._tree.reset()
        self.bulk_load(tuples)

    def insert_tuple(self, vt: ViewTuple, count: int = 1) -> None:
        """Add ``count`` duplicates of a view tuple."""
        if count < 1:
            raise ValueError(f"insert count must be >= 1, got {count}")
        existing = self._find(vt)
        if existing is None:
            self._tree.insert(self._record(vt, count))
        else:
            self._tree.update(existing, self._record(vt, existing[_DUP_FIELD] + count))

    def delete_tuple(self, vt: ViewTuple, count: int = 1) -> None:
        """Remove ``count`` duplicates, physically deleting at zero."""
        if count < 1:
            raise ValueError(f"delete count must be >= 1, got {count}")
        existing = self._find(vt)
        if existing is None:
            raise DuplicateCountError(f"view {self.name!r} does not contain {vt!r}")
        remaining = existing[_DUP_FIELD] - count
        if remaining < 0:
            raise DuplicateCountError(
                f"view {self.name!r}: duplicate count underflow for {vt!r} "
                f"({existing[_DUP_FIELD]} stored, {count} deleted)"
            )
        if remaining == 0:
            self._tree.delete(existing)
        else:
            self._tree.update(existing, self._record(vt, remaining))

    def apply_changes(self, changes: ChangeSet) -> tuple[int, int]:
        """Apply a signed change multiset; returns (inserted, deleted) counts.

        Batch-native differential apply: each distinct tuple is located
        once and its duplicate count patched in place on the leaf,
        instead of the tuple path's find + delete + reinsert descent
        pair.  The stored bytes and the page set touched are identical
        to applying :meth:`insert_tuple` / :meth:`delete_tuple` item by
        item (the reference spec in ``repro.maintenance.reference``):
        a duplicate-count patch reuses the entry's ``(sort, tiebreak)``
        key, so reinsertion would land at the same leaf index, and a
        delete-then-reinsert never overflows the leaf.
        """
        inserted = deleted = 0
        tree = self._tree
        for vt, signed in changes.items():
            located = self._locate(vt)
            if signed > 0:
                if located is None:
                    tree.insert(self._record(vt, signed))
                else:
                    page, index, existing = located
                    tree.replace_at(
                        page, index, self._record(vt, existing[_DUP_FIELD] + signed)
                    )
                inserted += signed
            else:
                count = -signed
                if located is None:
                    raise DuplicateCountError(
                        f"view {self.name!r} does not contain {vt!r}"
                    )
                page, index, existing = located
                remaining = existing[_DUP_FIELD] - count
                if remaining < 0:
                    raise DuplicateCountError(
                        f"view {self.name!r}: duplicate count underflow for {vt!r} "
                        f"({existing[_DUP_FIELD]} stored, {count} deleted)"
                    )
                if remaining == 0:
                    tree.delete_at(page, index)
                else:
                    tree.replace_at(page, index, self._record(vt, remaining))
                deleted += count
        return inserted, deleted

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def scan_range(self, lo: Any, hi: Any) -> Iterator[ViewTuple]:
        """View tuples with ``lo <= view_key <= hi``, duplicates expanded."""
        for record in self._tree.range_scan(lo, hi):
            vt = self._view_tuple(record)
            for _ in range(record[_DUP_FIELD]):
                yield vt

    def read_range(self, lo: Any, hi: Any) -> list[ViewTuple]:
        """Eager range read — the query paths' bulk entry point.

        Same page reads as :meth:`scan_range` (both ride the leaf-chain
        batches); builds the duplicate-expanded result list in one pass
        so callers can charge one bulk ``record_screen(len(result))``
        instead of a call per tuple.
        """
        out: list[ViewTuple] = []
        for records in self._tree.range_batches(lo, hi):
            for record in records:
                vt = self._view_tuple(record)
                dup = record[_DUP_FIELD]
                if dup == 1:
                    out.append(vt)
                else:
                    out.extend([vt] * dup)
        return out

    def scan_all(self) -> Iterator[ViewTuple]:
        """Every stored view tuple, duplicates expanded."""
        for record in self._tree.scan_all():
            vt = self._view_tuple(record)
            for _ in range(record[_DUP_FIELD]):
                yield vt

    def distinct_count(self) -> int:
        """Distinct stored tuples (no I/O charged; catalog statistic)."""
        return len(self._tree)

    def duplicate_count(self, vt: ViewTuple) -> int:
        """Stored duplicate count of one tuple (0 if absent)."""
        existing = self._find(vt)
        return 0 if existing is None else existing[_DUP_FIELD]

    def total_count(self) -> int:
        """Total tuples including duplicates (scans the view)."""
        return sum(record[_DUP_FIELD] for record in self._tree.scan_all())

    @property
    def tree(self) -> BPlusTree:
        """Underlying storage (exposed for stats and tests)."""
        return self._tree

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    @staticmethod
    def _record(vt: ViewTuple, dup: int) -> Record:
        return Record(vt.identity(), {**vt.values, _DUP_FIELD: dup})

    def _view_tuple(self, record: Record) -> ViewTuple:
        values = {k: v for k, v in record.values.items() if k != _DUP_FIELD}
        return ViewTuple(values)

    def _find(self, vt: ViewTuple) -> Record | None:
        sort_value = vt[self.view_key]
        for record in self._tree.range_scan(sort_value, sort_value):
            if record.key == vt.identity():
                return record
        return None

    def _locate(self, vt: ViewTuple):
        """Find the stored record's leaf position for in-place patching."""
        return self._tree.locate(vt[self.view_key], vt.identity())


class AggregateStateStore:
    """One-page persistent aggregate state (Model 3's stored view)."""

    def __init__(self, name: str, pool: BufferPool, function: AggregateFunction) -> None:
        self.name = name
        self.pool = pool
        self.function = function
        page = pool.disk.allocate(f"agg.{name}", 1)
        page.records.append(function.initial_state())
        pool.put(page, dirty=True)
        pool.flush(page.page_id)
        self._page_id = page.page_id

    def read_state(self) -> dict[str, Any]:
        """Read the state (one page read on a cold buffer)."""
        page = self.pool.get(self._page_id)
        return dict(page.records[0])

    def write_state(self, state: dict[str, Any]) -> None:
        """Persist a new state (one page write)."""
        page = self.pool.get(self._page_id)
        page.records[0] = dict(state)
        self.pool.put(page, dirty=True)

    def value(self) -> Any:
        """Current aggregate value (reads the state page)."""
        return self.function.value(self.read_state())

    def free(self) -> None:
        """Deallocate the state page (catalog drop; no I/O charged)."""
        self.pool.discard(self._page_id)
        self.pool.disk.free(self._page_id)

    def apply(self, entering: list[Any], leaving: list[Any]) -> bool:
        """Fold value changes into the state; returns True if written.

        No write is issued when both change lists are empty — the
        paper's refresh cost is ``c2`` times the probability that at
        least one change touches the aggregated set.
        """
        if not entering and not leaving:
            return False
        state = self.read_state()
        self.function.insert_many(state, entering)
        self.function.delete_many(state, leaving)
        self.write_state(state)
        return True
