"""Model 2 cost formulas: two-way natural join views (Section 3.4).

``V = R1 join R2`` on a key field, with an extra restriction ``C_f`` of
selectivity ``f`` on ``R1``.  Every ``R1`` tuple passing ``C_f`` joins
exactly one ``R2`` tuple, so ``V`` has ``f*N`` tuples; with half the
attributes of each input projected, result tuples are ``S`` bytes and
the view occupies ``f*b`` pages.  Updates touch only ``R1`` (``R2`` is
never updated); ``R2`` has ``f_r2*N`` tuples on ``f_r2*b`` pages with a
clustered hash index on the join field.
"""

from __future__ import annotations

from .costs import CostBreakdown
from .model1 import (
    cost_ad_set_overhead,
    cost_hr_maintenance,
    cost_read_ad,
    cost_screen,
)
from .parameters import Parameters
from .strategies import Strategy, ViewModel
from .yao import Method, yao

__all__ = [
    "cost_query_view2",
    "cost_deferred_refresh2",
    "cost_immediate_refresh2",
    "total_deferred2",
    "total_immediate2",
    "total_qm_loopjoin",
    "all_totals2",
]

_YAO: Method = "cardenas"


def cost_query_view2(p: Parameters) -> float:
    """``C_query2``: read a fraction ``f_v`` of the stored join view.

    One index descent plus a clustered scan of ``f*f_v*b`` view pages,
    screening each of the ``f*f_v*N`` tuples scanned.
    """
    io = p.c2 * p.H_vi + p.c2 * p.f * p.f_v * p.b
    cpu = p.c1 * p.f * p.f_v * p.N
    return io + cpu


def cost_deferred_refresh2(p: Parameters, method: Method = _YAO) -> float:
    """``C_def_refresh2``: join the batched A1/D1 sets to R2, update V.

    Reading the joining ``R2`` pages costs ``X3 = y(f_r2*N, f_r2*b,
    2fu)`` I/Os (buffer-pool residency carries pages from the A1 join
    to the D1 join).  Each of the ``2u`` delta tuples costs ``c1`` to
    match, and the ``2fu`` resulting view changes land on ``X4 = y(fN,
    fb, 2fu)`` view pages at ``3 + H_vi`` I/Os each.
    """
    if p.u <= 0:
        return 0.0
    probes = 2.0 * p.f * p.u
    x3 = yao(p.f_r2 * p.N, p.f_r2 * p.b, probes, method=method)
    x4 = yao(p.view_tuples_model1, p.view_pages_model2, probes, method=method)
    return p.c2 * x3 + p.c1 * 2.0 * p.u + p.c2 * (3.0 + p.H_vi) * x4


def cost_immediate_refresh2(p: Parameters, method: Method = _YAO) -> float:
    """``C_imm_refresh2``: per-query cost of refreshing after each transaction.

    Per transaction: ``X5 = y(f_r2*N, f_r2*b, 2fl)`` R2 page reads,
    ``X6 = y(fN, fb, 2fl)`` view pages at ``3 + H_vi`` I/Os each, and
    ``c1`` CPU for each of the ``2l`` delta tuples; multiplied by the
    ``k/q`` transactions per query.
    """
    if p.l <= 0 or p.k <= 0:
        return 0.0
    probes = 2.0 * p.f * p.l
    x5 = yao(p.f_r2 * p.N, p.f_r2 * p.b, probes, method=method)
    x6 = yao(p.view_tuples_model1, p.view_pages_model2, probes, method=method)
    per_txn = p.c2 * x5 + p.c2 * (3.0 + p.H_vi) * x6 + p.c1 * 2.0 * p.l
    return (p.k / p.q) * per_txn


def total_deferred2(p: Parameters, method: Method = _YAO) -> CostBreakdown:
    """``TOTAL_deferred2`` (Section 3.4.1)."""
    return CostBreakdown.build(
        Strategy.DEFERRED,
        ViewModel.JOIN,
        {
            "C_AD": cost_hr_maintenance(p, method=method),
            "C_ADread": cost_read_ad(p),
            "C_def_refresh2": cost_deferred_refresh2(p, method=method),
            "C_query2": cost_query_view2(p),
            "C_screen": cost_screen(p),
        },
    )


def total_immediate2(p: Parameters, method: Method = _YAO) -> CostBreakdown:
    """``TOTAL_immediate2`` (Section 3.4.2)."""
    return CostBreakdown.build(
        Strategy.IMMEDIATE,
        ViewModel.JOIN,
        {
            "C_imm_refresh2": cost_immediate_refresh2(p, method=method),
            "C_query2": cost_query_view2(p),
            "C_overhead": cost_ad_set_overhead(p),
            "C_screen": cost_screen(p),
        },
    )


def total_qm_loopjoin(p: Parameters, method: Method = _YAO) -> CostBreakdown:
    """``TOT_loop``: query modification with a nested-loop join.

    ``R1`` is the outer relation (clustered B+-tree scan of the
    qualifying fraction); the inner ``R2`` is probed through its hash
    index, with probed pages pinned in the buffer pool for the whole
    join (Section 3.4.3's large-memory assumption).
    """
    fetched = p.f * p.f_v * p.N
    return CostBreakdown.build(
        Strategy.QM_LOOPJOIN,
        ViewModel.JOIN,
        {
            "C_index": p.c2 * p.H_base,
            "C_outer_scan": p.c2 * p.f * p.f_v * p.b,
            "C_inner_probe": p.c2 * yao(p.f_r2 * p.N, p.f_r2 * p.b, fetched, method=method),
            "C_cpu": 2.0 * p.c1 * fetched,
        },
    )


def all_totals2(p: Parameters, method: Method = _YAO) -> dict[Strategy, CostBreakdown]:
    """All Model 2 strategies' breakdowns, keyed by strategy."""
    breakdowns = (
        total_deferred2(p, method=method),
        total_immediate2(p, method=method),
        total_qm_loopjoin(p, method=method),
    )
    return {bd.strategy: bd for bd in breakdowns}
