"""Model 1 cost formulas: selection-projection views (Section 3.2).

The view is ``V = pi_Y(sigma_X(R))`` where the predicate ``X`` has
selectivity ``f`` and the projection keeps exactly half of each tuple's
attributes, so the materialized view holds ``f*N`` tuples on ``f*b/2``
pages.  A query to the view reads a fraction ``f_v`` of it.

Every function in this module returns milliseconds.  Components share
the names used in the paper (``C_query1``, ``C_AD``, ``C_ADread``,
``C_screen``, ``C_def_refresh``, ``C_imm_refresh``, ``C_overhead``) so
the breakdowns can be read side by side with Section 3.2.
"""

from __future__ import annotations

from .costs import CostBreakdown
from .parameters import Parameters
from .strategies import Strategy, ViewModel
from .yao import Method, yao

__all__ = [
    "cost_query_view",
    "cost_hr_maintenance",
    "cost_read_ad",
    "cost_screen",
    "cost_deferred_refresh",
    "cost_immediate_refresh",
    "cost_ad_set_overhead",
    "total_deferred",
    "total_immediate",
    "total_qm_clustered",
    "total_qm_unclustered",
    "total_qm_sequential",
    "all_totals",
]

_YAO: Method = "cardenas"


def cost_query_view(p: Parameters) -> float:
    """``C_query1``: read the query result from the stored view.

    One B+-tree descent (``H_vi`` page reads), a clustered scan of
    ``f*f_v*b/2`` view pages, and a ``c1`` screen of each of the
    ``f*f_v*N`` tuples read.  The ``/2`` reflects the projected view's
    doubled blocking factor (see DESIGN.md interpretation note 1).
    """
    io_scan = p.c2 * p.f * p.f_v * p.b / 2.0
    io_index = p.c2 * p.H_vi
    cpu = p.c1 * p.f * p.f_v * p.N
    return io_scan + io_index + cpu


def cost_hr_maintenance(p: Parameters, method: Method = _YAO) -> float:
    """``C_AD``: extra I/O to keep the hypothetical relation, per query.

    Each transaction touches ``y(2u, 2u/T, l)`` pages of the ``AD``
    differential file beyond what a plain relation update would do
    (the one extra read of the target AD page in the 3-I/O protocol of
    Section 2.2.2); there are ``k/q`` transactions per query.
    """
    if p.u <= 0 or p.l <= 0:
        return 0.0
    ad_tuples = 2.0 * p.u
    ad_pages = ad_tuples / p.T
    touched = yao(ad_tuples, ad_pages, p.l, method=method)
    return p.c2 * (p.k / p.q) * touched


def cost_read_ad(p: Parameters) -> float:
    """``C_ADread``: sequential read of the whole AD file at refresh time.

    ``AD`` holds ``2u`` tuples on ``2u/T`` pages.
    """
    return p.c2 * 2.0 * p.u / p.T


def cost_screen(p: Parameters) -> float:
    """``C_screen``: per-query cost of the two-stage screening test.

    Rule indexing (t-locks) is free; the satisfiability substitution
    test costs ``c1`` for each of the ``f*u`` tuples per query that
    disturb a t-lock interval.
    """
    return p.c1 * p.f * p.u


def cost_deferred_refresh(p: Parameters, method: Method = _YAO) -> float:
    """``C_def_refresh``: apply the batched net change to the view.

    About ``f*u`` insertions plus ``f*u`` deletions reach the view per
    query; they land on ``X1 = y(fN, fb/2, 2fu)`` distinct view pages,
    each costing a B+-tree descent, a data-page read+write and a leaf
    index-page write (``3 + H_vi`` I/Os).
    """
    changes = 2.0 * p.f * p.u
    if changes <= 0:
        return 0.0
    x1 = yao(p.view_tuples_model1, p.view_pages_model1, changes, method=method)
    return p.c2 * (3.0 + p.H_vi) * x1


def cost_immediate_refresh(p: Parameters, method: Method = _YAO) -> float:
    """``C_imm_refresh``: per-query cost of refreshing after every transaction.

    Each transaction modifies ``2*f*l`` view tuples on ``X2 = y(fN,
    fb/2, 2fl)`` pages at ``3 + H_vi`` I/Os per page; there are ``k/q``
    transactions per query.
    """
    changes = 2.0 * p.f * p.l
    if changes <= 0 or p.k <= 0:
        return 0.0
    x2 = yao(p.view_tuples_model1, p.view_pages_model1, changes, method=method)
    return (p.k / p.q) * p.c2 * (3.0 + p.H_vi) * x2


def cost_ad_set_overhead(p: Parameters) -> float:
    """``C_overhead``: resetting immediate's in-memory A/D sets.

    ``c3`` per tuple for the ``2*f*l`` marked tuples per transaction,
    ``k/q`` transactions per query.
    """
    return p.c3 * 2.0 * p.f * p.l * (p.k / p.q)


def total_deferred(p: Parameters, method: Method = _YAO) -> CostBreakdown:
    """``TOTAL_deferred1`` (Section 3.2.1)."""
    return CostBreakdown.build(
        Strategy.DEFERRED,
        ViewModel.SELECT_PROJECT,
        {
            "C_AD": cost_hr_maintenance(p, method=method),
            "C_ADread": cost_read_ad(p),
            "C_query1": cost_query_view(p),
            "C_def_refresh": cost_deferred_refresh(p, method=method),
            "C_screen": cost_screen(p),
        },
    )


def total_immediate(p: Parameters, method: Method = _YAO) -> CostBreakdown:
    """``TOTAL_immediate1`` (Section 3.2.2)."""
    return CostBreakdown.build(
        Strategy.IMMEDIATE,
        ViewModel.SELECT_PROJECT,
        {
            "C_query1": cost_query_view(p),
            "C_imm_refresh": cost_immediate_refresh(p, method=method),
            "C_screen": cost_screen(p),
            "C_overhead": cost_ad_set_overhead(p),
        },
    )


def total_qm_clustered(p: Parameters) -> CostBreakdown:
    """``TOTAL_clustered``: query modification via a clustered index scan.

    Reads ``f*f_v*b`` base-relation pages (no extra tuples) and screens
    the ``f*f_v*N`` tuples retrieved.
    """
    return CostBreakdown.build(
        Strategy.QM_CLUSTERED,
        ViewModel.SELECT_PROJECT,
        {
            "C_io": p.c2 * p.b * p.f * p.f_v,
            "C_cpu": p.c1 * p.N * p.f * p.f_v,
        },
    )


def total_qm_unclustered(p: Parameters, method: Method = _YAO) -> CostBreakdown:
    """``TOTAL_unclustered``: query modification via a secondary index.

    Fetching ``N*f*f_v`` tuples scattered over ``b`` pages costs
    ``y(N, b, N*f*f_v)`` reads; each fetched tuple is screened.
    """
    fetched = p.N * p.f * p.f_v
    return CostBreakdown.build(
        Strategy.QM_UNCLUSTERED,
        ViewModel.SELECT_PROJECT,
        {
            "C_io": p.c2 * yao(p.N, p.b, fetched, method=method),
            "C_cpu": p.c1 * fetched,
        },
    )


def total_qm_sequential(p: Parameters) -> CostBreakdown:
    """``TOTAL_sequential``: full scan of ``R`` with every tuple screened."""
    return CostBreakdown.build(
        Strategy.QM_SEQUENTIAL,
        ViewModel.SELECT_PROJECT,
        {
            "C_io": p.c2 * p.b,
            "C_cpu": p.c1 * p.N,
        },
    )


def all_totals(p: Parameters, method: Method = _YAO) -> dict[Strategy, CostBreakdown]:
    """All Model 1 strategies' breakdowns, keyed by strategy."""
    breakdowns = (
        total_deferred(p, method=method),
        total_immediate(p, method=method),
        total_qm_clustered(p),
        total_qm_unclustered(p, method=method),
        total_qm_sequential(p),
    )
    return {bd.strategy: bd for bd in breakdowns}
