"""Best-strategy region maps over the (P, f) plane (Figures 2-4, 6-7).

The paper's region figures fix every parameter except the update
probability ``P`` (x axis) and the view-predicate selectivity ``f``
(y axis), and shade the region where each algorithm is cheapest.  A
:class:`RegionMap` is the discrete version: a grid of winners plus
helpers for measuring region areas and finding boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from .advisor import recommend
from .parameters import Parameters
from .strategies import Strategy, ViewModel
from .yao import Method

__all__ = ["RegionMap", "compute_region_map", "linspace", "logspace"]


def linspace(start: float, stop: float, count: int) -> tuple[float, ...]:
    """``count`` evenly spaced values from ``start`` to ``stop`` inclusive."""
    if count < 2:
        return (start,)
    step = (stop - start) / (count - 1)
    return tuple(start + i * step for i in range(count))


def logspace(start: float, stop: float, count: int) -> tuple[float, ...]:
    """``count`` log-spaced values from ``start`` to ``stop`` inclusive."""
    if start <= 0 or stop <= 0:
        raise ValueError("logspace endpoints must be positive")
    if count < 2:
        return (start,)
    ratio = (stop / start) ** (1.0 / (count - 1))
    return tuple(start * ratio**i for i in range(count))


@dataclass(frozen=True)
class RegionMap:
    """Grid of winning strategies over (P, f).

    ``winners[i][j]`` is the cheapest strategy at ``f = f_values[i]``
    and ``P = p_values[j]`` — row-major with ``f`` on the row axis so a
    printed map reads like the paper's figures (``f`` increasing up).
    """

    model: ViewModel
    p_values: tuple[float, ...]
    f_values: tuple[float, ...]
    winners: tuple[tuple[Strategy, ...], ...]

    def winner_at(self, f: float, p: float) -> Strategy:
        """Winner at the grid point nearest to ``(f, p)``."""
        i = min(range(len(self.f_values)), key=lambda i: abs(self.f_values[i] - f))
        j = min(range(len(self.p_values)), key=lambda j: abs(self.p_values[j] - p))
        return self.winners[i][j]

    def area_fraction(self, strategy: Strategy) -> float:
        """Fraction of grid cells won by ``strategy``."""
        cells = len(self.p_values) * len(self.f_values)
        wins = sum(row.count(strategy) for row in self.winners)
        return wins / cells if cells else 0.0

    def strategies_present(self) -> tuple[Strategy, ...]:
        """Distinct winners appearing anywhere on the map, stable order."""
        seen: dict[Strategy, None] = {}
        for row in self.winners:
            for s in row:
                seen.setdefault(s, None)
        return tuple(seen)

    def boundary_p(self, f: float, left: Strategy, right: Strategy) -> float | None:
        """Approximate ``P`` where the winner flips from ``left`` to ``right``.

        Scans the row nearest ``f`` for the first adjacent pair whose
        winners are ``left`` then ``right`` and returns the midpoint of
        their ``P`` values, or ``None`` if no such transition exists.
        """
        i = min(range(len(self.f_values)), key=lambda i: abs(self.f_values[i] - f))
        row = self.winners[i]
        for j in range(len(row) - 1):
            if row[j] is left and row[j + 1] is right:
                return (self.p_values[j] + self.p_values[j + 1]) / 2.0
        return None

    def render(self, symbols: dict[Strategy, str] | None = None) -> str:
        """ASCII rendering with ``f`` increasing upward, one char per cell."""
        symbols = symbols or _DEFAULT_SYMBOLS
        lines = []
        for i in reversed(range(len(self.f_values))):
            cells = "".join(symbols.get(s, "?") for s in self.winners[i])
            lines.append(f"f={self.f_values[i]:<8.3g} |{cells}|")
        lines.append(
            f"{'':11}P: {self.p_values[0]:.2f} .. {self.p_values[-1]:.2f}"
        )
        legend = ", ".join(
            f"{symbols.get(s, '?')}={s.label}" for s in self.strategies_present()
        )
        lines.append(f"{'':11}legend: {legend}")
        return "\n".join(lines)


_DEFAULT_SYMBOLS = {
    Strategy.DEFERRED: "d",
    Strategy.IMMEDIATE: "i",
    Strategy.QM_CLUSTERED: "c",
    Strategy.QM_UNCLUSTERED: "u",
    Strategy.QM_SEQUENTIAL: "s",
    Strategy.QM_LOOPJOIN: "j",
}


def compute_region_map(
    base: Parameters,
    model: ViewModel,
    p_values: Sequence[float],
    f_values: Sequence[float],
    strategies: Iterable[Strategy] | None = None,
    method: Method = "cardenas",
    parameterize: Callable[[Parameters, float, float], Parameters] | None = None,
) -> RegionMap:
    """Compute the winner at each (P, f) grid point.

    ``parameterize(base, p, f)`` produces the parameter set for one grid
    point; the default sets the update probability to ``p`` (holding
    ``q`` fixed) and the selectivity to ``f``, exactly as the paper's
    region figures do.
    """
    if parameterize is None:
        def parameterize(b: Parameters, p: float, f: float) -> Parameters:
            return b.with_update_probability(p).with_updates(f=f)

    strategy_tuple = tuple(strategies) if strategies is not None else None
    rows = []
    for f in f_values:
        row = []
        for p in p_values:
            params = parameterize(base, p, f)
            rec = recommend(params, model, strategies=strategy_tuple, method=method)
            row.append(rec.strategy)
        rows.append(tuple(row))
    return RegionMap(
        model=model,
        p_values=tuple(p_values),
        f_values=tuple(f_values),
        winners=tuple(rows),
    )
