"""Analytic cost model — the paper's primary contribution.

Public surface:

* :class:`~repro.core.parameters.Parameters` — Section 3.1's parameter
  set with the paper's defaults.
* :func:`~repro.core.yao.yao` — Appendix B's block-access estimator.
* :mod:`~repro.core.model1` / :mod:`~repro.core.model2` /
  :mod:`~repro.core.model3` — the per-model cost formulas.
* :func:`~repro.core.advisor.recommend` — cheapest-strategy selection.
* :func:`~repro.core.regions.compute_region_map` — Figures 2-4/6-7 grids.
* :func:`~repro.core.crossover.find_crossover_p` /
  :func:`~repro.core.crossover.equal_cost_curve` — Figure 9 and the
  EMP-DEPT crossover.
"""

from .advisor import Recommendation, evaluate, rank, recommend
from .costs import CostBreakdown
from .crossover import (
    CrossoverNotFound,
    EqualCostPoint,
    cost_difference,
    equal_cost_curve,
    find_crossover_p,
)
from .estimation import Histogram, estimate_parameters, estimate_selectivity
from .parameters import PAPER_DEFAULTS, ParameterError, Parameters, parameter_definitions
from .policies import (
    AsyncRefreshPoint,
    SnapshotAnalysis,
    analyze_async_refresh,
    analyze_snapshot,
    async_refresh_curve,
    snapshot_curve,
)
from .regions import RegionMap, compute_region_map, linspace, logspace
from .sensitivity import SENSITIVE_PARAMETERS, SensitivityResult, sensitivity, sweep
from .strategies import Strategy, ViewModel
from .yao import (
    refresh_batching_savings,
    triangle_inequality_holds,
    yao,
    yao_cardenas,
    yao_exact,
)

__all__ = [
    "AsyncRefreshPoint",
    "CostBreakdown",
    "SnapshotAnalysis",
    "analyze_async_refresh",
    "analyze_snapshot",
    "async_refresh_curve",
    "snapshot_curve",
    "Histogram",
    "estimate_parameters",
    "estimate_selectivity",
    "CrossoverNotFound",
    "EqualCostPoint",
    "PAPER_DEFAULTS",
    "ParameterError",
    "Parameters",
    "Recommendation",
    "RegionMap",
    "SENSITIVE_PARAMETERS",
    "SensitivityResult",
    "Strategy",
    "ViewModel",
    "compute_region_map",
    "cost_difference",
    "equal_cost_curve",
    "evaluate",
    "find_crossover_p",
    "linspace",
    "logspace",
    "parameter_definitions",
    "rank",
    "recommend",
    "refresh_batching_savings",
    "sensitivity",
    "sweep",
    "triangle_inequality_holds",
    "yao",
    "yao_cardenas",
    "yao_exact",
]
