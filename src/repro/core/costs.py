"""Cost breakdowns: named components summing to an average cost per query."""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Mapping

from .strategies import Strategy, ViewModel

__all__ = ["CostBreakdown"]


@dataclass(frozen=True)
class CostBreakdown:
    """An average cost per view query, split into the paper's named terms.

    ``components`` maps the paper's component names (``C_query1``,
    ``C_AD``, ``C_screen``, ...) to their millisecond values; ``total``
    is their sum.  Instances compare and order by ``total`` so a list of
    breakdowns can be ``min()``-ed to find the winning strategy.
    """

    strategy: Strategy
    model: ViewModel
    components: Mapping[str, float]
    total: float

    @classmethod
    def build(
        cls,
        strategy: Strategy,
        model: ViewModel,
        components: Mapping[str, float],
    ) -> "CostBreakdown":
        """Create a breakdown whose total is the sum of ``components``."""
        frozen = MappingProxyType(dict(components))
        return cls(
            strategy=strategy,
            model=model,
            components=frozen,
            total=float(sum(frozen.values())),
        )

    def __lt__(self, other: "CostBreakdown") -> bool:
        return self.total < other.total

    def component(self, name: str) -> float:
        """Return one named component (KeyError if absent)."""
        return self.components[name]

    def fraction(self, name: str) -> float:
        """Fraction of the total contributed by one component."""
        if self.total == 0:
            return 0.0
        return self.components[name] / self.total

    def to_dict(self) -> dict:
        """JSON-ready form: strategy/model tags, components, total."""
        return {
            "strategy": self.strategy.value,
            "model": int(self.model),
            "components": dict(self.components),
            "total_ms": self.total,
        }

    def describe(self) -> str:
        """Multi-line human-readable rendering, largest component first."""
        lines = [f"{self.strategy.label} (Model {int(self.model)}): {self.total:.1f} ms"]
        for name, value in sorted(
            self.components.items(), key=lambda item: -item[1]
        ):
            lines.append(f"  {name:<16} {value:10.2f} ms")
        return "\n".join(lines)
