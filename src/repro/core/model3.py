"""Model 3 cost formulas: aggregates over Model 1 views (Section 3.6).

The view is an incrementally maintainable aggregate (sum, count,
average, ...) over the tuples of ``R`` satisfying a predicate of
selectivity ``f``.  Only the aggregate *state* is stored — it fits in a
single disk block — so a view query is one page read, and a refresh is
one page write whenever at least one accumulated change falls in the
aggregated set.
"""

from __future__ import annotations

from .costs import CostBreakdown
from .model1 import cost_hr_maintenance, cost_read_ad, cost_screen
from .parameters import Parameters
from .strategies import Strategy, ViewModel
from .yao import Method

__all__ = [
    "cost_query_aggregate",
    "cost_deferred_refresh3",
    "cost_immediate_refresh3",
    "total_deferred3",
    "total_immediate3",
    "total_qm_clustered3",
    "all_totals3",
    "probability_state_touched",
]

_YAO: Method = "cardenas"


def probability_state_touched(f: float, changes: float) -> float:
    """Probability at least one of ``changes`` modified tuples is aggregated.

    Each modified tuple lies in the aggregated set independently with
    probability ``f``; the paper's ``1 - (1-f)**changes``.
    """
    if changes <= 0:
        return 0.0
    return 1.0 - (1.0 - f) ** changes


def cost_query_aggregate(p: Parameters) -> float:
    """``C_query3``: read the one-block aggregate state."""
    return p.c2


def cost_deferred_refresh3(p: Parameters) -> float:
    """``C_def_refresh3``: one state write if any batched change qualifies.

    ``2u`` modified tuples accumulate per query; no read is needed
    because the state is read anyway to answer the query.
    """
    return p.c2 * probability_state_touched(p.f, 2.0 * p.u)


def cost_immediate_refresh3(p: Parameters) -> float:
    """``C_imm_refresh3``: per-query cost of per-transaction state writes.

    Each transaction writes the state with probability
    ``1 - (1-f)**(2l)``; there are ``k/q`` transactions per query
    (DESIGN.md interpretation note 5).
    """
    per_txn = p.c2 * probability_state_touched(p.f, 2.0 * p.l)
    return (p.k / p.q) * per_txn


def total_deferred3(p: Parameters, method: Method = _YAO) -> CostBreakdown:
    """``TOTAL_deferred3``: HR upkeep + AD read + state read + lazy write."""
    return CostBreakdown.build(
        Strategy.DEFERRED,
        ViewModel.AGGREGATE,
        {
            "C_AD": cost_hr_maintenance(p, method=method),
            "C_ADread": cost_read_ad(p),
            "C_query3": cost_query_aggregate(p),
            "C_def_refresh3": cost_deferred_refresh3(p),
            "C_screen": cost_screen(p),
        },
    )


def total_immediate3(p: Parameters) -> CostBreakdown:
    """``TOTAL_immediate3``: state read + eager state writes + screening."""
    return CostBreakdown.build(
        Strategy.IMMEDIATE,
        ViewModel.AGGREGATE,
        {
            "C_query3": cost_query_aggregate(p),
            "C_imm_refresh3": cost_immediate_refresh3(p),
            "C_screen": cost_screen(p),
        },
    )


def total_qm_clustered3(p: Parameters) -> CostBreakdown:
    """Recompute the aggregate from scratch with a clustered index scan.

    An aggregate needs the *entire* selected set, so this is
    ``TOTAL_clustered`` evaluated at ``f_v = 1``: ``c2*b*f`` page reads
    plus ``c1*N*f`` screens (DESIGN.md interpretation note 6).
    """
    return CostBreakdown.build(
        Strategy.QM_CLUSTERED,
        ViewModel.AGGREGATE,
        {
            "C_io": p.c2 * p.b * p.f,
            "C_cpu": p.c1 * p.N * p.f,
        },
    )


def all_totals3(p: Parameters, method: Method = _YAO) -> dict[Strategy, CostBreakdown]:
    """All Model 3 strategies' breakdowns, keyed by strategy."""
    breakdowns = (
        total_deferred3(p, method=method),
        total_immediate3(p),
        total_qm_clustered3(p),
    )
    return {bd.strategy: bd for bd in breakdowns}
