"""Parameter sensitivity analysis for the conclusion's five key knobs.

Section 4 names the parameters the results are "most sensitive to":
``P``, ``f``, ``f_v``, ``l`` and the A/D-set maintenance cost (``c3``
and the HR I/O).  This module quantifies that: for each parameter it
perturbs the value around a base point and reports the elasticity of
every strategy's cost, plus whether the winning strategy flips.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from .advisor import evaluate, recommend
from .parameters import Parameters
from .strategies import Strategy, ViewModel
from .yao import Method

__all__ = ["SensitivityResult", "sensitivity", "sweep", "SENSITIVE_PARAMETERS"]


def _set_p(base: Parameters, value: float) -> Parameters:
    return base.with_update_probability(value)


def _setter(name: str) -> Callable[[Parameters, float], Parameters]:
    def apply(base: Parameters, value: float) -> Parameters:
        return base.with_updates(**{name: value})

    return apply


#: The conclusion's sensitive parameters, mapped to setter functions.
SENSITIVE_PARAMETERS: Mapping[str, Callable[[Parameters, float], Parameters]] = {
    "P": _set_p,
    "f": _setter("f"),
    "f_v": _setter("f_v"),
    "l": _setter("l"),
    "c3": _setter("c3"),
}


@dataclass(frozen=True)
class SensitivityResult:
    """Effect of perturbing one parameter on every strategy's cost.

    ``elasticities[s]`` approximates d(log cost)/d(log value) for
    strategy ``s`` at the base point; ``winner_before``/``winner_after``
    record whether the recommendation flips over the perturbation.
    """

    parameter: str
    base_value: float
    perturbed_value: float
    elasticities: Mapping[Strategy, float]
    winner_before: Strategy
    winner_after: Strategy

    @property
    def flips_winner(self) -> bool:
        return self.winner_before is not self.winner_after

    @property
    def most_sensitive_strategy(self) -> Strategy:
        return max(self.elasticities, key=lambda s: abs(self.elasticities[s]))


def sensitivity(
    base: Parameters,
    model: ViewModel,
    parameter: str,
    base_value: float,
    relative_step: float = 0.25,
    method: Method = "cardenas",
) -> SensitivityResult:
    """Measure cost elasticity of every strategy to one parameter.

    The parameter is moved from ``base_value`` to ``base_value * (1 +
    relative_step)`` and log-log slopes are computed.  ``parameter``
    must be a key of :data:`SENSITIVE_PARAMETERS`.
    """
    import math

    if parameter not in SENSITIVE_PARAMETERS:
        raise KeyError(
            f"unknown sensitive parameter {parameter!r}; "
            f"expected one of {sorted(SENSITIVE_PARAMETERS)}"
        )
    apply = SENSITIVE_PARAMETERS[parameter]
    perturbed_value = base_value * (1.0 + relative_step)
    before_params = apply(base, base_value)
    after_params = apply(base, perturbed_value)

    before = evaluate(before_params, model, method=method)
    after = evaluate(after_params, model, method=method)
    dlog_x = math.log(perturbed_value / base_value)
    elasticities = {}
    for strategy, bd in before.items():
        if bd.total <= 0 or after[strategy].total <= 0:
            elasticities[strategy] = 0.0
        else:
            elasticities[strategy] = (
                math.log(after[strategy].total / bd.total) / dlog_x
            )
    return SensitivityResult(
        parameter=parameter,
        base_value=base_value,
        perturbed_value=perturbed_value,
        elasticities=elasticities,
        winner_before=recommend(before_params, model, method=method).strategy,
        winner_after=recommend(after_params, model, method=method).strategy,
    )


def sweep(
    base: Parameters,
    model: ViewModel,
    parameter: str,
    values: Sequence[float],
    method: Method = "cardenas",
) -> tuple[tuple[float, Strategy, float], ...]:
    """Winner and winning cost for each value of one sensitive parameter.

    Returns ``(value, winner, winning_cost_ms)`` triples — the raw data
    behind "higher P favors query modification"-style statements.
    """
    apply = SENSITIVE_PARAMETERS[parameter]
    rows = []
    for value in values:
        rec = recommend(apply(base, value), model, method=method)
        rows.append((value, rec.strategy, rec.best.total))
    return tuple(rows)
