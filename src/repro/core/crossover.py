"""Equal-cost curves and crossover points between strategies.

Figure 9 plots, for several selectivities ``f``, the curve in the
``(l, P)`` plane where immediate aggregate maintenance and recomputation
via a clustered scan cost the same.  Section 3.5's EMP-DEPT result —
query modification beats materialization for all ``P >= ~.08`` on big
views with single-tuple queries — is a crossover in ``P``.  Both are
found here by bisection on a sign change of the cost difference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from .advisor import evaluate
from .parameters import Parameters
from .strategies import Strategy, ViewModel
from .yao import Method

__all__ = [
    "CrossoverNotFound",
    "cost_difference",
    "find_crossover_p",
    "equal_cost_curve",
    "EqualCostPoint",
]

_P_EPSILON = 1e-6


class CrossoverNotFound(RuntimeError):
    """No sign change of the cost difference exists on the search interval."""


def cost_difference(
    p: Parameters,
    model: ViewModel,
    first: Strategy,
    second: Strategy,
    method: Method = "cardenas",
) -> float:
    """``cost(first) - cost(second)`` at the given parameters (ms)."""
    costs = evaluate(p, model, strategies=(first, second), method=method)
    return costs[first].total - costs[second].total


def find_crossover_p(
    base: Parameters,
    model: ViewModel,
    first: Strategy,
    second: Strategy,
    lo: float = _P_EPSILON,
    hi: float = 1.0 - _P_EPSILON,
    tolerance: float = 1e-5,
    method: Method = "cardenas",
) -> float:
    """Find the update probability where two strategies cost the same.

    Bisects ``P`` on ``[lo, hi]`` (holding ``q`` and all other
    parameters fixed) for a root of the cost difference.  Raises
    :class:`CrossoverNotFound` when both endpoints have the same sign —
    i.e. one strategy dominates over the whole interval.
    """
    def diff(p_value: float) -> float:
        params = base.with_update_probability(p_value)
        return cost_difference(params, model, first, second, method=method)

    d_lo, d_hi = diff(lo), diff(hi)
    if d_lo == 0.0:
        return lo
    if d_hi == 0.0:
        return hi
    if (d_lo > 0) == (d_hi > 0):
        raise CrossoverNotFound(
            f"{first.label} vs {second.label}: no crossover in P ∈ [{lo:.4g}, {hi:.4g}] "
            f"(differences {d_lo:.4g} and {d_hi:.4g})"
        )
    while hi - lo > tolerance:
        mid = (lo + hi) / 2.0
        d_mid = diff(mid)
        if d_mid == 0.0:
            return mid
        if (d_mid > 0) == (d_lo > 0):
            lo, d_lo = mid, d_mid
        else:
            hi = mid
    return (lo + hi) / 2.0


@dataclass(frozen=True)
class EqualCostPoint:
    """One point on an equal-cost curve: at ``x``, the tie is at ``P = p``.

    ``p`` is ``None`` when one strategy dominates for every ``P`` at
    that ``x`` (the curve has left the unit square, as happens in
    Figure 9 for small ``l`` where maintenance always wins).
    """

    x: float
    p: float | None


def equal_cost_curve(
    base: Parameters,
    model: ViewModel,
    first: Strategy,
    second: Strategy,
    x_values: Sequence[float],
    apply_x: Callable[[Parameters, float], Parameters],
    method: Method = "cardenas",
) -> tuple[EqualCostPoint, ...]:
    """Trace ``P``-crossovers as a second parameter ``x`` sweeps.

    ``apply_x(base, x)`` sets the swept parameter (e.g. ``l`` for
    Figure 9).  Points where no crossover exists carry ``p=None``.
    """
    points = []
    for x in x_values:
        params = apply_x(base, x)
        try:
            p_star = find_crossover_p(params, model, first, second, method=method)
        except CrossoverNotFound:
            points.append(EqualCostPoint(x=x, p=None))
        else:
            points.append(EqualCostPoint(x=x, p=p_star))
    return tuple(points)
