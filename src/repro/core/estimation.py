"""Derive cost-model parameters from a live database.

The paper's formulas need ``N``, ``S``, ``B``, ``f``, ``f_v``, ``f_r2``
and the workload mix — numbers a practitioner rarely knows offhand.
This module measures them: relation statistics come from the catalog,
the view selectivity ``f`` from an equi-depth histogram over the
predicate attribute, and the workload mix from an operation log the
database already keeps (``transactions_applied`` / ``queries_answered``)
or from explicit counts.

The result plugs straight into :func:`repro.core.advisor.recommend`,
turning the advisor into "point it at a database and ask".
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Sequence

from .parameters import PAPER_DEFAULTS, Parameters

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.database import Database
    from repro.views.definition import JoinView, SelectProjectView

__all__ = ["Histogram", "estimate_selectivity", "estimate_parameters"]


@dataclass(frozen=True)
class Histogram:
    """An equi-depth histogram over one attribute.

    ``boundaries[i]`` is the upper edge of bucket ``i``; each bucket
    holds ~``depth`` values.  Selectivity estimates interpolate inside
    the boundary buckets, the classical System-R approach.
    """

    boundaries: tuple[Any, ...]
    depth: float
    total: int

    @classmethod
    def build(cls, values: Sequence[Any], buckets: int = 32) -> "Histogram":
        """Construct from a sample of attribute values."""
        if not values:
            raise ValueError("cannot build a histogram from no values")
        if buckets < 1:
            raise ValueError(f"buckets must be >= 1, got {buckets}")
        ordered = sorted(values)
        total = len(ordered)
        buckets = min(buckets, total)
        depth = total / buckets
        boundaries = tuple(
            ordered[min(total - 1, int(round((i + 1) * depth)) - 1)]
            for i in range(buckets)
        )
        return cls(boundaries=boundaries, depth=depth, total=total)

    def selectivity(self, lo: Any, hi: Any) -> float:
        """Estimated fraction of values in ``[lo, hi]``."""
        if hi < lo or self.total == 0:
            return 0.0
        # Buckets whose upper edge lands inside [lo, hi] are fully
        # counted (bisect_right so duplicate edges — heavy skew — all
        # count); one extra bucket of credit covers the straddlers.
        first = bisect.bisect_left(self.boundaries, lo)
        last = bisect.bisect_right(self.boundaries, hi)
        covered = max(0, last - first)
        fraction = (covered + 1.0) * self.depth / self.total
        return max(0.0, min(1.0, fraction))


def estimate_selectivity(
    database: "Database", relation_name: str, field: str,
    lo: Any, hi: Any, buckets: int = 32,
) -> float:
    """Histogram-estimated selectivity of ``lo <= field <= hi``.

    Uses the relation's in-memory snapshot (statistics collection —
    no workload I/O is charged).
    """
    relation = database.relations[relation_name]
    snapshot = (
        relation.base.records_snapshot()
        if hasattr(relation, "base")
        else relation.records_snapshot()
    )
    values = [r[field] for r in snapshot]
    if not values:
        return 0.0
    return Histogram.build(values, buckets=buckets).selectivity(lo, hi)


def estimate_parameters(
    database: "Database",
    definition: "SelectProjectView | JoinView",
    f_v: float | None = None,
    updates: int | None = None,
    queries: int | None = None,
    tuples_per_transaction: float | None = None,
) -> Parameters:
    """Measure a :class:`Parameters` set for a view over a database.

    * ``N``, ``S``, ``B`` from the catalog.
    * ``f`` from an equi-depth histogram over the predicate attribute
      (falling back to the predicate's own hint, then the paper's .1).
    * ``f_r2`` from the two relations' cardinalities (join views).
    * Workload mix from explicit counts when given, else the database's
      own operation counters, else the paper's defaults.
    * Cost constants stay at the paper's values (they describe the
      simulated hardware, not the data).
    """
    from repro.views.definition import JoinView

    is_join = isinstance(definition, JoinView)
    relation_name = definition.outer if is_join else definition.relation
    relation = database.relations[relation_name]
    base = relation.base if hasattr(relation, "base") else relation
    n_tuples = max(1, len(base))

    # Selectivity: histogram over the predicate's interval when it has
    # one; otherwise the definition's hint; otherwise the default.
    selectivity = definition.predicate.selectivity_hint()
    intervals = definition.predicate.intervals()
    if intervals:
        interval = intervals[0]
        measured = estimate_selectivity(
            database, relation_name, interval.field, interval.lo, interval.hi
        )
        if measured > 0:
            selectivity = measured
    if not selectivity or not 0.0 < selectivity <= 1.0:
        selectivity = PAPER_DEFAULTS.f

    f_r2 = PAPER_DEFAULTS.f_r2
    if is_join:
        inner = database.relations[definition.inner]
        f_r2 = min(1.0, max(1e-9, len(inner) / n_tuples))

    k = float(updates if updates is not None else database.transactions_applied)
    q = float(queries if queries is not None else database.queries_answered)
    if q <= 0:
        k, q = PAPER_DEFAULTS.k, PAPER_DEFAULTS.q

    return Parameters(
        N=n_tuples,
        S=base.schema.tuple_bytes,
        B=database.block_bytes,
        k=max(0.0, k),
        l=float(
            tuples_per_transaction
            if tuples_per_transaction is not None
            else PAPER_DEFAULTS.l
        ),
        q=q,
        f=selectivity,
        f_v=f_v if f_v is not None else PAPER_DEFAULTS.f_v,
        f_r2=f_r2,
    )
