"""Cost-model parameters from Section 3.1 of the paper.

The paper drives every cost formula from a small set of parameters
describing the database (``N``, ``S``, ``B``, ``n``), the workload
(``k``, ``l``, ``q``), the view definition (``f``, ``f_v``, ``f_r2``)
and the cost constants (``c1``, ``c2``, ``c3``).  :class:`Parameters`
holds those values together with the paper's default settings and
exposes the derived quantities (``b``, ``T``, ``u``, ``P``, index
heights) that the formulas in :mod:`repro.core.model1`,
:mod:`repro.core.model2` and :mod:`repro.core.model3` consume.

All costs are expressed in **milliseconds**, as in the paper: a disk
I/O costs ``c2`` (default 30 ms), a CPU predicate screen costs ``c1``
(default 1 ms), and manipulating one tuple of the in-memory A/D sets in
immediate maintenance costs ``c3`` (default 1 ms).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields, replace
from typing import Any, Iterator, Mapping

__all__ = ["Parameters", "ParameterError", "PAPER_DEFAULTS", "parameter_definitions"]


class ParameterError(ValueError):
    """Raised when a :class:`Parameters` instance is inconsistent."""


#: Human-readable definition of every paper parameter, in paper order.
#: Used by the ``params-table`` experiment to regenerate Section 3.1's
#: parameter tables.
_PARAMETER_DEFINITIONS: tuple[tuple[str, str], ...] = (
    ("N", "number of tuples in relation"),
    ("S", "bytes per tuple"),
    ("B", "bytes per block"),
    ("b", "total blocks (b = N*S/B)"),
    ("T", "number of tuples per page (T = B/S)"),
    ("n", "number of bytes in a B+-tree index record"),
    ("k", "number of update transactions on base relation"),
    ("l", "number of tuples modified by each update transaction"),
    ("q", "number of times view queried"),
    ("u", "number of tuples updated between view queries (u = k*l/q)"),
    ("P", "probability that a given operation is an update (P = k/(k+q))"),
    ("f", "view predicate selectivity for Model 1"),
    ("f_v", "fraction of view retrieved per query"),
    ("f_r2", "size of R2 as a fraction of R1"),
    ("c1", "CPU cost to screen a record against a predicate (ms)"),
    ("c2", "cost of a disk read or write (ms)"),
    ("c3", "cost per tuple per transaction to manipulate A and D sets in immediate (ms)"),
)


def parameter_definitions() -> tuple[tuple[str, str], ...]:
    """Return ``(name, definition)`` pairs for every paper parameter."""
    return _PARAMETER_DEFINITIONS


@dataclass(frozen=True)
class Parameters:
    """The paper's cost-model parameter set (Section 3.1 defaults).

    Instances are immutable; derive variants with :meth:`with_updates`
    (or :func:`dataclasses.replace`).  ``P`` is not stored — it is
    derived from ``k`` and ``q`` — but a workload with a target update
    probability can be built with :meth:`with_update_probability`.

    Attributes mirror the paper's symbols; ``f_v`` is the fraction of
    the view read per query (called :math:`f_v`/:math:`f_0` in the
    text) and ``f_r2`` the size of ``R2`` relative to ``R1``.
    """

    N: int = 100_000
    S: int = 100
    B: int = 4_000
    k: float = 100.0
    l: float = 25.0
    q: float = 100.0
    n: int = 20
    f: float = 0.1
    f_v: float = 0.1
    f_r2: float = 0.1
    c1: float = 1.0
    c2: float = 30.0
    c3: float = 1.0

    def __post_init__(self) -> None:
        self.validate()

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`ParameterError` if any value is out of range."""
        positive = {
            "N": self.N,
            "S": self.S,
            "B": self.B,
            "q": self.q,
            "n": self.n,
            "c2": self.c2,
        }
        for name, value in positive.items():
            if value <= 0:
                raise ParameterError(f"parameter {name} must be > 0, got {value!r}")
        non_negative = {
            "k": self.k,
            "l": self.l,
            "c1": self.c1,
            "c3": self.c3,
        }
        for name, value in non_negative.items():
            if value < 0:
                raise ParameterError(f"parameter {name} must be >= 0, got {value!r}")
        for name, value in (("f", self.f), ("f_v", self.f_v), ("f_r2", self.f_r2)):
            if not 0.0 < value <= 1.0:
                raise ParameterError(
                    f"selectivity {name} must be in (0, 1], got {value!r}"
                )
        if self.S > self.B:
            raise ParameterError(
                f"tuple size S={self.S} exceeds block size B={self.B}"
            )
        if self.n >= self.B:
            raise ParameterError(
                f"index record size n={self.n} must be smaller than block size B={self.B}"
            )

    # ------------------------------------------------------------------
    # derived quantities (Section 3.1)
    # ------------------------------------------------------------------
    @property
    def b(self) -> float:
        """Total blocks occupied by the base relation: ``b = N*S/B``."""
        return self.N * self.S / self.B

    @property
    def T(self) -> float:
        """Tuples per page: ``T = B/S``."""
        return self.B / self.S

    @property
    def u(self) -> float:
        """Tuples updated between view queries: ``u = k*l/q``."""
        return self.k * self.l / self.q

    @property
    def P(self) -> float:
        """Probability an operation is an update: ``P = k/(k+q)``."""
        return self.k / (self.k + self.q)

    @property
    def fanout(self) -> float:
        """B+-tree index fanout: ``B/n`` index records per page."""
        return self.B / self.n

    @property
    def view_tuples_model1(self) -> float:
        """Number of tuples in the Model 1 (and Model 2) view: ``f*N``."""
        return self.f * self.N

    @property
    def view_pages_model1(self) -> float:
        """Pages in the Model 1 view: ``f*b/2`` (half the attributes projected)."""
        return self.f * self.b / 2.0

    @property
    def view_pages_model2(self) -> float:
        """Pages in the Model 2 join view: ``f*b`` (result tuples are S bytes)."""
        return self.f * self.b

    @property
    def H_vi(self) -> int:
        """Height of the B+-tree index over the view (excluding data pages).

        ``H_vi = ceil(log_{B/n}(f*N))`` — Section 3.2.1.
        """
        return self.index_height(self.view_tuples_model1)

    @property
    def H_base(self) -> int:
        """Height of the B+-tree index over the base relation (``N`` entries)."""
        return self.index_height(self.N)

    def index_height(self, entries: float) -> int:
        """Height of a B+-tree with the given number of leaf entries.

        Assumes full packing with fanout ``B/n`` as in the paper; the
        height never drops below one (there is always a root to read).
        """
        if entries <= 1:
            return 1
        return max(1, math.ceil(math.log(entries, self.fanout)))

    # ------------------------------------------------------------------
    # constructors / transformers
    # ------------------------------------------------------------------
    def with_updates(self, **changes: Any) -> "Parameters":
        """Return a copy with the given fields replaced (and re-validated)."""
        return replace(self, **changes)

    def with_update_probability(self, p: float) -> "Parameters":
        """Return a copy whose workload has update probability ``P = p``.

        ``q`` is held fixed and ``k`` set to ``q*p/(1-p)``; this follows
        the paper's figures, which sweep ``P`` with the per-transaction
        and per-query shapes unchanged.  ``p`` must lie in ``[0, 1)``.
        """
        if not 0.0 <= p < 1.0:
            raise ParameterError(f"update probability must be in [0, 1), got {p!r}")
        return self.with_updates(k=self.q * p / (1.0 - p))

    def as_dict(self) -> dict[str, float]:
        """Return stored fields as a plain dict (derived values excluded)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "Parameters":
        """Build parameters from a mapping, ignoring unknown keys."""
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in mapping.items() if k in known})

    def iter_rows(self) -> Iterator[tuple[str, str, float]]:
        """Yield ``(name, definition, value)`` rows including derived values.

        The order matches the paper's parameter table in Section 3.1.
        """
        derived = {"b": self.b, "T": self.T, "u": self.u, "P": self.P}
        stored = self.as_dict()
        for name, definition in _PARAMETER_DEFINITIONS:
            if name in stored:
                yield name, definition, float(stored[name])
            else:
                yield name, definition, float(derived[name])


#: The paper's default parameter settings (Section 3.1, second table).
PAPER_DEFAULTS = Parameters()
