"""Strategy advisor: pick the cheapest materialization strategy.

This is the decision procedure the paper's conclusion sketches: given
the database/workload parameters and a view model, evaluate every
applicable strategy's analytic cost and recommend the minimum.  The
advisor also explains *why* (full breakdowns and margins), which the
region maps (:mod:`repro.core.regions`) and examples build on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

from . import model1, model2, model3
from .costs import CostBreakdown
from .parameters import Parameters
from .strategies import Strategy, ViewModel
from .yao import Method

__all__ = ["Recommendation", "evaluate", "recommend", "rank"]

_MODEL_EVALUATORS: Mapping[
    ViewModel, Callable[[Parameters, Method], dict[Strategy, CostBreakdown]]
] = {
    ViewModel.SELECT_PROJECT: lambda p, m: model1.all_totals(p, method=m),
    ViewModel.JOIN: lambda p, m: model2.all_totals2(p, method=m),
    ViewModel.AGGREGATE: lambda p, m: model3.all_totals3(p, method=m),
}


@dataclass(frozen=True)
class Recommendation:
    """The advisor's answer: the winner plus the full ranking."""

    model: ViewModel
    best: CostBreakdown
    ranking: tuple[CostBreakdown, ...]

    @property
    def strategy(self) -> Strategy:
        return self.best.strategy

    @property
    def runner_up(self) -> CostBreakdown:
        """Second-cheapest strategy (the winner itself if it is alone)."""
        return self.ranking[1] if len(self.ranking) > 1 else self.ranking[0]

    @property
    def margin(self) -> float:
        """Cost advantage over the runner-up, in milliseconds."""
        return self.runner_up.total - self.best.total

    @property
    def relative_margin(self) -> float:
        """Margin as a fraction of the runner-up's cost (0 if tied)."""
        if self.runner_up.total == 0:
            return 0.0
        return self.margin / self.runner_up.total

    def to_dict(self) -> dict:
        """JSON-ready form: winner, margins, and the full ranking."""
        return {
            "model": int(self.model),
            "recommended": self.strategy.value,
            "total_ms": self.best.total,
            "margin_ms": self.margin,
            "relative_margin": self.relative_margin,
            "ranking": [bd.to_dict() for bd in self.ranking],
        }

    def describe(self) -> str:
        """Readable report: winner, margin, and the ranked costs."""
        lines = [
            f"Model {int(self.model)} recommendation: {self.strategy.label} "
            f"({self.best.total:.1f} ms/query, "
            f"{self.relative_margin:.1%} cheaper than {self.runner_up.strategy.label})"
        ]
        for bd in self.ranking:
            lines.append(f"  {bd.strategy.label:<12} {bd.total:12.1f} ms")
        return "\n".join(lines)


def evaluate(
    p: Parameters,
    model: ViewModel,
    strategies: Iterable[Strategy] | None = None,
    method: Method = "cardenas",
) -> dict[Strategy, CostBreakdown]:
    """Evaluate analytic costs for one view model.

    ``strategies`` restricts the comparison (e.g. Figure 1 omits the
    off-scale sequential scan); by default every strategy the paper
    defines for the model is costed.
    """
    breakdowns = _MODEL_EVALUATORS[model](p, method)
    if strategies is not None:
        wanted = set(strategies)
        unknown = wanted - set(breakdowns)
        if unknown:
            names = ", ".join(sorted(s.value for s in unknown))
            raise ValueError(f"strategies not defined for Model {int(model)}: {names}")
        breakdowns = {s: bd for s, bd in breakdowns.items() if s in wanted}
    return breakdowns


def rank(
    p: Parameters,
    model: ViewModel,
    strategies: Iterable[Strategy] | None = None,
    method: Method = "cardenas",
) -> tuple[CostBreakdown, ...]:
    """All applicable strategies sorted cheapest-first (ties by label)."""
    breakdowns = evaluate(p, model, strategies=strategies, method=method)
    return tuple(sorted(breakdowns.values(), key=lambda bd: (bd.total, bd.strategy.value)))


def recommend(
    p: Parameters,
    model: ViewModel,
    strategies: Iterable[Strategy] | None = None,
    method: Method = "cardenas",
) -> Recommendation:
    """Pick the cheapest strategy for the given parameters and model."""
    ranking = rank(p, model, strategies=strategies, method=method)
    return Recommendation(model=model, best=ranking[0], ranking=ranking)
