"""The Yao function: expected blocks touched by a partial file access.

Appendix B of the paper: given ``n`` records on ``m`` blocks, the
expected number of blocks touched when accessing ``k`` distinct records
is

.. math::

    y(n, m, k) = m \\left(1 - \\frac{\\binom{n - n/m}{k}}{\\binom{n}{k}}\\right)

(Yao 1977).  The Cardenas approximation ``m*(1 - (1 - 1/m)**k)``
(Cardenas 1975) is very close when the blocking factor ``n/m`` exceeds
about 10, and — unlike the exact form — is defined for the fractional
record counts the paper's formulas plug in (``2fu``, ``2u/T``, ...).

Section 4 relies on the Yao function being *subadditive in k*
(:func:`triangle_inequality_holds`): refreshing a view once with ``a+b``
accumulated changes never touches more blocks than refreshing twice
with ``a`` and then ``b`` changes, which is the paper's argument for
deferring refresh as long as possible.
"""

from __future__ import annotations

import math
from typing import Literal

__all__ = [
    "yao",
    "yao_exact",
    "yao_cardenas",
    "triangle_inequality_holds",
    "refresh_batching_savings",
    "yao_upper_bound",
]

Method = Literal["auto", "exact", "cardenas"]


def yao_cardenas(n: float, m: float, k: float) -> float:
    """Cardenas approximation ``m*(1 - (1 - 1/m)**k)``.

    Accepts fractional arguments.  Degenerate inputs are clamped:
    a non-positive ``n``, ``m`` or ``k`` touches zero blocks, ``k`` is
    capped at ``n`` (there are only ``n`` records), and ``m`` is raised
    to one (a file occupies at least one block).  The result always
    satisfies ``0 <= y <= min(m, k_capped)`` up to floating error.
    """
    if n <= 0 or m <= 0 or k <= 0:
        return 0.0
    m = max(m, 1.0)
    k = min(k, n)
    if m == 1.0:
        value = 1.0
    else:
        value = m * (1.0 - (1.0 - 1.0 / m) ** k)
    # The expectation can never exceed the records accessed; this only
    # binds for fractional k < 1 after the m >= 1 clamp.
    return min(value, k)


def yao_exact(n: int, m: int, k: int) -> float:
    """Exact Yao (1977) formula for integer arguments.

    Computed with the numerically stable product form

    ``y = m * (1 - prod_{i=0}^{k-1} (n - p - i) / (n - i))``

    where ``p = n/m`` is the blocking factor.  Requires ``m`` to divide
    ``n`` evenly (the classical uniform-packing assumption); raises
    :class:`ValueError` otherwise so callers do not silently get a
    subtly wrong expectation.
    """
    if n < 0 or m < 0 or k < 0:
        raise ValueError(f"yao_exact arguments must be non-negative, got {(n, m, k)}")
    if n == 0 or m == 0 or k == 0:
        return 0.0
    if n % m != 0:
        raise ValueError(
            f"yao_exact requires m | n for uniform packing; got n={n}, m={m}"
        )
    k = min(k, n)
    p = n // m
    if k > n - p:
        # Every block is guaranteed to be touched.
        return float(m)
    prod = 1.0
    for i in range(k):
        prod *= (n - p - i) / (n - i)
    return m * (1.0 - prod)


def yao(n: float, m: float, k: float, method: Method = "auto") -> float:
    """Expected blocks touched accessing ``k`` of ``n`` records on ``m`` blocks.

    ``method`` selects the formula:

    * ``"cardenas"`` — always use the approximation (fraction-friendly).
    * ``"exact"`` — require integer arguments with ``m | n``.
    * ``"auto"`` (default) — use the exact form when the arguments are
      integral and compatible, otherwise fall back to Cardenas.  This is
      what the paper does implicitly: its Appendix B states the exact
      form but evaluates curves with the approximation.
    """
    if method == "cardenas":
        return yao_cardenas(n, m, k)
    if method == "exact":
        return yao_exact(int(n), int(m), int(k))
    is_integral = (
        float(n).is_integer() and float(m).is_integer() and float(k).is_integer()
    )
    if is_integral and n > 0 and m > 0 and int(n) % int(m) == 0:
        return yao_exact(int(n), int(m), int(k))
    return yao_cardenas(n, m, k)


def triangle_inequality_holds(
    n: float, m: float, a: float, b: float, method: Method = "cardenas"
) -> bool:
    """Check ``y(n,m,a+b) <= y(n,m,a) + y(n,m,b)`` (Section 4).

    Subadditivity in the access count is what makes batched (deferred)
    refresh cheaper than repeated eager refresh.  A tiny tolerance
    absorbs floating-point noise.
    """
    lhs = yao(n, m, a + b, method=method)
    rhs = yao(n, m, a, method=method) + yao(n, m, b, method=method)
    return lhs <= rhs + 1e-9


def refresh_batching_savings(
    n: float, m: float, batch: float, splits: int, method: Method = "cardenas"
) -> float:
    """Blocks saved by one refresh of ``batch`` changes vs ``splits`` refreshes.

    Returns ``splits * y(n, m, batch/splits) - y(n, m, batch)`` — the
    expected number of block accesses avoided by deferring a refresh
    until ``batch`` changes have accumulated instead of refreshing
    every ``batch/splits`` changes.  Non-negative by subadditivity.
    """
    if splits < 1:
        raise ValueError(f"splits must be >= 1, got {splits}")
    eager = splits * yao(n, m, batch / splits, method=method)
    deferred = yao(n, m, batch, method=method)
    return eager - deferred


def yao_upper_bound(m: float, k: float) -> float:
    """Upper bound on any Yao value: at most ``min(m, k)`` blocks.

    The expectation can never exceed the number of blocks in the file
    nor the number of records accessed; exposed for tests that pin the
    clamping behaviour of :func:`yao_cardenas`.
    """
    return min(max(m, 0.0), max(k, 0.0))
