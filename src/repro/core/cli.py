"""``repro-advisor``: strategy recommendation from the command line.

Feed it your database/workload parameters and a view structure, get
the paper's cost comparison and a recommendation::

    repro-advisor --model 1 --n-tuples 250000 -f 0.05 --fv 0.5 -P 0.1
    repro-advisor --model 2 --sweep-p      # winner across P
    repro-advisor --model 3 --breakdown    # component-level costs
    repro-advisor --json                   # machine-readable output
"""

from __future__ import annotations

import argparse
import json
import sys

from .advisor import evaluate, recommend
from .parameters import PAPER_DEFAULTS, ParameterError, Parameters
from .strategies import ViewModel

__all__ = ["main", "build_parameters"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-advisor",
        description="Pick the cheapest view materialization strategy "
        "(query modification vs immediate vs deferred) using Hanson's "
        "SIGMOD 1987 cost model.",
    )
    parser.add_argument("--model", type=int, choices=(1, 2, 3), default=1,
                        help="view structure: 1=select-project, 2=two-way join, "
                        "3=aggregate (default 1)")
    parser.add_argument("--n-tuples", type=int, default=PAPER_DEFAULTS.N,
                        metavar="N", help="tuples in the base relation")
    parser.add_argument("--tuple-bytes", type=int, default=PAPER_DEFAULTS.S,
                        metavar="S", help="bytes per tuple")
    parser.add_argument("--block-bytes", type=int, default=PAPER_DEFAULTS.B,
                        metavar="B", help="bytes per disk block")
    parser.add_argument("-f", "--selectivity", type=float, default=PAPER_DEFAULTS.f,
                        help="view predicate selectivity f")
    parser.add_argument("--fv", type=float, default=PAPER_DEFAULTS.f_v,
                        help="fraction of the view each query reads")
    parser.add_argument("--fr2", type=float, default=PAPER_DEFAULTS.f_r2,
                        help="inner relation size as a fraction of the outer (Model 2)")
    parser.add_argument("-P", "--update-probability", type=float, default=None,
                        help="fraction of operations that are updates "
                        "(overrides -k/-q)")
    parser.add_argument("-k", "--updates", type=float, default=PAPER_DEFAULTS.k,
                        help="update transactions")
    parser.add_argument("-q", "--queries", type=float, default=PAPER_DEFAULTS.q,
                        help="view queries")
    parser.add_argument("-l", "--tuples-per-txn", type=float, default=PAPER_DEFAULTS.l,
                        help="tuples modified per transaction")
    parser.add_argument("--io-ms", type=float, default=PAPER_DEFAULTS.c2,
                        help="cost of one disk I/O in ms (C2)")
    parser.add_argument("--screen-ms", type=float, default=PAPER_DEFAULTS.c1,
                        help="cost of one predicate screen in ms (C1)")
    parser.add_argument("--adset-ms", type=float, default=PAPER_DEFAULTS.c3,
                        help="per-tuple A/D set maintenance cost in ms (C3)")
    parser.add_argument("--breakdown", action="store_true",
                        help="print component-level costs for every strategy")
    parser.add_argument("--sweep-p", action="store_true",
                        help="print the winner across update probabilities")
    parser.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON instead of text")
    return parser


def build_parameters(args: argparse.Namespace) -> Parameters:
    """Translate CLI flags into a validated parameter set."""
    params = Parameters(
        N=args.n_tuples,
        S=args.tuple_bytes,
        B=args.block_bytes,
        k=args.updates,
        l=args.tuples_per_txn,
        q=args.queries,
        f=args.selectivity,
        f_v=args.fv,
        f_r2=args.fr2,
        c1=args.screen_ms,
        c2=args.io_ms,
        c3=args.adset_ms,
    )
    if args.update_probability is not None:
        params = params.with_update_probability(args.update_probability)
    return params


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        params = build_parameters(args)
    except ParameterError as exc:
        print(f"invalid parameters: {exc}", file=sys.stderr)
        return 2
    model = ViewModel(args.model)

    if args.sweep_p:
        points = []
        for percent in range(5, 100, 5):
            p = percent / 100
            rec = recommend(params.with_update_probability(p), model)
            points.append((p, rec))
        if args.json:
            print(json.dumps({
                "model": args.model,
                "sweep": [
                    {"P": p, "recommended": rec.strategy.value,
                     "total_ms": rec.best.total}
                    for p, rec in points
                ],
            }, indent=2))
            return 0
        print(f"Winner vs update probability (Model {args.model}):")
        for p, rec in points:
            print(f"  P = {p:4.2f}  {rec.strategy.label:<12} "
                  f"{rec.best.total:12.1f} ms/query")
        return 0

    rec = recommend(params, model)
    if args.json:
        print(json.dumps(rec.to_dict(), indent=2))
        return 0
    print(rec.describe())
    if args.breakdown:
        print()
        for breakdown in evaluate(params, model).values():
            print(breakdown.describe())
            print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
