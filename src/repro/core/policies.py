"""Refresh-timing policies: Section 4's future work, made concrete.

The paper's conclusion raises two questions it leaves open:

* **Asynchronous refresh** — "if there is idle CPU and disk time
  available, it is likely to be useful to put it to work refreshing
  views asynchronously.  This would improve the response time of view
  queries ...".  :func:`analyze_async_refresh` quantifies the trade:
  performing ``j`` extra refreshes between queries raises *total* work
  (Yao subadditivity) but shrinks the refresh backlog a query must
  wait for, cutting query *latency*.
* **Snapshots** — the intro's third mechanism (Adiba & Lindsay 1980):
  a stored copy refreshed by full recomputation every ``r`` queries,
  serving possibly stale answers in between.
  :func:`analyze_snapshot` gives its amortized cost and expected
  staleness for Model 1 geometry.

Both analyses reuse the Section 3 formulas and constants, so their
outputs are directly comparable with ``TOTAL_deferred1`` etc.
"""

from __future__ import annotations

from dataclasses import dataclass

from . import model1
from .parameters import Parameters
from .yao import Method, yao

__all__ = [
    "AsyncRefreshPoint",
    "analyze_async_refresh",
    "async_refresh_curve",
    "SnapshotAnalysis",
    "analyze_snapshot",
    "snapshot_curve",
]


# ----------------------------------------------------------------------
# asynchronous / periodic refresh
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AsyncRefreshPoint:
    """Cost profile of deferred maintenance with ``extra_refreshes``
    asynchronous refresh slices between consecutive queries.

    * ``query_latency_ms`` — work performed *at query time*: the final
      refresh slice plus the view read.  This is what the user waits
      for; async slices run in idle time.
    * ``total_cost_ms`` — all work per query including the async
      slices; by Yao subadditivity it is minimized at zero extra
      refreshes (pure deferred).
    """

    extra_refreshes: int
    query_latency_ms: float
    total_cost_ms: float

    @property
    def background_ms(self) -> float:
        """Work shifted into idle time."""
        return self.total_cost_ms - self.query_latency_ms


def _refresh_slice_cost(p: Parameters, changes: float, method: Method) -> float:
    """Cost of one refresh applying ``changes`` view modifications:
    read the AD slice, then update the touched view pages."""
    if changes <= 0:
        return 0.0
    ad_read = p.c2 * changes / p.T
    touched = yao(p.view_tuples_model1, p.view_pages_model1, changes, method=method)
    return ad_read + p.c2 * (3.0 + p.H_vi) * touched


def analyze_async_refresh(
    p: Parameters, extra_refreshes: int, method: Method = "cardenas"
) -> AsyncRefreshPoint:
    """Deferred maintenance with ``extra_refreshes`` idle-time slices.

    The ``2fu`` view changes accumulating per query are applied in
    ``extra_refreshes + 1`` equal slices; only the last slice (plus the
    view scan, HR upkeep and screening) lands on the query's critical
    path.
    """
    if extra_refreshes < 0:
        raise ValueError(f"extra_refreshes must be >= 0, got {extra_refreshes}")
    slices = extra_refreshes + 1
    changes_per_query = 2.0 * p.f * p.u
    slice_changes = changes_per_query / slices

    per_slice = _refresh_slice_cost(p, slice_changes, method)
    always_synchronous = (
        model1.cost_query_view(p)
        + model1.cost_hr_maintenance(p, method=method)
        + model1.cost_screen(p)
    )
    latency = always_synchronous + per_slice
    total = always_synchronous + slices * per_slice
    return AsyncRefreshPoint(
        extra_refreshes=extra_refreshes,
        query_latency_ms=latency,
        total_cost_ms=total,
    )


def async_refresh_curve(
    p: Parameters, max_extra: int = 8, method: Method = "cardenas"
) -> tuple[AsyncRefreshPoint, ...]:
    """The latency/total-work trade-off for 0..max_extra async slices."""
    return tuple(
        analyze_async_refresh(p, j, method=method) for j in range(max_extra + 1)
    )


# ----------------------------------------------------------------------
# snapshots
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SnapshotAnalysis:
    """Amortized cost and staleness of a snapshot refreshed every
    ``refresh_every`` queries by full recomputation (Model 1)."""

    refresh_every: int
    cost_per_query_ms: float
    rebuild_cost_ms: float
    #: Expected number of base-relation updates not yet reflected in
    #: the answer a random query sees.
    expected_stale_updates: float

    @property
    def is_fresh(self) -> bool:
        return self.expected_stale_updates == 0.0


def analyze_snapshot(p: Parameters, refresh_every: int) -> SnapshotAnalysis:
    """Cost/staleness of snapshot maintenance (Adiba & Lindsay style).

    A rebuild scans the qualifying fraction of ``R`` through the
    clustered index (``c2*f*b`` reads + ``c1*f*N`` screens) and writes
    the fresh copy (``f*b/2`` pages).  Queries between rebuilds read
    the stored copy exactly like any materialized view but perform no
    refresh; a query arriving a uniformly random position into the
    cycle sees on average ``u * (refresh_every - 1) / 2`` unapplied
    updates.
    """
    if refresh_every < 1:
        raise ValueError(f"refresh_every must be >= 1, got {refresh_every}")
    rebuild = (
        p.c2 * p.f * p.b              # clustered scan of the selected set
        + p.c1 * p.f * p.N            # screen scanned tuples
        + p.c2 * p.view_pages_model1  # write the new copy
    )
    per_query = model1.cost_query_view(p) + rebuild / refresh_every
    stale = p.u * (refresh_every - 1) / 2.0
    return SnapshotAnalysis(
        refresh_every=refresh_every,
        cost_per_query_ms=per_query,
        rebuild_cost_ms=rebuild,
        expected_stale_updates=stale,
    )


def snapshot_curve(
    p: Parameters, periods: tuple[int, ...] = (1, 2, 5, 10, 25, 100)
) -> tuple[SnapshotAnalysis, ...]:
    """Snapshot cost/staleness across refresh periods."""
    return tuple(analyze_snapshot(p, r) for r in periods)
