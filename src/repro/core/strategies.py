"""Strategy and model identifiers shared across the cost model and engine."""

from __future__ import annotations

import enum

__all__ = ["Strategy", "ViewModel", "QUERY_MODIFICATION_VARIANTS"]


class Strategy(str, enum.Enum):
    """A view materialization strategy compared by the paper.

    The three query-modification variants (Model 1) and the nested-loop
    variant (Model 2) are distinct members because the paper plots them
    as separate curves; :meth:`is_query_modification` groups them.
    """

    DEFERRED = "deferred"
    IMMEDIATE = "immediate"
    QM_CLUSTERED = "qm_clustered"
    QM_UNCLUSTERED = "qm_unclustered"
    QM_SEQUENTIAL = "qm_sequential"
    QM_LOOPJOIN = "qm_loopjoin"
    #: Extensions beyond the paper's three compared schemes:
    #: periodically rebuilt stored copies (Adiba & Lindsay snapshots,
    #: cited in the introduction), the introduction's fourth algorithm
    #: (Buneman & Clemons: analyze each command, recompute the view
    #: completely if it may have changed), and the dual-access-path
    #: routing Section 3.3 sketches for the query optimizer.
    SNAPSHOT = "snapshot"
    BC_RECOMPUTE = "bc_recompute"
    HYBRID = "hybrid"

    def is_query_modification(self) -> bool:
        """True for any strategy that recomputes from base relations."""
        return self in QUERY_MODIFICATION_VARIANTS

    def is_materialized(self) -> bool:
        """True for strategies that keep a stored copy of the view."""
        return not self.is_query_modification()

    @property
    def label(self) -> str:
        """Short label used in the paper's figures."""
        return _LABELS[self]


QUERY_MODIFICATION_VARIANTS = frozenset(
    {
        Strategy.QM_CLUSTERED,
        Strategy.QM_UNCLUSTERED,
        Strategy.QM_SEQUENTIAL,
        Strategy.QM_LOOPJOIN,
    }
)

_LABELS = {
    Strategy.DEFERRED: "deferred",
    Strategy.IMMEDIATE: "immediate",
    Strategy.QM_CLUSTERED: "clustered",
    Strategy.QM_UNCLUSTERED: "unclustered",
    Strategy.QM_SEQUENTIAL: "sequential",
    Strategy.QM_LOOPJOIN: "loopjoin",
    Strategy.SNAPSHOT: "snapshot",
    Strategy.BC_RECOMPUTE: "bc-recompute",
    Strategy.HYBRID: "hybrid",
}


class ViewModel(enum.IntEnum):
    """The paper's three view structures (Section 3.1)."""

    SELECT_PROJECT = 1
    JOIN = 2
    AGGREGATE = 3

    @property
    def description(self) -> str:
        return _MODEL_DESCRIPTIONS[self]


_MODEL_DESCRIPTIONS = {
    ViewModel.SELECT_PROJECT: "selection and projection of a single relation R",
    ViewModel.JOIN: "natural join of two relations, R1 and R2, on a key field",
    ViewModel.AGGREGATE: "aggregates (e.g. sum, average) over a Model 1-type view",
}
