"""Deterministic storage fault injection over the simulated disk.

:class:`FaultyDisk` subclasses :class:`~repro.storage.pager.SimulatedDisk`
and injects four fault classes, each rolled from one seeded RNG so a
given (profile, seed, operation sequence) always produces the same
faults:

* **transient read errors** — the read attempt raises
  :class:`TransientReadError`; the page itself is fine and a retry can
  succeed.
* **transient write errors** — the write attempt raises
  :class:`TransientWriteError` without persisting anything.
* **torn writes** — the write "succeeds" (charged, acknowledged) but
  persists only a prefix of the page while the checksum records the
  full intended image; the damage surfaces on a later verified read.
* **bit-flips (at-rest rot)** — a page image is corrupted in place on
  the read path, again without touching the checksum.

Faults start *disarmed* so schema bootstrap and bulk loads run clean;
callers :meth:`~FaultyDisk.arm` the disk once the interesting workload
begins (``demo_server`` does this right after its setup phase).

Named :class:`FaultProfile` presets (``transient``, ``torn``,
``bitrot``, ``mixed``) back the ``repro-serve --fault-profile`` flag
and the chaos-experiment matrix.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from repro.storage.pager import (
    CostMeter,
    Page,
    PageId,
    SimulatedDisk,
    page_checksum,
)

__all__ = [
    "FaultProfile",
    "FaultRates",
    "FaultyDisk",
    "TransientIOError",
    "TransientReadError",
    "TransientWriteError",
    "fault_profile",
    "profile_names",
]

FAULT_KINDS = ("read_error", "write_error", "torn_write", "bit_flip")


class TransientIOError(RuntimeError):
    """A storage operation failed transiently; a retry may succeed."""

    def __init__(self, page_id: PageId, op: str) -> None:
        super().__init__(f"transient {op} error on page {page_id}")
        self.page_id = page_id
        self.op = op


class TransientReadError(TransientIOError):
    """A page read failed transiently."""

    def __init__(self, page_id: PageId) -> None:
        super().__init__(page_id, "read")


class TransientWriteError(TransientIOError):
    """A page write failed transiently (nothing was persisted)."""

    def __init__(self, page_id: PageId) -> None:
        super().__init__(page_id, "write")


@dataclass(frozen=True)
class FaultRates:
    """Per-operation injection probabilities, one per fault class."""

    read_error: float = 0.0
    write_error: float = 0.0
    torn_write: float = 0.0
    bit_flip: float = 0.0


@dataclass(frozen=True)
class FaultProfile:
    """A named, seeded fault mix, optionally scoped to file prefixes.

    ``files`` is a tuple of file-name prefixes; when non-empty, only
    operations on matching files can fault (lets a profile target, say,
    materialized-view files while leaving the base relation clean).
    """

    name: str
    seed: int = 1234
    rates: FaultRates = field(default_factory=FaultRates)
    files: tuple[str, ...] = ()

    def rate_for(self, kind: str, file: str) -> float:
        """Injection probability for one fault class on one file."""
        if self.files and not any(file.startswith(prefix) for prefix in self.files):
            return 0.0
        return getattr(self.rates, kind)

    def with_seed(self, seed: int) -> "FaultProfile":
        """The same mix under a different RNG seed."""
        return replace(self, seed=seed)


#: Named presets for ``--fault-profile`` and the chaos matrix.  Rates
#: are tuned so retries absorb almost every transient fault while the
#: persistent classes (torn/bitrot) reliably exercise degradation and
#: repair within a few hundred operations.
_PRESETS: dict[str, FaultProfile] = {
    "none": FaultProfile(name="none"),
    "transient": FaultProfile(
        name="transient",
        rates=FaultRates(read_error=0.05, write_error=0.02),
    ),
    "torn": FaultProfile(
        name="torn",
        rates=FaultRates(torn_write=0.03, read_error=0.01),
    ),
    "bitrot": FaultProfile(
        name="bitrot",
        rates=FaultRates(bit_flip=0.01),
        files=("view.", "agg."),
    ),
    "mixed": FaultProfile(
        name="mixed",
        rates=FaultRates(
            read_error=0.03, write_error=0.01, torn_write=0.01, bit_flip=0.005
        ),
        files=("view.", "agg."),
    ),
}


def profile_names() -> list[str]:
    """Names accepted by :func:`fault_profile` (CLI choices)."""
    return sorted(_PRESETS)


def fault_profile(name: str, seed: int | None = None) -> FaultProfile:
    """Look up a preset profile, optionally re-seeded."""
    try:
        profile = _PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown fault profile {name!r}; choose from {profile_names()}"
        ) from None
    return profile if seed is None else profile.with_seed(seed)


class FaultyDisk(SimulatedDisk):
    """A :class:`SimulatedDisk` that injects seeded faults per operation.

    Determinism contract: the fault sequence is a pure function of the
    profile's seed and the order of read/write calls, so a failing run
    replays exactly under the same workload seed.
    """

    def __init__(
        self, meter: CostMeter | None = None, profile: FaultProfile | None = None
    ) -> None:
        super().__init__(meter)
        self.profile = profile if profile is not None else fault_profile("none")
        self._rng = random.Random(self.profile.seed)
        self.armed = False
        #: Count of injected faults per kind (for metrics / experiments).
        self.injected: dict[str, int] = {kind: 0 for kind in FAULT_KINDS}

    def arm(self) -> None:
        """Start injecting faults (call after clean bootstrap)."""
        self.armed = True

    def disarm(self) -> None:
        """Stop injecting faults; the disk behaves like the clean base."""
        self.armed = False

    @property
    def injected_total(self) -> int:
        """Total faults injected across every kind."""
        return sum(self.injected.values())

    def _roll(self, kind: str, file: str) -> bool:
        if not self.armed:
            return False
        rate = self.profile.rate_for(kind, file)
        return rate > 0.0 and self._rng.random() < rate

    def read(self, page_id: PageId) -> Page:
        """Read with fault injection: possible rot, then possible error."""
        if self._roll("bit_flip", page_id.file):
            if self.corrupt(page_id) is not None:
                self.injected["bit_flip"] += 1
        if self._roll("read_error", page_id.file):
            self.injected["read_error"] += 1
            # The failed attempt still spins the disk: charge the read.
            self.meter.record_read()
            raise TransientReadError(page_id)
        return super().read(page_id)

    def write(self, page: Page) -> None:
        """Write with fault injection: transient failure or torn write."""
        page_id = page.page_id
        if self._roll("write_error", page_id.file):
            self.injected["write_error"] += 1
            raise TransientWriteError(page_id)
        if self._roll("torn_write", page_id.file):
            if page_id not in self._pages:
                raise KeyError(f"cannot write unallocated page: {page_id}")
            self.injected["torn_write"] += 1
            self.meter.record_write()
            torn = page.clone()
            if torn.records:
                torn.records = torn.records[: len(torn.records) // 2]
            else:
                torn.next_page = PageId(page_id.file, page_id.number + 1_000_003)
            self._pages[page_id] = torn
            # The page header records the checksum of the *intended*
            # image — exactly how a torn sector is caught later.
            self._checksums[page_id] = page_checksum(page)
            return
        super().write(page)
