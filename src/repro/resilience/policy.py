"""Retry, backoff and per-file circuit breaking at the pager boundary.

:class:`ResilientDisk` wraps any disk (clean or faulty) and gives the
engine above it three guarantees:

* **retry with exponential backoff** — transient I/O errors and
  checksum mismatches are retried up to ``max_attempts`` times; the
  backoff is *modelled* milliseconds (added to the degradation
  overhead ledger), never a real sleep, so tests stay fast and
  deterministic.
* **per-file circuit breaker** — repeated exhausted retries on one
  file open its breaker (``closed → open``); while open, operations
  fail fast with :class:`CircuitOpenError` instead of hammering a
  damaged file.  After a cool-down measured in disk operations the
  breaker admits probes (``open → half_open``) and closes again after
  enough consecutive successes.
* **observability** — every state transition, retry and exhausted
  attempt is recorded (and forwarded to an optional listener so the
  serving layer can export them as metrics).

The breaker clock is the wrapper's operation counter rather than wall
time, keeping the whole state machine deterministic under seeded fault
profiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.resilience.faults import TransientIOError
from repro.storage.pager import Page, PageChecksumError, PageId

__all__ = [
    "CircuitBreaker",
    "CircuitOpenError",
    "RESILIENCE_ERRORS",
    "ResilienceConfig",
    "ResilientDisk",
    "RetryPolicy",
]


class CircuitOpenError(RuntimeError):
    """An operation was refused because the file's breaker is open."""

    def __init__(self, file: str, page_id: PageId | None = None) -> None:
        super().__init__(f"circuit breaker open for file {file!r}")
        self.file = file
        self.page_id = page_id


#: Every failure class the resilience layer detects and degrades on.
RESILIENCE_ERRORS = (TransientIOError, PageChecksumError, CircuitOpenError)


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential-backoff retry schedule for one guarded operation."""

    max_attempts: int = 4
    backoff_base_ms: float = 1.0
    backoff_factor: float = 2.0
    backoff_max_ms: float = 50.0

    def backoff_ms(self, attempt: int) -> float:
        """Modelled delay before retry number ``attempt`` (0-based)."""
        delay = self.backoff_base_ms * (self.backoff_factor**attempt)
        return min(delay, self.backoff_max_ms)


@dataclass(frozen=True)
class ResilienceConfig:
    """One knob bundle for the whole resilience stack.

    The engine reads the retry/breaker fields when building its disk
    stack; the serving layer reads the degradation fields when deciding
    how far down the ladder it may go.
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: Exhausted-retry failures on one file before its breaker opens.
    failure_threshold: int = 3
    #: Disk operations an open breaker waits before admitting probes.
    cooldown_ops: int = 24
    #: Consecutive half-open successes required to close again.
    half_open_probes: int = 2
    #: Allow bounded-staleness stale reads as the last degradation rung.
    degraded_reads: bool = True
    #: Refuse a stale read whose bound exceeds this many pending
    #: updates (``None`` = any bound is acceptable, but still reported).
    staleness_limit: int | None = None
    #: Queue and run background repairs (view rebuild / WAL recovery).
    repair: bool = True


class CircuitBreaker:
    """Per-file ``closed → open → half_open`` breaker on an op clock."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        file: str,
        *,
        failure_threshold: int = 3,
        cooldown_ops: int = 24,
        half_open_probes: int = 2,
        on_transition: Callable[[str, str, str], None] | None = None,
    ) -> None:
        self.file = file
        self.failure_threshold = max(1, failure_threshold)
        self.cooldown_ops = max(1, cooldown_ops)
        self.half_open_probes = max(1, half_open_probes)
        self.state = self.CLOSED
        self.failures = 0
        self.successes = 0
        self._opened_at_op = 0
        self._on_transition = on_transition

    def _transition(self, new_state: str) -> None:
        if new_state == self.state:
            return
        old = self.state
        self.state = new_state
        if self._on_transition is not None:
            self._on_transition(self.file, old, new_state)

    def allow(self, now_op: int) -> bool:
        """May an operation on this file proceed at op-clock ``now_op``?"""
        if self.state == self.OPEN:
            if now_op - self._opened_at_op >= self.cooldown_ops:
                self.successes = 0
                self._transition(self.HALF_OPEN)
                return True
            return False
        return True

    def force_half_open(self) -> bool:
        """Admit probes immediately (deliberate repair); True if it acted."""
        if self.state == self.OPEN:
            self.successes = 0
            self._transition(self.HALF_OPEN)
            return True
        return False

    def record_failure(self, now_op: int) -> None:
        """Note an exhausted-retry failure; may open the breaker."""
        if self.state == self.HALF_OPEN:
            self._opened_at_op = now_op
            self._transition(self.OPEN)
            return
        self.failures += 1
        if self.failures >= self.failure_threshold:
            self._opened_at_op = now_op
            self._transition(self.OPEN)

    def record_success(self) -> None:
        """Note a successful operation; may close a half-open breaker."""
        if self.state == self.HALF_OPEN:
            self.successes += 1
            if self.successes >= self.half_open_probes:
                self.failures = 0
                self._transition(self.CLOSED)
        elif self.state == self.CLOSED:
            self.failures = 0

    def reset(self) -> None:
        """Snap back to closed (after a verified repair)."""
        self.failures = 0
        self.successes = 0
        self._transition(self.CLOSED)


class ResilientDisk:
    """Disk wrapper adding retries, backoff and per-file breakers.

    Duck-types the :class:`~repro.storage.pager.SimulatedDisk` surface
    the buffer pool and file structures use (``read``/``write``/
    ``allocate``/``free``/``file_pages``/``page_count``/``files``/
    ``verify``/``corrupt``/``meter``/``in``), so it slots between the
    pool and any underlying disk unchanged.
    """

    def __init__(
        self,
        inner: Any,
        *,
        retry: RetryPolicy | None = None,
        failure_threshold: int = 3,
        cooldown_ops: int = 24,
        half_open_probes: int = 2,
        listener: Callable[..., None] | None = None,
    ) -> None:
        self.inner = inner
        self.retry = retry if retry is not None else RetryPolicy()
        self.failure_threshold = failure_threshold
        self.cooldown_ops = cooldown_ops
        self.half_open_probes = half_open_probes
        #: Optional ``listener(event, **info)`` hook; events are
        #: ``"retry"``, ``"give_up"`` and ``"transition"``.
        self.listener = listener
        self.breakers: dict[str, CircuitBreaker] = {}
        self.op_clock = 0
        self.retries = 0
        self.gave_up = 0
        self.backoff_ms = 0.0
        self.transitions: list[tuple[str, str, str]] = []

    # -- pass-throughs -------------------------------------------------

    @property
    def meter(self):
        """The underlying disk's cost meter."""
        return self.inner.meter

    def __contains__(self, page_id: PageId) -> bool:
        return page_id in self.inner

    def allocate(self, file: str, capacity: int) -> Page:
        """Allocate on the inner disk (allocation cannot fault)."""
        return self.inner.allocate(file, capacity)

    def free(self, page_id: PageId) -> None:
        """Free on the inner disk (deallocation cannot fault)."""
        self.inner.free(page_id)

    def page_count(self, file: str) -> int:
        """Inner disk's page count for one file."""
        return self.inner.page_count(file)

    def file_pages(self, file: str) -> list[PageId]:
        """Inner disk's page ids for one file."""
        return self.inner.file_pages(file)

    def files(self) -> list[str]:
        """Inner disk's file listing."""
        return self.inner.files()

    def verify(self, page_id: PageId) -> str | None:
        """At-rest integrity check, unguarded (scrubbers want raw truth)."""
        return self.inner.verify(page_id)

    def corrupt(self, page_id: PageId, **kwargs: Any) -> str | None:
        """Pass-through to the inner disk's corruption helper (tests)."""
        return self.inner.corrupt(page_id, **kwargs)

    # -- guarded operations --------------------------------------------

    def read(self, page_id: PageId) -> Page:
        """Guarded read: breaker check, then retry loop."""
        return self._guarded(page_id.file, lambda: self.inner.read(page_id), page_id)

    def write(self, page: Page) -> None:
        """Guarded write: breaker check, then retry loop."""
        file = page.page_id.file
        return self._guarded(file, lambda: self.inner.write(page), page.page_id)

    def _breaker(self, file: str) -> CircuitBreaker:
        breaker = self.breakers.get(file)
        if breaker is None:
            breaker = CircuitBreaker(
                file,
                failure_threshold=self.failure_threshold,
                cooldown_ops=self.cooldown_ops,
                half_open_probes=self.half_open_probes,
                on_transition=self._on_transition,
            )
            self.breakers[file] = breaker
        return breaker

    def _on_transition(self, file: str, old: str, new: str) -> None:
        self.transitions.append((file, old, new))
        if self.listener is not None:
            self.listener("transition", file=file, old=old, new=new)

    def _guarded(self, file: str, attempt: Callable[[], Any], page_id: PageId) -> Any:
        breaker = self._breaker(file)
        self.op_clock += 1
        if not breaker.allow(self.op_clock):
            raise CircuitOpenError(file, page_id)
        last_error: Exception | None = None
        for attempt_no in range(self.retry.max_attempts):
            try:
                result = attempt()
            except (TransientIOError, PageChecksumError) as exc:
                last_error = exc
                if attempt_no + 1 < self.retry.max_attempts:
                    self.retries += 1
                    self.backoff_ms += self.retry.backoff_ms(attempt_no)
                    if self.listener is not None:
                        self.listener("retry", file=file)
                    continue
            else:
                breaker.record_success()
                return result
        self.gave_up += 1
        breaker.record_failure(self.op_clock)
        if self.listener is not None:
            self.listener("give_up", file=file)
        assert last_error is not None
        raise last_error

    # -- repair hooks --------------------------------------------------

    def breaker_state(self, file: str) -> str:
        """Current breaker state for one file (closed if never tripped)."""
        breaker = self.breakers.get(file)
        return breaker.state if breaker is not None else CircuitBreaker.CLOSED

    def probe_open_breakers(self, files: list[str] | None = None) -> list[str]:
        """Force open breakers to half-open ahead of a deliberate repair.

        Returns the files whose breakers were transitioned.  A repair is
        an explicit recovery action, so it does not wait out the
        cool-down the way organic traffic must.
        """
        probed = []
        targets = (
            self.breakers.values()
            if files is None
            else [self.breakers[f] for f in files if f in self.breakers]
        )
        for breaker in targets:
            if breaker.force_half_open():
                probed.append(breaker.file)
        return probed

    def reset_file(self, file: str) -> None:
        """Snap one file's breaker closed after a verified repair."""
        breaker = self.breakers.get(file)
        if breaker is not None:
            breaker.reset()
