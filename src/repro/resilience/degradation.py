"""Degraded answers: the caller-visible shape and the fallback evaluators.

The paper's strategy space *is* the degradation ladder: query
modification materializes nothing, so any view whose stored machinery
is unhealthy can still be answered straight from the base relations at
QM cost (rung 1, fresh); a view whose base path is *also* unhealthy
can serve its last materialized copy with an explicit staleness bound
(rung 2, stale).  Either way the caller gets a
:class:`DegradedResult` naming the reason, the rung and the bound —
degradation is visible, never silent.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

from repro.resilience.faults import TransientIOError
from repro.resilience.policy import CircuitOpenError
from repro.storage.pager import PageChecksumError
from repro.views.definition import AggregateView, JoinView

__all__ = [
    "DegradedResult",
    "describe_failure",
    "qm_fallback_answer",
]


@dataclass(frozen=True)
class DegradedResult:
    """An answer served off the normal strategy path.

    ``mode`` is the ladder rung used: ``"qm_fallback"`` (recomputed
    from base relations — fresh, ``staleness_bound == 0``) or
    ``"stale_read"`` (last materialized copy; ``staleness_bound`` is
    the number of committed updates it may be missing).
    """

    answer: Any
    view: str
    mode: str
    reason: str
    staleness_bound: int
    strategy: str

    def unwrap(self) -> Any:
        """The answer payload, shaped exactly like a normal answer."""
        return self.answer


def describe_failure(exc: Exception) -> tuple[str, str | None]:
    """``(reason, file)`` for any resilience-layer failure class.

    ``file`` is the disk file implicated (for breaker bookkeeping and
    repair targeting), or ``None`` when the failure names no file.
    """
    # Imported here, not at module top: the engine itself imports this
    # package's fault/policy modules, so a top-level import would cycle.
    from repro.engine.database import ViewMaintenanceError

    if isinstance(exc, CircuitOpenError):
        return (f"circuit_open:{exc.file}", exc.file)
    if isinstance(exc, PageChecksumError):
        return (f"checksum:{exc.page_id}", exc.page_id.file)
    if isinstance(exc, TransientIOError):
        return (f"io_error:{exc.page_id}", exc.page_id.file)
    if isinstance(exc, ViewMaintenanceError) and exc.failures:
        reason, file = describe_failure(exc.failures[0][1])
        return (f"view_maintenance({reason})", file)
    return (f"{type(exc).__name__}: {exc}", None)


def _logical_records(db: Any, relation_name: str) -> list[Any]:
    """A relation's true current content (base + pending differential)."""
    relation = db.relations[relation_name]
    if hasattr(relation, "logical_snapshot"):
        return relation.logical_snapshot()
    return relation.records_snapshot()


def qm_fallback_answer(db: Any, definition: Any, lo: Any = None, hi: Any = None) -> Any:
    """Answer a view query by query modification over base relations.

    The universal rung-1 fallback: evaluates the view definition over
    the *logical* relation content (base plus pending AD entries), so
    the answer is fresh regardless of the materialized copy's health.
    Every page it reads is metered — degraded service has an honest,
    advisor-comparable cost.
    """
    if isinstance(definition, JoinView):
        tuples = definition.evaluate(
            _logical_records(db, definition.outer),
            _logical_records(db, definition.inner),
        )
    else:
        tuples = definition.evaluate(_logical_records(db, definition.relation))
    if isinstance(definition, AggregateView):
        return tuples  # AggregateView.evaluate returns the scalar state
    key = definition.view_key
    lo_bound = -math.inf if lo is None else lo
    hi_bound = math.inf if hi is None else hi
    selected = [vt for vt in tuples if lo_bound <= vt[key] <= hi_bound]
    selected.sort(key=lambda vt: (vt[key], vt.identity()))
    return selected
