"""Storage fault injection, integrity checking and graceful degradation.

The paper's strategy space doubles as a degradation ladder: query
modification needs no materialized state, so a view whose stored
machinery is damaged can always be served from base relations at
advisor-priced cost; Severance & Lohman's differential-file design
likewise keeps the main copy consistent while the volatile
differential absorbs risk.  This package makes the serving stack
exploit that structure end to end:

* :mod:`repro.resilience.faults` — seeded, deterministic fault
  injection at the disk (:class:`FaultyDisk`): transient read/write
  errors, torn writes and at-rest bit-rot, under named
  :class:`FaultProfile` presets.
* :mod:`repro.resilience.policy` — detection and containment between
  the buffer pool and the disk (:class:`ResilientDisk`): checksum
  verification on every read, retry with exponential (modelled)
  backoff, and a per-file ``closed → open → half_open`` circuit
  breaker with observable transitions.
* :mod:`repro.resilience.scrub` — an on-demand integrity scrubber that
  walks heaps, indexes, AD files and materialized views, classifies
  damage by owner, and applies local repairs (view rebuilds).
* :mod:`repro.resilience.degradation` — the caller-visible
  :class:`DegradedResult` and the query-modification / stale-read
  fallback evaluators the server degrades through.
"""

from .degradation import DegradedResult, describe_failure, qm_fallback_answer
from .faults import (
    FaultProfile,
    FaultRates,
    FaultyDisk,
    TransientIOError,
    TransientReadError,
    TransientWriteError,
    fault_profile,
    profile_names,
)
from .policy import (
    RESILIENCE_ERRORS,
    CircuitBreaker,
    CircuitOpenError,
    ResilienceConfig,
    ResilientDisk,
    RetryPolicy,
)
from .scrub import (
    PageDamage,
    RepairOutcome,
    ScrubReport,
    classify_file,
    repair_database,
    scrub_database,
    scrub_disk,
    view_files,
)

__all__ = [
    "CircuitBreaker",
    "CircuitOpenError",
    "DegradedResult",
    "FaultProfile",
    "FaultRates",
    "FaultyDisk",
    "PageDamage",
    "RESILIENCE_ERRORS",
    "RepairOutcome",
    "ResilienceConfig",
    "ResilientDisk",
    "RetryPolicy",
    "ScrubReport",
    "TransientIOError",
    "TransientReadError",
    "TransientWriteError",
    "classify_file",
    "describe_failure",
    "fault_profile",
    "profile_names",
    "qm_fallback_answer",
    "repair_database",
    "scrub_database",
    "scrub_disk",
    "view_files",
]
