"""On-demand integrity scrubbing: walk every file, verify, classify, repair.

The scrubber reads the disk's file listing and verifies each page's
at-rest checksum (one metered read per page — a scrub pass has an
honest I/O bill).  Damage is classified by the repo's file-naming
conventions so a repair knows which recovery primitive applies:

* ``view.<name>.leaf`` / ``view.<name>.int`` — a materialized view's
  B+-tree; repairable locally via :meth:`Database.rebuild_view`.
* ``agg.<name>`` — an aggregate view's state page; same repair.
* ``<rel>.ad.hash`` / ``<rel>.a.hash`` / ``<rel>.d.hash`` — a
  differential (AD) file; *not* locally repairable (its content is the
  not-yet-folded truth), needs checkpoint+WAL recovery.
* ``<rel>.leaf`` / ``<rel>.int`` / ``<rel>.hash`` — a base relation;
  likewise needs checkpoint+WAL recovery.

:func:`repair_database` applies every local repair and reports what it
could not fix, so the caller (the serving layer, or an operator via the
CLI) can escalate to :func:`repro.durability.recovery.recover`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "PageDamage",
    "RepairOutcome",
    "ScrubReport",
    "classify_file",
    "repair_database",
    "scrub_database",
    "scrub_disk",
    "view_files",
]


@dataclass(frozen=True)
class PageDamage:
    """One damaged page found by a scrub pass."""

    page: str
    file: str
    error: str
    #: ``("view", name)``, ``("differential", relation)``,
    #: ``("relation", name)`` or ``("unknown", file)``.
    owner: tuple[str, str]

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe form for reports and artifacts."""
        return {
            "page": self.page,
            "file": self.file,
            "error": self.error,
            "owner_kind": self.owner[0],
            "owner": self.owner[1],
        }


@dataclass
class ScrubReport:
    """What one scrub pass walked and what it found."""

    files_scanned: int = 0
    pages_scanned: int = 0
    damage: list[PageDamage] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no page failed verification."""
        return not self.damage

    @property
    def damaged_files(self) -> list[str]:
        """Distinct files containing at least one damaged page."""
        return sorted({d.file for d in self.damage})

    def damaged_views(self) -> list[str]:
        """View names whose stored copies have damage (locally repairable)."""
        return sorted({d.owner[1] for d in self.damage if d.owner[0] == "view"})

    def damaged_relations(self) -> list[str]:
        """Relations with base or differential damage (need recovery)."""
        return sorted(
            {d.owner[1] for d in self.damage if d.owner[0] in ("relation", "differential")}
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe form for reports and artifacts."""
        return {
            "files_scanned": self.files_scanned,
            "pages_scanned": self.pages_scanned,
            "ok": self.ok,
            "damage": [d.to_dict() for d in self.damage],
        }


def classify_file(db: Any, file: str) -> tuple[str, str]:
    """Map a disk file name to its logical owner via naming conventions."""
    if file.startswith("view."):
        stem = file[len("view.") :]
        name = stem.rsplit(".", 1)[0] if stem.endswith((".leaf", ".int")) else stem
        return ("view", name)
    if file.startswith("agg."):
        return ("view", file[len("agg.") :])
    for suffix in (".ad.hash", ".a.hash", ".d.hash"):
        if file.endswith(suffix):
            return ("differential", file[: -len(suffix)])
    for suffix in (".leaf", ".int", ".hash", ".heap"):
        if file.endswith(suffix):
            name = file[: -len(suffix)]
            if name in getattr(db, "relations", {}):
                return ("relation", name)
    return ("unknown", file)


def view_files(name: str) -> tuple[str, ...]:
    """Every disk file a view's stored state may live in."""
    return (f"view.{name}.leaf", f"view.{name}.int", f"agg.{name}")


def scrub_disk(disk: Any, files: list[str] | None = None, db: Any = None) -> ScrubReport:
    """Verify every page of the given files (default: all files).

    Works on any disk exposing ``files()``/``file_pages()``/``verify()``
    — including the resilient wrapper, whose ``verify`` deliberately
    bypasses retries and breakers so the scrub sees raw at-rest truth.
    """
    report = ScrubReport()
    for file in files if files is not None else disk.files():
        report.files_scanned += 1
        for page_id in disk.file_pages(file):
            report.pages_scanned += 1
            error = disk.verify(page_id)
            if error is not None:
                report.damage.append(
                    PageDamage(
                        page=str(page_id),
                        file=file,
                        error=error,
                        owner=classify_file(db, file),
                    )
                )
    return report


def scrub_database(db: Any, files: list[str] | None = None) -> ScrubReport:
    """Scrub a database's disk with owner classification from its catalog."""
    db.pool.flush_all()
    return scrub_disk(db.disk, files=files, db=db)


@dataclass
class RepairOutcome:
    """What :func:`repair_database` fixed and what it could not."""

    rebuilt_views: list[str] = field(default_factory=list)
    #: Views whose rebuild itself failed (left for the next attempt).
    failed_views: list[str] = field(default_factory=list)
    #: Files whose damage needs checkpoint+WAL recovery.
    unrepaired_files: list[str] = field(default_factory=list)

    @property
    def fully_repaired(self) -> bool:
        """True when nothing is left damaged or unrepairable locally."""
        return not self.failed_views and not self.unrepaired_files

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe form for reports and artifacts."""
        return {
            "rebuilt_views": list(self.rebuilt_views),
            "failed_views": list(self.failed_views),
            "unrepaired_files": list(self.unrepaired_files),
        }


def repair_database(db: Any, report: ScrubReport | None = None) -> RepairOutcome:
    """Apply every local repair a scrub report calls for.

    Damaged views are rebuilt from their (settled) base relations and
    re-verified; base-relation and differential damage is beyond local
    repair and is returned in ``unrepaired_files`` for escalation to
    the durability layer.
    """
    from repro.resilience.policy import RESILIENCE_ERRORS

    if report is None:
        report = scrub_database(db)
    outcome = RepairOutcome()
    for name in report.damaged_views():
        if name not in db.views:
            continue
        resilient = getattr(db, "resilient_disk", None)
        if resilient is not None:
            resilient.probe_open_breakers(list(view_files(name)))
        try:
            db.rebuild_view(name)
            recheck = scrub_database(
                db, files=[f for f in view_files(name) if f in db.disk.files()]
            )
        except RESILIENCE_ERRORS:
            outcome.failed_views.append(name)
            continue
        if recheck.ok:
            if resilient is not None:
                for file in view_files(name):
                    resilient.reset_file(file)
            outcome.rebuilt_views.append(name)
        else:
            outcome.failed_views.append(name)
    for damage in report.damage:
        if damage.owner[0] != "view":
            outcome.unrepaired_files.append(damage.file)
    outcome.unrepaired_files = sorted(set(outcome.unrepaired_files))
    return outcome
