"""Hypothetical relations (Section 2.2): deferred-update storage."""

from .differential import ClusteredRelation, HypotheticalRelation, SeparateFilesHR
from .hashed import HashedHypotheticalRelation

__all__ = [
    "ClusteredRelation",
    "HashedHypotheticalRelation",
    "HypotheticalRelation",
    "SeparateFilesHR",
]
