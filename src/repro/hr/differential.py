"""Hypothetical relations: base file + differential ``AD`` file.

Section 2.2's deferred maintenance substrate.  A relation is stored as

* a **base file** ``R`` — a clustered B+-tree on the view-predicate
  field (Section 3.1's access-method table), plus
* a combined **differential file** ``AD`` — clustered hashing on the
  tuple key, holding appended and deleted tuples distinguished by a
  ``role`` attribute, fronted by a Bloom filter so reads of unmodified
  tuples skip it (Severance & Lohman).

The update protocol is the paper's 3-I/O sequence: read the current
tuple, read the AD page where the new value lands, write that page
(both the deleted old value and the appended new value hash to the same
page when the key is unchanged).  :class:`SeparateFilesHR` implements
the rejected 5-I/O design (separate ``A`` and ``D`` files) for the
ablation benchmark.

``net_changes`` computes the paper's ``A-net``/``D-net`` by reading the
whole ``AD`` file (the ``C_ADread`` cost); ``reset`` folds the changes
into the base file and clears ``AD`` — Section 2.2.1's
``R := (R ∪ A) - D;  A := ∅;  D := ∅``.
"""

from __future__ import annotations

import itertools
from operator import itemgetter
from typing import Any, Iterable, Iterator

from repro.storage.bloom import BloomFilter
from repro.storage.bplustree import BPlusTree
from repro.storage.hashindex import HashFile
from repro.storage.pager import BufferPool
from repro.storage.tuples import Record, Schema
from repro.views.delta import DeltaSet

__all__ = ["ClusteredRelation", "HypotheticalRelation", "SeparateFilesHR"]

_ROLE_FIELD = "_role"
_SEQ_FIELD = "_seq"
ROLE_APPENDED = "A"
ROLE_DELETED = "D"


def _net_from_entries(relation: str, entries: Iterable[Record]) -> DeltaSet:
    """Build ``A-net``/``D-net`` from raw AD entries, columnar-style.

    One pass extracts ``(seq, role, key, values)`` rows, a sort by
    sequence restores arrival order, and the net toggling runs on
    cheap ``(key, values)`` tokens — ``values`` is the AD format's
    sorted item tuple, so token equality coincides with
    :class:`Record` equality.  Records are constructed only for the
    surviving net entries (an update's cancelled D/A pair never
    builds one), via :meth:`Record.from_sorted_items` which skips
    re-sorting.  Result order and content match feeding each entry to
    :meth:`DeltaSet.add_insert` / :meth:`DeltaSet.add_delete` in
    sequence order (the reference spec in
    ``repro.maintenance.reference``).
    """
    # One C-level extraction per entry; sequence numbers are unique,
    # so a plain tuple sort orders by them without a key function.
    getter = itemgetter(_SEQ_FIELD, _ROLE_FIELD, "_k", "_values")
    rows = [getter(e.values) for e in entries]
    rows.sort()
    inserted: dict[tuple, None] = {}
    deleted: dict[tuple, None] = {}
    for _seq, role, key, values in rows:
        token = (key, values)
        if role == ROLE_APPENDED:
            if token in deleted:
                del deleted[token]
            else:
                inserted[token] = None
        else:
            if token in inserted:
                del inserted[token]
            else:
                deleted[token] = None
    # The token (key, values) is exactly what Record.__hash__ hashes,
    # so survivors are built with their value hash precomputed.
    return DeltaSet.from_disjoint(
        relation,
        [Record.from_sorted_items(k, v, value_hash=hash((k, v))) for k, v in inserted],
        [Record.from_sorted_items(k, v, value_hash=hash((k, v))) for k, v in deleted],
    )


class ClusteredRelation:
    """A plain stored relation: clustered B+-tree plus a key directory.

    The directory maps tuple keys to records so key lookups cost the
    paper's single I/O (a secondary access path the cost model assumes
    but does not itemize); scans and maintenance go through the tree
    and are charged page-accurately.
    """

    def __init__(
        self,
        schema: Schema,
        pool: BufferPool,
        clustered_on: str,
        block_bytes: int = 4000,
        fanout: int = 200,
    ) -> None:
        if clustered_on not in schema.fields:
            raise ValueError(
                f"cannot cluster {schema.name!r} on unknown field {clustered_on!r}"
            )
        self.schema = schema
        self.pool = pool
        self.clustered_on = clustered_on
        self.records_per_page = schema.records_per_page(block_bytes)
        self.tree = BPlusTree(
            schema.name,
            pool,
            sort_key=lambda record: record[clustered_on],
            records_per_leaf=self.records_per_page,
            fanout=fanout,
        )
        self._by_key: dict[Any, Record] = {}

    def __len__(self) -> int:
        return len(self._by_key)

    @property
    def meter(self):
        return self.pool.disk.meter

    def bulk_load(self, records: list[Record]) -> None:
        """Initial load (one write per page; meter usually reset after)."""
        self.tree.bulk_load(records)
        for record in records:
            self._by_key[record.key] = record

    def insert(self, record: Record) -> None:
        """Insert a new tuple (tree descent + leaf write)."""
        if record.key in self._by_key:
            raise KeyError(f"duplicate key {record.key!r} in {self.schema.name!r}")
        self.tree.insert(record)
        self._by_key[record.key] = record

    def delete_by_key(self, key: Any) -> Record:
        """Delete and return the tuple with the given key."""
        record = self._by_key.pop(key, None)
        if record is None:
            raise KeyError(f"no tuple with key {key!r} in {self.schema.name!r}")
        self.tree.delete(record)
        return record

    def update_by_key(self, key: Any, **changes: Any) -> tuple[Record, Record]:
        """Modify a tuple in place; returns (old, new)."""
        old = self._by_key.get(key)
        if old is None:
            raise KeyError(f"no tuple with key {key!r} in {self.schema.name!r}")
        new = self.schema.updated(old, **changes)
        self.tree.update(old, new)
        del self._by_key[key]
        self._by_key[new.key] = new
        return old, new

    def read_by_key(self, key: Any) -> Record | None:
        """Fetch one tuple by key, charging the paper's one I/O."""
        self.meter.record_read()
        return self._by_key.get(key)

    def peek_by_key(self, key: Any) -> Record | None:
        """Key lookup without I/O (bookkeeping paths only)."""
        return self._by_key.get(key)

    def contains_key(self, key: Any) -> bool:
        """Key-existence check without I/O (catalog/bookkeeping)."""
        return key in self._by_key

    def scan_all(self) -> Iterator[Record]:
        """Clustered full scan (one read per leaf page)."""
        return self.tree.scan_all()

    def range_scan(self, lo: Any, hi: Any) -> Iterator[Record]:
        """Clustered range scan on the clustering field."""
        return self.tree.range_scan(lo, hi)

    def records_snapshot(self) -> list[Record]:
        """All records without charging I/O (used to seed recomputation
        baselines in tests; never on a costed path)."""
        return list(self._by_key.values())


class HypotheticalRelation:
    """Base relation + ``AD`` differential file + Bloom filter.

    Logical content ("the true value of the relation") is
    ``(R ∪ A) - D``; all modifications land in ``AD`` until
    :meth:`reset` folds them down.
    """

    def __init__(
        self,
        base: ClusteredRelation,
        bloom_bits: int = 4096,
        ad_buckets: int = 64,
    ) -> None:
        self.base = base
        self.schema = base.schema
        self.pool = base.pool
        self.ad = HashFile(
            f"{self.schema.name}.ad",
            base.pool,
            hash_key=lambda record: record["_k"],
            records_per_page=base.records_per_page,
            buckets=ad_buckets,
        )
        self.bloom = BloomFilter(bloom_bits)
        self._seq = itertools.count()
        self._pending = DeltaSet(self.schema.name)
        #: Times the whole AD file has been read to compute A-net/D-net.
        #: The shared-delta planner's proof obligation: one refresh
        #: epoch must bump this once per relation, not once per view.
        self.net_reads = 0

    @property
    def meter(self):
        return self.base.meter

    # ------------------------------------------------------------------
    # modifications (all go to AD)
    # ------------------------------------------------------------------
    def insert(self, record: Record) -> None:
        """Append a tuple: one AD entry with role ``A``."""
        if self._lookup_current(record.key, charge_base_read=False) is not None:
            raise KeyError(
                f"duplicate key {record.key!r} in hypothetical {self.schema.name!r}"
            )
        self.ad.insert(self._ad_entry(record, ROLE_APPENDED))
        self.bloom.add(record.key)
        self._pending.add_insert(record)

    def delete_by_key(self, key: Any) -> Record:
        """Delete a tuple: read it (1 I/O), add an AD entry with role ``D``."""
        current = self.read_by_key(key)
        if current is None:
            raise KeyError(f"no tuple with key {key!r} in {self.schema.name!r}")
        self.ad.insert(self._ad_entry(current, ROLE_DELETED))
        self.bloom.add(key)
        self._pending.add_delete(current)
        return current

    def update_by_key(self, key: Any, **changes: Any) -> tuple[Record, Record]:
        """The 3-I/O update: read tuple, read AD page, write AD page.

        The old value (role ``D``) and new value (role ``A``) land on
        the same AD page because they hash on the same key.
        """
        old = self.read_by_key(key)  # I/O #1
        if old is None:
            raise KeyError(f"no tuple with key {key!r} in {self.schema.name!r}")
        new = self.schema.updated(old, **changes)
        # I/O #2 and #3: one chain read + one write for both entries.
        self.ad.insert_pair(
            self._ad_entry(old, ROLE_DELETED),
            self._ad_entry(new, ROLE_APPENDED),
        )
        self.bloom.add(old.key)
        self.bloom.add(new.key)
        self._pending.add_update(old, new)
        return old, new

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def read_by_key(self, key: Any) -> Record | None:
        """Bloom-screened read: skip AD entirely for unmodified tuples."""
        return self._lookup_current(key, charge_base_read=True)

    def scan_logical(self) -> Iterator[Record]:
        """Scan ``(R ∪ A) - D``: base scan merged with AD contents.

        Reads every base leaf page and every AD page once.
        """
        overlay = self._overlay_by_key()
        for record in self.base.scan_all():
            if record.key in overlay:
                continue
            yield record
        for key, record in overlay.items():
            if record is not None:
                yield record

    def logical_snapshot(self) -> list[Record]:
        """Current logical contents without charging any I/O.

        Uses the in-memory pending-delta mirror; for baseline/assertion
        paths only (a real client pays :meth:`scan_logical`).
        """
        deleted = set(self._pending.deleted)
        merged = [r for r in self.base.records_snapshot() if r not in deleted]
        merged.extend(self._pending.inserted)
        return merged

    # ------------------------------------------------------------------
    # deferred-refresh support
    # ------------------------------------------------------------------
    def net_changes(self) -> DeltaSet:
        """Compute ``A-net``/``D-net`` by reading the whole AD file."""
        self.net_reads += 1
        return _net_from_entries(self.schema.name, self.ad.scan_all())

    def ad_entry_count(self) -> int:
        """Entries currently in AD (no I/O; catalog statistic)."""
        return len(self.ad)

    def ad_page_count(self) -> int:
        """Pages currently allocated to AD (no I/O)."""
        return self.ad.page_count()

    def reset(self, net: DeltaSet | None = None) -> None:
        """Fold AD into the base file: ``R := (R ∪ A) - D``; clear AD.

        The base-file writes here are the "normal" update cost every
        scheme eventually pays; only the AD traffic before this point
        is deferred-specific overhead.  ``net`` may be passed when the
        caller just computed it (avoids a second AD scan).

        The fold is idempotent by construction (delete-if-present,
        replace-on-insert): a fold interrupted mid-way — e.g. by an
        injected storage fault — leaves the AD file intact, and the
        retry re-applies the already-folded prefix harmlessly instead
        of failing on a missing delete or a duplicate insert.
        """
        delta = net if net is not None else self.net_changes()
        for record in delta.deleted:
            if self.base.contains_key(record.key):
                self.base.delete_by_key(record.key)
        for record in delta.inserted:
            if self.base.contains_key(record.key):
                self.base.delete_by_key(record.key)
            self.base.insert(record)
        self.ad.truncate()
        self.bloom.clear()
        self._pending.clear()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _ad_entry(self, record: Record, role: str) -> Record:
        values = {
            "_k": record.key,
            # Stored as a sorted item tuple so AD entries stay hashable.
            "_values": tuple(sorted(record.values.items())),
            _ROLE_FIELD: role,
            _SEQ_FIELD: next(self._seq),
        }
        return Record((record.key, values[_SEQ_FIELD], role), values)

    @staticmethod
    def _unwrap(entry: Record) -> Record:
        return Record(entry["_k"], dict(entry["_values"]))

    def _lookup_current(self, key: Any, charge_base_read: bool) -> Record | None:
        if self.bloom.maybe_contains(key):
            entries = self.ad.lookup(key)
            if entries:
                latest = max(entries, key=lambda e: e[_SEQ_FIELD])
                if latest[_ROLE_FIELD] == ROLE_APPENDED:
                    return self._unwrap(latest)
                return None  # most recent action was a delete
            # False drop: fall through to the base file.
        if charge_base_read:
            return self.base.read_by_key(key)
        return self.base.peek_by_key(key)

    def _overlay_by_key(self) -> dict[Any, Record | None]:
        """Latest AD action per key (None = deleted); reads all of AD."""
        latest: dict[Any, Record] = {}
        for entry in self.ad.scan_all():
            key = entry["_k"]
            if key not in latest or entry[_SEQ_FIELD] > latest[key][_SEQ_FIELD]:
                latest[key] = entry
        return {
            key: (self._unwrap(e) if e[_ROLE_FIELD] == ROLE_APPENDED else None)
            for key, e in latest.items()
        }


class SeparateFilesHR(HypotheticalRelation):
    """The rejected design: separate ``A`` and ``D`` hash files.

    Section 2.2.2: "If separate files for A and D were used, at least
    five I/Os would be required rather than three since R must be read,
    and A and D must both be read and written."  Used only by the
    ablation benchmark.
    """

    def __init__(
        self,
        base: ClusteredRelation,
        bloom_bits: int = 4096,
        ad_buckets: int = 64,
    ) -> None:
        super().__init__(base, bloom_bits=bloom_bits, ad_buckets=ad_buckets)
        self.a_file = HashFile(
            f"{self.schema.name}.a",
            base.pool,
            hash_key=lambda record: record["_k"],
            records_per_page=base.records_per_page,
            buckets=ad_buckets,
        )
        self.d_file = HashFile(
            f"{self.schema.name}.d",
            base.pool,
            hash_key=lambda record: record["_k"],
            records_per_page=base.records_per_page,
            buckets=ad_buckets,
        )

    def insert(self, record: Record) -> None:
        """Append: one entry in the ``A`` file."""
        if self._lookup_current(record.key, charge_base_read=False) is not None:
            raise KeyError(
                f"duplicate key {record.key!r} in hypothetical {self.schema.name!r}"
            )
        self.a_file.insert(self._ad_entry(record, ROLE_APPENDED))
        self.bloom.add(record.key)
        self._pending.add_insert(record)

    def delete_by_key(self, key: Any) -> Record:
        """Delete: read the tuple, add one entry in the ``D`` file."""
        current = self.read_by_key(key)
        if current is None:
            raise KeyError(f"no tuple with key {key!r} in {self.schema.name!r}")
        self.d_file.insert(self._ad_entry(current, ROLE_DELETED))
        self.bloom.add(key)
        self._pending.add_delete(current)
        return current

    def update_by_key(self, key: Any, **changes: Any) -> tuple[Record, Record]:
        """The 5-I/O update: read R, read+write D, read+write A."""
        old = self.read_by_key(key)  # I/O #1
        if old is None:
            raise KeyError(f"no tuple with key {key!r} in {self.schema.name!r}")
        new = self.schema.updated(old, **changes)
        self.d_file.insert(self._ad_entry(old, ROLE_DELETED))  # I/O #2-3
        self.a_file.insert(self._ad_entry(new, ROLE_APPENDED))  # I/O #4-5
        self.bloom.add(old.key)
        self.bloom.add(new.key)
        self._pending.add_update(old, new)
        return old, new

    def net_changes(self) -> DeltaSet:
        """Compute the net delta by reading both differential files."""
        self.net_reads += 1
        entries = itertools.chain(self.a_file.scan_all(), self.d_file.scan_all())
        return _net_from_entries(self.schema.name, entries)

    def reset(self, net: DeltaSet | None = None) -> None:
        """Fold both files into the base and clear them."""
        delta = net if net is not None else self.net_changes()
        for record in delta.deleted:
            self.base.delete_by_key(record.key)
        for record in delta.inserted:
            self.base.insert(record)
        self.a_file.truncate()
        self.d_file.truncate()
        self.bloom.clear()
        self._pending.clear()

    def ad_entry_count(self) -> int:
        return len(self.a_file) + len(self.d_file)

    def ad_page_count(self) -> int:
        return self.a_file.page_count() + self.d_file.page_count()

    def _lookup_current(self, key: Any, charge_base_read: bool) -> Record | None:
        if self.bloom.maybe_contains(key):
            entries = self.a_file.lookup(key) + self.d_file.lookup(key)
            if entries:
                latest = max(entries, key=lambda e: e[_SEQ_FIELD])
                if latest[_ROLE_FIELD] == ROLE_APPENDED:
                    return self._unwrap(latest)
                return None
        if charge_base_read:
            return self.base.read_by_key(key)
        return self.base.peek_by_key(key)

    def _overlay_by_key(self) -> dict[Any, Record | None]:
        latest: dict[Any, Record] = {}
        for file in (self.a_file, self.d_file):
            for entry in file.scan_all():
                key = entry["_k"]
                if key not in latest or entry[_SEQ_FIELD] > latest[key][_SEQ_FIELD]:
                    latest[key] = entry
        return {
            key: (self._unwrap(e) if e[_ROLE_FIELD] == ROLE_APPENDED else None)
            for key, e in latest.items()
        }
