"""Hypothetical relation over hash-clustered storage (deferred ``R2``).

The paper's Model 2 never updates the join inner relation, so its
hypothetical-relation machinery is defined only for the B+-tree-
clustered outer.  This extension applies the same Section 2.2 design to
a hash-clustered relation: base hash file + combined ``AD`` differential
file + Bloom filter, with the identical 3-I/O update protocol, net-
change computation and fold-down reset.  It is what lets
:class:`~repro.maintenance.deferred.DeferredJoin` accept updates on
*both* sides of the join.

The relation must be hashed on its key field (the paper's natural join
joins to a key of ``R2``), so probes by join value and reads by key are
the same operation.
"""

from __future__ import annotations

import itertools
from typing import Any

from repro.engine.relations import HashedRelation
from repro.storage.bloom import BloomFilter
from repro.storage.hashindex import HashFile
from repro.storage.tuples import Record
from repro.views.delta import DeltaSet
from .differential import (
    ROLE_APPENDED,
    ROLE_DELETED,
    _ROLE_FIELD,
    _SEQ_FIELD,
    _net_from_entries,
)

__all__ = ["HashedHypotheticalRelation"]


class HashedHypotheticalRelation:
    """``R2`` as base hash file + AD differential file + Bloom filter."""

    def __init__(
        self,
        base: HashedRelation,
        bloom_bits: int = 4096,
        ad_buckets: int = 8,
    ) -> None:
        if base.hashed_on != base.schema.key_field:
            raise ValueError(
                "a hashed hypothetical relation must be hashed on its key "
                f"field ({base.schema.key_field!r}), got {base.hashed_on!r}"
            )
        self.base = base
        self.schema = base.schema
        self.pool = base.pool
        self.ad = HashFile(
            f"{self.schema.name}.ad",
            base.pool,
            hash_key=lambda record: record["_k"],
            records_per_page=base.records_per_page,
            buckets=ad_buckets,
        )
        self.bloom = BloomFilter(bloom_bits)
        self._seq = itertools.count()
        self._pending = DeltaSet(self.schema.name)
        #: AD-file reads that computed a net delta (see
        #: :attr:`~repro.hr.differential.HypotheticalRelation.net_reads`).
        self.net_reads = 0

    @property
    def meter(self):
        """Shared cost meter (via the buffer pool's disk)."""
        return self.base.meter

    def __len__(self) -> int:
        return len(self.logical_snapshot())

    # ------------------------------------------------------------------
    # modifications (all go to AD)
    # ------------------------------------------------------------------
    def insert(self, record: Record) -> None:
        """Append a tuple: one AD entry with role ``A``."""
        if self._lookup_current(record.key, charge_base_read=False) is not None:
            raise KeyError(
                f"duplicate key {record.key!r} in hypothetical {self.schema.name!r}"
            )
        self.ad.insert(self._ad_entry(record, ROLE_APPENDED))
        self.bloom.add(record.key)
        self._pending.add_insert(record)

    def delete_by_key(self, key: Any) -> Record:
        """Delete a tuple: read it, add an AD entry with role ``D``."""
        current = self.read_by_key(key)
        if current is None:
            raise KeyError(f"no tuple with key {key!r} in {self.schema.name!r}")
        self.ad.insert(self._ad_entry(current, ROLE_DELETED))
        self.bloom.add(key)
        self._pending.add_delete(current)
        return current

    def update_by_key(self, key: Any, **changes: Any) -> tuple[Record, Record]:
        """The 3-I/O update: read tuple, read AD page, write AD page."""
        old = self.read_by_key(key)
        if old is None:
            raise KeyError(f"no tuple with key {key!r} in {self.schema.name!r}")
        new = self.schema.updated(old, **changes)
        self.ad.insert_pair(
            self._ad_entry(old, ROLE_DELETED),
            self._ad_entry(new, ROLE_APPENDED),
        )
        self.bloom.add(old.key)
        self.bloom.add(new.key)
        self._pending.add_update(old, new)
        return old, new

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def read_by_key(self, key: Any) -> Record | None:
        """Bloom-screened keyed read (one base probe when unmodified)."""
        return self._lookup_current(key, charge_base_read=True)

    def probe(self, value: Any) -> list[Record]:
        """Current-state probe by the hash/join field (= the key)."""
        current = self.read_by_key(value)
        return [current] if current is not None else []

    def probe_base(self, value: Any) -> list[Record]:
        """Probe the *pre-batch* state: the base file only.

        This is the ``R2_old`` term of the telescoped two-sided
        differential update.
        """
        return self.base.probe(value)

    def logical_snapshot(self) -> list[Record]:
        """Current logical contents without charging I/O."""
        deleted = set(self._pending.deleted)
        merged = [r for r in self.base.records_snapshot() if r not in deleted]
        merged.extend(self._pending.inserted)
        return merged

    def records_snapshot(self) -> list[Record]:
        """Alias of :meth:`logical_snapshot` (catalog interface parity)."""
        return self.logical_snapshot()

    # ------------------------------------------------------------------
    # deferred-refresh support
    # ------------------------------------------------------------------
    def net_changes(self) -> DeltaSet:
        """Compute the net delta by reading the whole AD file."""
        self.net_reads += 1
        return _net_from_entries(self.schema.name, self.ad.scan_all())

    def ad_entry_count(self) -> int:
        """Entries currently in AD (no I/O; catalog statistic)."""
        return len(self.ad)

    def reset(self, net: DeltaSet | None = None) -> None:
        """Fold AD into the base hash file and clear it.

        Idempotent like :meth:`HypotheticalRelation.reset`: re-applying
        an interrupted fold's already-folded prefix is harmless.
        """
        delta = net if net is not None else self.net_changes()
        for record in delta.deleted:
            if self.base.peek_by_key(record.key) is not None:
                self.base.delete_by_key(record.key)
        for record in delta.inserted:
            if self.base.peek_by_key(record.key) is not None:
                self.base.delete_by_key(record.key)
            self.base.insert(record)
        self.ad.truncate()
        self.bloom.clear()
        self._pending.clear()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _ad_entry(self, record: Record, role: str) -> Record:
        values = {
            "_k": record.key,
            "_values": tuple(sorted(record.values.items())),
            _ROLE_FIELD: role,
            _SEQ_FIELD: next(self._seq),
        }
        return Record((record.key, values[_SEQ_FIELD], role), values)

    def _lookup_current(self, key: Any, charge_base_read: bool) -> Record | None:
        if self.bloom.maybe_contains(key):
            entries = self.ad.lookup(key)
            if entries:
                latest = max(entries, key=lambda e: e[_SEQ_FIELD])
                if latest[_ROLE_FIELD] == ROLE_APPENDED:
                    return Record(latest["_k"], dict(latest["_values"]))
                return None
        if charge_base_read:
            matches = self.base.probe(key)
            return matches[0] if matches else None
        peeked = self.base.peek_by_key(key)
        return peeked
