"""Simulated storage substrate: pages, files, indexes, Bloom filters.

This package is the "1986 storage system" the paper's cost model
implicitly assumes: a page-granular disk (``B``-byte blocks at ``c2``
ms per I/O), clustered B+-trees, clustered hash files, heap files and
Severance-Lohman Bloom-filtered differential files.  Every page read
and write is counted by a :class:`~repro.storage.pager.CostMeter` so
the running system can be priced with the same constants the analytic
formulas use.
"""

from .bloom import BloomFilter, optimal_bits, optimal_hashes
from .bplustree import BPlusTree, TreeStats
from .columnar import ColumnBatch, SelectionVector
from .hashindex import HashFile
from .heap import HeapFile
from .pager import (
    BufferPool,
    CostMeter,
    Page,
    PageChecksumError,
    PageId,
    PageOverflowError,
    SimulatedDisk,
    page_checksum,
)
from .tuples import Record, Schema, SchemaError

__all__ = [
    "BloomFilter",
    "BPlusTree",
    "BufferPool",
    "ColumnBatch",
    "CostMeter",
    "HashFile",
    "HeapFile",
    "Page",
    "PageChecksumError",
    "PageId",
    "PageOverflowError",
    "Record",
    "Schema",
    "SchemaError",
    "SelectionVector",
    "SimulatedDisk",
    "TreeStats",
    "optimal_bits",
    "optimal_hashes",
    "page_checksum",
]
