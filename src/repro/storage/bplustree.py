"""Clustered B+-tree over the simulated pager.

Base relations ``R``/``R1`` and materialized views are clustered
B+-trees on the field the view predicate (or the view's key) uses —
the access-method table in Section 3.1.  Leaves hold full records in
sort order and are chained for range scans; internal nodes hold
separator keys and child page ids with fanout ``B/n``.

Duplicate sort keys are supported (a base relation clustered on the
predicate attribute usually has many tuples per value): entries are
ordered by ``(sort_key, tiebreak)`` where the tiebreak is the record's
unique key.

Deletion removes the entry and unlinks emptied leaves but does not
rebalance/merge underfull nodes — the paper's cost model likewise
ignores structural maintenance beyond leaf writes ("splits of internal
index pages are infrequent, so their cost will be ignored").
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from .columnar import ColumnBatch
from .pager import BufferPool, Page, PageId
from .tuples import Record

__all__ = ["BPlusTree", "TreeStats"]


@dataclass
class _InternalNode:
    """Payload of an internal page: separators and children.

    ``children[i]`` covers keys < ``keys[i]``; the last child covers
    the remainder.  ``len(children) == len(keys) + 1``.
    """

    keys: list[Any] = field(default_factory=list)
    children: list[PageId] = field(default_factory=list)


@dataclass
class TreeStats:
    """Structural statistics (no I/O is charged to compute them)."""

    height: int
    leaf_pages: int
    internal_pages: int
    entries: int


class BPlusTree:
    """A clustered B+-tree keyed on ``sort_key(record)``.

    All page access is charged through the buffer pool.  ``fanout``
    bounds internal-node children (the paper's ``B/n``);
    ``records_per_leaf`` bounds leaf entries (the blocking factor).
    """

    def __init__(
        self,
        name: str,
        pool: BufferPool,
        sort_key: Callable[[Record], Any],
        records_per_leaf: int,
        fanout: int = 200,
    ) -> None:
        if records_per_leaf < 1:
            raise ValueError(f"records_per_leaf must be >= 1, got {records_per_leaf}")
        if fanout < 3:
            raise ValueError(f"fanout must be >= 3, got {fanout}")
        self.name = name
        self.pool = pool
        self.sort_key = sort_key
        self.records_per_leaf = records_per_leaf
        self.fanout = fanout
        self._entries = 0
        root = pool.disk.allocate(self._file("leaf"), records_per_leaf)
        pool.put(root, dirty=True)
        pool.flush(root.page_id)
        self.root_id: PageId = root.page_id
        self._height = 1  # levels including the leaf level

    # ------------------------------------------------------------------
    # public surface
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._entries

    @property
    def height(self) -> int:
        """Number of levels, leaves included (>= 1)."""
        return self._height

    def insert(self, record: Record) -> None:
        """Insert a record, splitting nodes on the way up as needed.

        Charges the descent reads plus one write per modified page.
        """
        split = self._insert_into(self.root_id, self._height, record)
        if split is not None:
            sep_key, right_id = split
            new_root = self.pool.disk.allocate(self._file("int"), 1)
            node = _InternalNode(keys=[sep_key], children=[self.root_id, right_id])
            new_root.records.append(node)
            self.pool.put(new_root, dirty=True)
            self.root_id = new_root.page_id
            self._height += 1
        self._entries += 1

    def delete(self, record: Record) -> bool:
        """Delete one entry matching the record exactly; True if found."""
        entry = (self.sort_key(record), self._tiebreak(record))
        leaf_id, path = self._descend(entry[0], entry[1])
        page = self.pool.get(leaf_id)
        for i, (stored_entry, stored) in enumerate(page.records):
            if stored_entry == entry and stored == record:
                del page.records[i]
                self.pool.put(page, dirty=True)
                self._entries -= 1
                return True
        return False

    def search(self, sort_key_value: Any) -> list[Record]:
        """All records whose sort key equals the value."""
        return list(self.range_scan(sort_key_value, sort_key_value))

    def range_scan(self, lo: Any, hi: Any) -> Iterator[Record]:
        """Records with ``lo <= sort_key <= hi`` in key order.

        One descent plus one read per leaf visited (leaves are chained).
        Thin per-record adapter over :meth:`range_batches`.
        """
        for records in self.range_batches(lo, hi):
            yield from records

    def range_batches(self, lo: Any, hi: Any) -> Iterator[list[Record]]:
        """Range scan yielding one record list per leaf page visited.

        The page-get sequence (and therefore every metered read) is
        identical to :meth:`range_scan`: one descent, then each chained
        leaf up to and including the first one holding a key past
        ``hi``.  Leaves with no in-range entries yield nothing.
        """
        leaf_id, _ = self._descend(lo, _NEG_INF)
        current: PageId | None = leaf_id
        while current is not None:
            page = self.pool.get(current)
            entries = page.records
            batch = [r for (k, _t), r in entries if lo <= k <= hi]
            if batch:
                yield batch
            if entries and entries[-1][0][0] > hi:
                return
            current = page.next_page

    def range_records(self, lo: Any, hi: Any) -> list[Record]:
        """Eager range read: all in-range records as one list."""
        out: list[Record] = []
        for records in self.range_batches(lo, hi):
            out.extend(records)
        return out

    def scan_all(self) -> Iterator[Record]:
        """Full scan in sort order via the leaf chain."""
        for batch in self.scan_batches():
            yield from batch.to_records()

    def scan_batches(self) -> Iterator[ColumnBatch]:
        """Full scan yielding one :class:`ColumnBatch` per leaf page.

        Page-sized batches are the natural vectorization unit: each
        batch corresponds to exactly one metered leaf read, so batch
        kernels inherit the tuple scan's page cost unchanged.
        """
        current: PageId | None = self._leftmost_leaf()
        while current is not None:
            page = self.pool.get(current)
            if page.records:
                yield ColumnBatch.from_records([r for _, r in page.records])
            current = page.next_page

    def locate(self, sort_key_value: Any, tiebreak: Any) -> tuple[Page, int, Record] | None:
        """Find the entry with exactly this ``(sort_key, tiebreak)``.

        Returns ``(leaf_page, index, record)`` for in-place patching
        via :meth:`replace_at` / :meth:`delete_at`, or ``None``.  The
        page-get sequence is the same as an equality ``range_scan``
        consumed up to the match, so locate-and-patch and
        delete-then-insert touch the same page set.
        """
        leaf_id, _ = self._descend(sort_key_value, _NEG_INF)
        target = (sort_key_value, tiebreak)
        current: PageId | None = leaf_id
        while current is not None:
            page = self.pool.get(current)
            for i, (entry, record) in enumerate(page.records):
                key = entry[0]
                if key < sort_key_value:
                    continue
                if key > sort_key_value:
                    return None
                if entry == target:
                    return page, i, record
            current = page.next_page
        return None

    def replace_at(self, page: Page, index: int, new_record: Record) -> None:
        """Overwrite one located entry's record in place (same key).

        The entry key is preserved, so this is only valid when the new
        record has the same sort key and tiebreak as the old — the
        duplicate-count patch in :class:`repro.views.matview`.  One
        leaf write; layout-identical to delete-then-reinsert (a unique
        ``(sort_key, tiebreak)`` reinserts at the same index and the
        leaf never overflows).
        """
        page.records[index] = (page.records[index][0], new_record)
        self.pool.put(page, dirty=True)

    def delete_at(self, page: Page, index: int) -> None:
        """Remove one located entry in place (one leaf write)."""
        del page.records[index]
        self.pool.put(page, dirty=True)
        self._entries -= 1

    def update(self, old: Record, new: Record) -> bool:
        """Replace one entry; returns False if ``old`` is absent.

        Implemented as delete+insert so key-moving updates relocate to
        the correct leaf (the common same-leaf case costs one extra
        leaf write versus an in-place patch — negligible and simpler).
        """
        if not self.delete(old):
            return False
        self.insert(new)
        return True

    def reset(self) -> None:
        """Drop every page and return to an empty single-leaf tree.

        A catalog operation (no I/O charged for the deallocation);
        used by snapshot rebuilds before reloading fresh contents.
        """
        disk = self.pool.disk
        for kind in ("leaf", "int"):
            for page_id in disk.file_pages(self._file(kind)):
                self.pool.discard(page_id)
                disk.free(page_id)
        root = disk.allocate(self._file("leaf"), self.records_per_leaf)
        self.pool.put(root, dirty=True)
        self.root_id = root.page_id
        self._height = 1
        self._entries = 0

    def stats(self) -> TreeStats:
        """Walk the structure without charging I/O (catalog inspection)."""
        disk = self.pool.disk
        leaf_pages = disk.page_count(self._file("leaf"))
        internal_pages = disk.page_count(self._file("int"))
        return TreeStats(
            height=self._height,
            leaf_pages=leaf_pages,
            internal_pages=internal_pages,
            entries=self._entries,
        )

    def bulk_load(self, records: list[Record]) -> None:
        """Build the tree bottom-up from scratch (tree must be empty).

        Fills leaves to capacity in sort order, then builds internal
        levels. Much cheaper than repeated inserts for setup; callers
        normally reset the cost meter afterwards.
        """
        if self._entries:
            raise RuntimeError("bulk_load requires an empty tree")
        ordered = sorted(records, key=lambda r: (self.sort_key(r), self._tiebreak(r)))
        if not ordered:
            return
        # Reuse the pre-allocated empty root leaf as the first leaf.
        leaf_ids: list[PageId] = []
        leaf_first_keys: list[Any] = []
        prev_leaf: Page | None = None
        for start in range(0, len(ordered), self.records_per_leaf):
            chunk = ordered[start : start + self.records_per_leaf]
            if start == 0:
                page = self.pool.get(self.root_id)
            else:
                page = self.pool.disk.allocate(self._file("leaf"), self.records_per_leaf)
            page.records = [
                ((self.sort_key(r), self._tiebreak(r)), r) for r in chunk
            ]
            if prev_leaf is not None:
                prev_leaf.next_page = page.page_id
                self.pool.put(prev_leaf, dirty=True)
            leaf_ids.append(page.page_id)
            # Separators are full (sort_key, tiebreak) entries so that
            # descent comparisons are always tuple-vs-tuple.
            leaf_first_keys.append(page.records[0][0])
            prev_leaf = page
        if prev_leaf is not None:
            self.pool.put(prev_leaf, dirty=True)
        # Build internal levels bottom-up.
        level_ids, level_keys = leaf_ids, leaf_first_keys
        height = 1
        while len(level_ids) > 1:
            parent_ids: list[PageId] = []
            parent_keys: list[Any] = []
            group = self.fanout
            for start in range(0, len(level_ids), group):
                child_ids = level_ids[start : start + group]
                child_keys = level_keys[start : start + group]
                page = self.pool.disk.allocate(self._file("int"), 1)
                node = _InternalNode(keys=list(child_keys[1:]), children=list(child_ids))
                page.records.append(node)
                self.pool.put(page, dirty=True)
                parent_ids.append(page.page_id)
                parent_keys.append(child_keys[0])
            level_ids, level_keys = parent_ids, parent_keys
            height += 1
        self.root_id = level_ids[0]
        self._height = height
        self._entries = len(ordered)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _file(self, kind: str) -> str:
        return f"{self.name}.{kind}"

    @staticmethod
    def _tiebreak(record: Record) -> Any:
        return record.key

    def _leftmost_leaf(self) -> PageId:
        page_id, level = self.root_id, self._height
        while level > 1:
            page = self.pool.get(page_id)
            node: _InternalNode = page.records[0]
            page_id = node.children[0]
            level -= 1
        return page_id

    def _descend(self, sort_key_value: Any, tiebreak: Any) -> tuple[PageId, list[PageId]]:
        """Walk root->leaf for a key, charging one read per level."""
        path: list[PageId] = []
        page_id, level = self.root_id, self._height
        while level > 1:
            path.append(page_id)
            page = self.pool.get(page_id)
            node: _InternalNode = page.records[0]
            index = bisect.bisect_right(node.keys, (sort_key_value, tiebreak))
            page_id = node.children[index]
            level -= 1
        return page_id, path

    def _insert_into(
        self, page_id: PageId, level: int, record: Record
    ) -> tuple[Any, PageId] | None:
        """Recursive insert; returns ``(separator, new_right_id)`` on split."""
        entry = (self.sort_key(record), self._tiebreak(record))
        page = self.pool.get(page_id)
        if level == 1:
            keys = [e for e, _ in page.records]
            index = bisect.bisect_right(keys, entry)
            page.records.insert(index, (entry, record))
            if len(page.records) <= self.records_per_leaf:
                self.pool.put(page, dirty=True)
                return None
            return self._split_leaf(page)
        node: _InternalNode = page.records[0]
        index = bisect.bisect_right(node.keys, entry)
        split = self._insert_into(node.children[index], level - 1, record)
        if split is None:
            return None
        sep_key, right_id = split
        node.keys.insert(index, sep_key)
        node.children.insert(index + 1, right_id)
        if len(node.children) <= self.fanout:
            self.pool.put(page, dirty=True)
            return None
        return self._split_internal(page, node)

    def _split_leaf(self, page: Page) -> tuple[Any, PageId]:
        mid = len(page.records) // 2
        right = self.pool.disk.allocate(self._file("leaf"), self.records_per_leaf)
        right.records = page.records[mid:]
        right.next_page = page.next_page
        page.records = page.records[:mid]
        page.next_page = right.page_id
        self.pool.put(page, dirty=True)
        self.pool.put(right, dirty=True)
        separator = right.records[0][0]
        return separator, right.page_id

    def _split_internal(self, page: Page, node: _InternalNode) -> tuple[Any, PageId]:
        mid = len(node.keys) // 2
        promoted = node.keys[mid]
        right_page = self.pool.disk.allocate(self._file("int"), 1)
        right_node = _InternalNode(
            keys=node.keys[mid + 1 :],
            children=node.children[mid + 1 :],
        )
        right_page.records.append(right_node)
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        self.pool.put(page, dirty=True)
        self.pool.put(right_page, dirty=True)
        return promoted, right_page.page_id


class _NegInf:
    """Sorts before every other value (used as a scan tiebreak)."""

    def __lt__(self, other: Any) -> bool:
        return True

    def __gt__(self, other: Any) -> bool:
        return False

    def __repr__(self) -> str:
        return "-inf"


_NEG_INF = _NegInf()
