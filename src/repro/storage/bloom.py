"""Bloom filter for differential-file screening (Section 2.2.2).

Severance & Lohman (1976) front a differential file with a Bloom
filter (Bloom 1970) so that reads of records *not* in the differential
file skip it entirely.  The paper relies on this to make the
hypothetical-relation read path cost effectively one I/O: the filter's
false-positive probability "can be made arbitrarily small by increasing
``m``".

The filter here is deterministic (seeded double hashing over Python's
stable ``hash`` of a repr) so simulation runs are reproducible.
"""

from __future__ import annotations

import hashlib
import math
from typing import Any, Iterable

__all__ = ["BloomFilter", "optimal_bits", "optimal_hashes"]


def optimal_bits(expected_items: int, target_fp_rate: float) -> int:
    """Bits needed for a target false-positive rate at a given load.

    Classical sizing: ``m = -n * ln(p) / (ln 2)^2``.
    """
    if expected_items < 0:
        raise ValueError(f"expected_items must be >= 0, got {expected_items}")
    if not 0.0 < target_fp_rate < 1.0:
        raise ValueError(f"target_fp_rate must be in (0, 1), got {target_fp_rate}")
    if expected_items == 0:
        return 8
    bits = -expected_items * math.log(target_fp_rate) / (math.log(2.0) ** 2)
    return max(8, math.ceil(bits))


def optimal_hashes(bits: int, expected_items: int) -> int:
    """Hash-function count minimizing false positives: ``k = m/n * ln 2``."""
    if expected_items <= 0:
        return 1
    return max(1, round(bits / expected_items * math.log(2.0)))


class BloomFilter:
    """A fixed-size bit-array Bloom filter with double hashing.

    ``maybe_contains`` returning ``False`` is definitive; ``True`` may
    be a false positive (the paper's "false drop"), in which case the
    caller searches the differential file and discovers the miss.
    """

    def __init__(self, bits: int, hashes: int | None = None, expected_items: int = 0) -> None:
        if bits < 1:
            raise ValueError(f"bits must be >= 1, got {bits}")
        self.bits = bits
        self.hashes = hashes if hashes is not None else optimal_hashes(bits, expected_items)
        if self.hashes < 1:
            raise ValueError(f"hashes must be >= 1, got {self.hashes}")
        self._array = bytearray((bits + 7) // 8)
        self.items_added = 0
        #: Lifetime probe statistics (not reset by :meth:`clear`): a
        #: negative answer is the filter doing its job — the AD lookup
        #: it saved is the Severance & Lohman payoff the serving
        #: layer's hit-rate metric reports.
        self.probes = 0
        self.negatives = 0

    @classmethod
    def for_load(cls, expected_items: int, target_fp_rate: float = 0.01) -> "BloomFilter":
        """Build a filter sized for a load and false-positive target."""
        bits = optimal_bits(expected_items, target_fp_rate)
        return cls(bits, expected_items=expected_items)

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe snapshot of the filter (sizing + bit array).

        Lifetime probe statistics are deliberately excluded: they
        describe the run, not the filter's state, so a restored filter
        starts counting afresh.  Used by durability checkpoints to
        persist AD-file screens.
        """
        return {
            "bits": self.bits,
            "hashes": self.hashes,
            "items_added": self.items_added,
            "array": bytes(self._array).hex(),
        }

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "BloomFilter":
        """Inverse of :meth:`to_dict`: rebuild an identical filter."""
        bloom = cls(doc["bits"], hashes=doc["hashes"])
        array = bytes.fromhex(doc["array"])
        if len(array) != len(bloom._array):
            raise ValueError(
                f"bloom array length {len(array)} does not match "
                f"{doc['bits']} bits"
            )
        bloom._array[:] = array
        bloom.items_added = doc["items_added"]
        return bloom

    def _positions(self, item: Any) -> Iterable[int]:
        digest = hashlib.blake2b(repr(item).encode(), digest_size=16).digest()
        h1 = int.from_bytes(digest[:8], "big")
        h2 = int.from_bytes(digest[8:], "big") | 1  # odd => full cycle
        for i in range(self.hashes):
            yield (h1 + i * h2) % self.bits

    def add(self, item: Any) -> None:
        """Insert an item's key signature."""
        for pos in self._positions(item):
            self._array[pos >> 3] |= 1 << (pos & 7)
        self.items_added += 1

    def maybe_contains(self, item: Any) -> bool:
        """False => definitely absent; True => possibly present."""
        self.probes += 1
        for pos in self._positions(item):
            if not self._array[pos >> 3] & (1 << (pos & 7)):
                self.negatives += 1
                return False
        return True

    @property
    def negative_rate(self) -> float:
        """Fraction of probes answered "definitely absent" so far."""
        return self.negatives / self.probes if self.probes else 0.0

    def clear(self) -> None:
        """Reset to empty (used when the differential file is folded in)."""
        for i in range(len(self._array)):
            self._array[i] = 0
        self.items_added = 0

    @property
    def fill_fraction(self) -> float:
        """Fraction of bits set (load indicator)."""
        set_bits = sum(bin(byte).count("1") for byte in self._array)
        return set_bits / self.bits

    def estimated_fp_rate(self) -> float:
        """Expected false-positive rate at the current load.

        ``(1 - e^{-k n / m})^k`` with ``n`` items added so far.
        """
        if self.items_added == 0:
            return 0.0
        exponent = -self.hashes * self.items_added / self.bits
        return (1.0 - math.exp(exponent)) ** self.hashes
