"""Simulated disk, buffer pool and cost accounting.

The paper prices every strategy in disk I/Os (``c2`` each) plus CPU
screening (``c1``) and A/D-set bookkeeping (``c3``).  The substrate in
this package executes the strategies for real against a page-granular
simulated disk; :class:`CostMeter` counts the same four event classes
the formulas count, and converts them to milliseconds with the same
constants, so measured and analytic costs are directly comparable.

A page holds records (``T = B/S`` per page, as in the paper); the
buffer pool is an LRU cache over pages with pinning support (the
nested-loop join pins inner-relation pages, Section 3.4.3).
"""

from __future__ import annotations

import itertools
import zlib
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator

from repro.core.parameters import Parameters

__all__ = [
    "PageId",
    "Page",
    "SimulatedDisk",
    "BufferPool",
    "CostMeter",
    "PageOverflowError",
    "PageChecksumError",
    "page_checksum",
]


class PageOverflowError(RuntimeError):
    """A record was added to a page that is already at capacity."""


class PageChecksumError(RuntimeError):
    """A page image read from disk does not match its stored checksum.

    Raised by :meth:`SimulatedDisk.read` when ``verify_reads`` is on and
    the at-rest image has diverged from the checksum recorded at write
    time — the simulated equivalent of detecting bit-rot or a torn
    write via a page-header CRC.
    """

    def __init__(self, page_id: "PageId", detail: str = "checksum mismatch") -> None:
        super().__init__(f"{detail} on page {page_id}")
        self.page_id = page_id
        self.detail = detail


def page_checksum(page: "Page") -> int:
    """CRC32 over a page's logical content (records + successor link).

    Records are hashed via ``repr`` so the checksum covers exactly what
    :meth:`Page.clone` persists; any in-place mutation of the stored
    image (simulated bit-rot) or truncation (torn write) changes it.
    """
    payload = repr((page.records, page.next_page)).encode("utf-8", "replace")
    return zlib.crc32(payload)


@dataclass(frozen=True)
class PageId:
    """Identifies one disk page: a file name plus a page number."""

    file: str
    number: int

    def __str__(self) -> str:
        return f"{self.file}:{self.number}"


class Page:
    """A disk page holding up to ``capacity`` records.

    Records are arbitrary Python objects; files impose their own layout
    (sorted for B+-tree leaves, unordered for heaps and hash buckets).
    """

    __slots__ = ("page_id", "capacity", "records", "next_page")

    def __init__(self, page_id: PageId, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"page capacity must be >= 1, got {capacity}")
        self.page_id = page_id
        self.capacity = capacity
        self.records: list[Any] = []
        #: Optional link to a successor page (leaf chains, bucket chains).
        self.next_page: PageId | None = None

    @property
    def is_full(self) -> bool:
        return len(self.records) >= self.capacity

    @property
    def is_empty(self) -> bool:
        return not self.records

    def add(self, record: Any) -> None:
        """Append a record; raises :class:`PageOverflowError` when full."""
        if self.is_full:
            raise PageOverflowError(f"page {self.page_id} is full ({self.capacity})")
        self.records.append(record)

    def clone(self) -> "Page":
        """Shallow copy used by the disk to model a persisted image."""
        copy = Page(self.page_id, self.capacity)
        copy.records = list(self.records)
        copy.next_page = self.next_page
        return copy


@dataclass
class CostMeter:
    """Counts the cost events the paper's formulas price.

    * ``page_reads`` / ``page_writes`` — ``c2`` each.
    * ``screens`` — predicate/satisfiability CPU tests, ``c1`` each.
    * ``ad_ops`` — per-tuple A/D in-memory set manipulations, ``c3``
      each (only immediate maintenance generates these).

    Checkpoints (:meth:`snapshot` / :meth:`delta_since`) let callers
    price individual phases (one query, one refresh) in isolation.

    Setup work (initial bulk loads, view materialization) is charged
    to a separate **setup bucket** while a :meth:`setup_phase` context
    is active, so it never leaks into the first query's metered cost.
    The paper excludes initial materialization from per-query costs;
    the bucket makes that exclusion structural instead of relying on
    every caller remembering to :meth:`reset`.
    """

    page_reads: int = 0
    page_writes: int = 0
    screens: int = 0
    ad_ops: int = 0
    #: Setup-bucket counters: same event classes, charged during an
    #: active :meth:`setup_phase` (bulk loads, initial materialization).
    setup_page_reads: int = 0
    setup_page_writes: int = 0
    setup_screens: int = 0
    setup_ad_ops: int = 0
    #: Depth of nested :meth:`setup_phase` contexts (>0 = diverting).
    _setup_depth: int = 0

    def record_read(self, count: int = 1) -> None:
        """Count disk page reads (c2 each)."""
        if self._setup_depth:
            self.setup_page_reads += count
        else:
            self.page_reads += count

    def record_write(self, count: int = 1) -> None:
        """Count disk page writes (c2 each)."""
        if self._setup_depth:
            self.setup_page_writes += count
        else:
            self.page_writes += count

    def record_screen(self, count: int = 1) -> None:
        """Count predicate/satisfiability CPU tests (c1 each)."""
        if self._setup_depth:
            self.setup_screens += count
        else:
            self.screens += count

    def record_ad_op(self, count: int = 1) -> None:
        """Count in-memory A/D set manipulations (c3 each)."""
        if self._setup_depth:
            self.setup_ad_ops += count
        else:
            self.ad_ops += count

    @contextmanager
    def setup_phase(self) -> Iterator["CostMeter"]:
        """Divert recorded events to the setup bucket while active.

        Nests safely (the outermost context controls the bucket), so a
        bulk load inside a view definition charges setup exactly once.
        """
        self._setup_depth += 1
        try:
            yield self
        finally:
            self._setup_depth -= 1

    @property
    def setup_page_ios(self) -> int:
        return self.setup_page_reads + self.setup_page_writes

    def setup_milliseconds(self, params: Parameters) -> float:
        """Setup-bucket cost in ms under the parameter set's constants."""
        return (
            params.c2 * self.setup_page_ios
            + params.c1 * self.setup_screens
            + params.c3 * self.setup_ad_ops
        )

    def charge_setup_to_workload(self) -> None:
        """Fold the setup bucket into the workload counters (and clear it).

        Used when a caller explicitly wants setup I/O priced like
        request work (``ViewServer.register_view(charge_setup=True)``).
        """
        self.page_reads += self.setup_page_reads
        self.page_writes += self.setup_page_writes
        self.screens += self.setup_screens
        self.ad_ops += self.setup_ad_ops
        self.clear_setup()

    def clear_setup(self) -> None:
        """Zero the setup bucket only."""
        self.setup_page_reads = 0
        self.setup_page_writes = 0
        self.setup_screens = 0
        self.setup_ad_ops = 0

    @property
    def page_ios(self) -> int:
        return self.page_reads + self.page_writes

    def milliseconds(self, params: Parameters) -> float:
        """Total cost in ms under the parameter set's constants."""
        return (
            params.c2 * self.page_ios
            + params.c1 * self.screens
            + params.c3 * self.ad_ops
        )

    def snapshot(self) -> "CostMeter":
        """Immutable-ish copy of the current counters."""
        return CostMeter(
            page_reads=self.page_reads,
            page_writes=self.page_writes,
            screens=self.screens,
            ad_ops=self.ad_ops,
            setup_page_reads=self.setup_page_reads,
            setup_page_writes=self.setup_page_writes,
            setup_screens=self.setup_screens,
            setup_ad_ops=self.setup_ad_ops,
        )

    def delta_since(self, earlier: "CostMeter") -> "CostMeter":
        """Counters accumulated since an earlier snapshot."""
        return CostMeter(
            page_reads=self.page_reads - earlier.page_reads,
            page_writes=self.page_writes - earlier.page_writes,
            screens=self.screens - earlier.screens,
            ad_ops=self.ad_ops - earlier.ad_ops,
            setup_page_reads=self.setup_page_reads - earlier.setup_page_reads,
            setup_page_writes=self.setup_page_writes - earlier.setup_page_writes,
            setup_screens=self.setup_screens - earlier.setup_screens,
            setup_ad_ops=self.setup_ad_ops - earlier.setup_ad_ops,
        )

    def diff(self, earlier: "CostMeter") -> "CostMeter":
        """Counters accumulated since an earlier snapshot.

        Alias of :meth:`delta_since` with the argument order spelled
        the way request-attribution code reads:
        ``meter.diff(before)``.
        """
        return self.delta_since(earlier)

    def merge(self, other: "CostMeter") -> "CostMeter":
        """Accumulate another meter's counts into this one.

        Lets per-phase accounting fold request deltas into a bucket
        meter (``query_meter.merge(meter.diff(before))``) without
        re-recording each event class by hand.  Returns ``self`` so
        merges chain.
        """
        self.page_reads += other.page_reads
        self.page_writes += other.page_writes
        self.screens += other.screens
        self.ad_ops += other.ad_ops
        self.setup_page_reads += other.setup_page_reads
        self.setup_page_writes += other.setup_page_writes
        self.setup_screens += other.setup_screens
        self.setup_ad_ops += other.setup_ad_ops
        return self

    def reset(self) -> None:
        """Zero every counter (both the workload and setup buckets)."""
        self.page_reads = 0
        self.page_writes = 0
        self.screens = 0
        self.ad_ops = 0
        self.clear_setup()


class SimulatedDisk:
    """Page store with read/write counting.

    Pages live in a dict keyed by :class:`PageId`.  Reads return a
    *clone* so in-memory mutation without a write-back is visible as a
    bug (lost update) rather than silently persisted — the same
    discipline a real page cache enforces.
    """

    def __init__(self, meter: CostMeter | None = None) -> None:
        self.meter = meter if meter is not None else CostMeter()
        self._pages: dict[PageId, Page] = {}
        self._checksums: dict[PageId, int] = {}
        self._next_number: dict[str, Iterator[int]] = {}
        #: When true, every :meth:`read` recomputes the page checksum
        #: and raises :class:`PageChecksumError` on a mismatch.  Off by
        #: default: the clean substrate cannot rot, so the paper's cost
        #: experiments skip the (pure-CPU) verification.
        self.verify_reads = False

    def __contains__(self, page_id: PageId) -> bool:
        return page_id in self._pages

    def page_count(self, file: str) -> int:
        """Number of allocated pages in one file."""
        # list() snapshots the keys atomically (single bytecode under
        # the GIL); bare iteration races concurrent allocate() calls
        # with "dictionary changed size during iteration".
        return sum(1 for pid in list(self._pages) if pid.file == file)

    def files(self) -> list[str]:
        """Every file name with at least one allocated page, sorted."""
        return sorted({pid.file for pid in list(self._pages)})

    def allocate(self, file: str, capacity: int) -> Page:
        """Allocate a fresh page in ``file`` (no I/O is charged)."""
        counter = self._next_number.setdefault(file, itertools.count())
        page_id = PageId(file, next(counter))
        page = Page(page_id, capacity)
        self._pages[page_id] = page
        self._checksums[page_id] = page_checksum(page)
        return page.clone()

    def read(self, page_id: PageId) -> Page:
        """Fetch a page image from disk, charging one read.

        With ``verify_reads`` enabled the stored image is checked
        against its write-time checksum first; damaged pages raise
        :class:`PageChecksumError` instead of silently serving rot.
        """
        try:
            stored = self._pages[page_id]
        except KeyError:
            raise KeyError(f"no such page: {page_id}") from None
        self.meter.record_read()
        if self.verify_reads and page_checksum(stored) != self._checksums[page_id]:
            raise PageChecksumError(page_id)
        return stored.clone()

    def write(self, page: Page) -> None:
        """Persist a page image, charging one write."""
        if page.page_id not in self._pages:
            raise KeyError(f"cannot write unallocated page: {page.page_id}")
        self.meter.record_write()
        stored = page.clone()
        self._pages[page.page_id] = stored
        self._checksums[page.page_id] = page_checksum(stored)

    def free(self, page_id: PageId) -> None:
        """Deallocate a page (no I/O charged, mirroring the paper)."""
        self._pages.pop(page_id, None)
        self._checksums.pop(page_id, None)

    def file_pages(self, file: str) -> list[PageId]:
        """All page ids of a file, in allocation order."""
        pids = [pid for pid in list(self._pages) if pid.file == file]
        pids.sort(key=lambda pid: pid.number)
        return pids

    def verify(self, page_id: PageId) -> str | None:
        """Check one page's at-rest integrity without raising.

        Charges one read (the scrubber pays for its walk) and returns
        ``None`` when the stored image matches its checksum, otherwise
        a short description of the damage.  Unlike :meth:`read` this
        never raises, so an integrity scrub can keep walking past
        damaged pages and report them all.
        """
        stored = self._pages.get(page_id)
        if stored is None:
            return "missing"
        self.meter.record_read()
        if page_checksum(stored) != self._checksums[page_id]:
            return "checksum mismatch"
        return None

    def corrupt(self, page_id: PageId, *, drop_records: int = 1) -> str | None:
        """Damage the stored image *in place* without updating its checksum.

        Models at-rest bit-rot: the next verified read (or scrub) of the
        page detects the divergence.  Returns a description of the
        damage applied, or ``None`` when the page is already damaged or
        unallocated (re-rotting an already-rotten page is a no-op so
        injection counters stay honest).
        """
        stored = self._pages.get(page_id)
        if stored is None:
            return None
        if page_checksum(stored) != self._checksums[page_id]:
            return None
        if stored.records:
            dropped = min(max(drop_records, 1), len(stored.records))
            del stored.records[:dropped]
            return f"dropped {dropped} record(s)"
        stored.next_page = PageId(page_id.file, page_id.number + 1_000_003)
        return "scrambled successor link"


class BufferPool:
    """LRU page cache in front of a :class:`SimulatedDisk`.

    Only *misses* cost disk reads; dirty pages cost one write when
    flushed (write-back).  ``pin``/``unpin`` keep hot pages resident —
    the paper's nested-loop join assumes the inner relation stays
    buffered after first touch.
    """

    def __init__(self, disk: SimulatedDisk, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError(f"buffer pool capacity must be >= 1, got {capacity}")
        self.disk = disk
        self.capacity = capacity
        self._frames: OrderedDict[PageId, Page] = OrderedDict()
        self._dirty: set[PageId] = set()
        self._pinned: set[PageId] = set()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._frames)

    def get(self, page_id: PageId) -> Page:
        """Return the buffered page, reading from disk on a miss."""
        if page_id in self._frames:
            self.hits += 1
            self._frames.move_to_end(page_id)
            return self._frames[page_id]
        self.misses += 1
        page = self.disk.read(page_id)
        self._admit(page)
        return page

    def put(self, page: Page, dirty: bool = True) -> None:
        """Install (or refresh) a page image in the pool."""
        if page.page_id in self._frames:
            self._frames[page.page_id] = page
            self._frames.move_to_end(page.page_id)
        else:
            self._admit(page)
        if dirty:
            self._dirty.add(page.page_id)

    def mark_dirty(self, page_id: PageId) -> None:
        """Flag a buffered page as modified (flushed on eviction)."""
        if page_id not in self._frames:
            raise KeyError(f"cannot dirty a page not in the pool: {page_id}")
        self._dirty.add(page_id)

    def pin(self, page_id: PageId) -> None:
        """Keep a page resident until unpinned (it must be buffered)."""
        if page_id not in self._frames:
            self.get(page_id)
        self._pinned.add(page_id)

    def unpin(self, page_id: PageId) -> None:
        """Release one pinned page."""
        self._pinned.discard(page_id)

    def unpin_all(self) -> None:
        """Release every pin (end of a join)."""
        self._pinned.clear()

    def flush(self, page_id: PageId) -> None:
        """Write one dirty page back to disk."""
        if page_id in self._dirty:
            self.disk.write(self._frames[page_id])
            self._dirty.discard(page_id)

    def flush_all(self) -> None:
        """Write every dirty page back to disk."""
        for page_id in list(self._dirty):
            self.flush(page_id)

    def discard(self, page_id: PageId) -> None:
        """Drop a frame without flushing (for pages being deallocated)."""
        self._frames.pop(page_id, None)
        self._dirty.discard(page_id)
        self._pinned.discard(page_id)

    def invalidate_all(self) -> None:
        """Drop every (clean) frame; dirty pages are flushed first."""
        self.flush_all()
        self._frames.clear()
        self._pinned.clear()

    def _admit(self, page: Page) -> None:
        while len(self._frames) >= self.capacity:
            victim_id = self._next_victim()
            if victim_id is None:
                # Everything is pinned; allow the pool to grow rather
                # than deadlock — mirrors the paper's large-memory
                # assumption for the nested-loop inner relation.
                break
            self.flush(victim_id)
            del self._frames[victim_id]
        self._frames[page.page_id] = page

    def _next_victim(self) -> PageId | None:
        for page_id in self._frames:
            if page_id not in self._pinned:
                return page_id
        return None
