"""Records and schemas for the simulated relations.

The paper models tuples as opaque ``S``-byte values with a unique key
and whatever attributes the view predicate / join reads.  A
:class:`Record` is a frozen mapping of field names to values plus a
designated key; a :class:`Schema` fixes the field set, the key field
and the tuple size (which determines the blocking factor ``T = B/S``).
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Any, Iterable, Mapping

__all__ = ["Schema", "Record", "SchemaError"]


class SchemaError(ValueError):
    """A record does not conform to its schema."""


@dataclass(frozen=True)
class Schema:
    """Field layout of one relation.

    ``tuple_bytes`` is the paper's ``S``; together with the block size
    it fixes how many records fit on a page.
    """

    name: str
    fields: tuple[str, ...]
    key_field: str
    tuple_bytes: int = 100

    def __post_init__(self) -> None:
        if not self.fields:
            raise SchemaError(f"schema {self.name!r} has no fields")
        if len(set(self.fields)) != len(self.fields):
            raise SchemaError(f"schema {self.name!r} has duplicate fields")
        if self.key_field not in self.fields:
            raise SchemaError(
                f"key field {self.key_field!r} not among fields of {self.name!r}"
            )
        if self.tuple_bytes < 1:
            raise SchemaError(f"tuple_bytes must be >= 1, got {self.tuple_bytes}")

    def records_per_page(self, block_bytes: int) -> int:
        """Blocking factor ``T = B/S`` (at least one record per page)."""
        return max(1, block_bytes // self.tuple_bytes)

    def new_record(self, **values: Any) -> "Record":
        """Build a record, checking the field set matches the schema."""
        missing = set(self.fields) - set(values)
        extra = set(values) - set(self.fields)
        if missing or extra:
            raise SchemaError(
                f"record fields do not match schema {self.name!r}: "
                f"missing={sorted(missing)}, extra={sorted(extra)}"
            )
        return Record(values[self.key_field], values)

    def project(self, record: "Record", fields: Iterable[str]) -> Mapping[str, Any]:
        """Project a record to a subset of fields."""
        wanted = tuple(fields)
        unknown = set(wanted) - set(self.fields)
        if unknown:
            raise SchemaError(f"cannot project unknown fields {sorted(unknown)}")
        return {f: record[f] for f in wanted}

    def updated(self, record: "Record", **changes: Any) -> "Record":
        """Return a copy of ``record`` with some fields replaced.

        The key is recomputed from the (possibly updated) key field, so
        key-changing updates stay consistent with the schema.
        """
        merged = dict(record.values)
        unknown = set(changes) - set(self.fields)
        if unknown:
            raise SchemaError(f"unknown fields {sorted(unknown)} in update")
        merged.update(changes)
        return self.new_record(**merged)


class Record:
    """An immutable tuple: a key plus a field->value mapping.

    Records hash and compare by *value* (key and all fields) so they
    can live in the A/D sets, Bloom filters and duplicate-count maps
    that the maintenance algorithms manipulate.

    The value hash is computed lazily on first use: most records flow
    through scans, screens and batch kernels without ever being hashed,
    and the eager sort-and-hash at construction dominated the per-tuple
    CPU cost of the old hot path.
    """

    __slots__ = ("key", "_values", "_hash")

    def __init__(self, key: Any, values: Mapping[str, Any]) -> None:
        object.__setattr__(self, "key", key)
        object.__setattr__(self, "_values", MappingProxyType(dict(values)))
        object.__setattr__(self, "_hash", None)

    @classmethod
    def from_sorted_items(
        cls,
        key: Any,
        items: Iterable[tuple[str, Any]],
        value_hash: int | None = None,
    ) -> "Record":
        """Fast constructor from already-sorted ``(field, value)`` pairs.

        The net-change kernels store record values as sorted item
        tuples (the AD-file format); rebuilding records from them can
        skip the plain constructor's ``dict`` copy of a dict.  A caller
        that already holds ``hash((key, items_tuple))`` — the exact
        value :meth:`__hash__` computes — may pass it as ``value_hash``
        so the record never re-sorts its items to hash itself.
        """
        self = cls.__new__(cls)
        object.__setattr__(self, "key", key)
        object.__setattr__(self, "_values", MappingProxyType(dict(items)))
        object.__setattr__(self, "_hash", value_hash)
        return self

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Record is immutable")

    def __getitem__(self, field: str) -> Any:
        return self._values[field]

    def get(self, field: str, default: Any = None) -> Any:
        """Field access with a default (dict.get semantics)."""
        return self._values.get(field, default)

    @property
    def values(self) -> Mapping[str, Any]:
        return self._values

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Record):
            return NotImplemented
        return self.key == other.key and self._values == other._values

    def __hash__(self) -> int:
        value = self._hash
        if value is None:
            value = hash((self.key, tuple(sorted(self._values.items()))))
            object.__setattr__(self, "_hash", value)
        return value

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self._values.items())
        return f"Record(key={self.key!r}, {inner})"
