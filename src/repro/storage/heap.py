"""Heap file: unordered pages, appended in allocation order.

Used for sequential scans (query modification's fallback plan) and as
the simplest storage structure in tests.  All page traffic goes through
the buffer pool so reads and writes are costed exactly once.
"""

from __future__ import annotations

from typing import Callable, Iterator

from .columnar import ColumnBatch
from .pager import BufferPool, Page, PageId
from .tuples import Record

__all__ = ["HeapFile"]


class HeapFile:
    """An unordered collection of records across fixed-capacity pages.

    ``records_per_page`` is the paper's blocking factor ``T``; inserts
    fill the last page and allocate a new one when it overflows.
    """

    def __init__(self, name: str, pool: BufferPool, records_per_page: int) -> None:
        if records_per_page < 1:
            raise ValueError(f"records_per_page must be >= 1, got {records_per_page}")
        self.name = name
        self.pool = pool
        self.records_per_page = records_per_page
        self._page_ids: list[PageId] = []

    def __len__(self) -> int:
        return self.record_count()

    @property
    def page_count(self) -> int:
        return len(self._page_ids)

    def record_count(self) -> int:
        """Total records (walks the file; counts I/O like any scan)."""
        return sum(1 for _ in self.scan())

    def insert(self, record: Record) -> PageId:
        """Append a record, returning the page it landed on.

        Costs one read + one write of the tail page (plus nothing for
        allocation, matching the paper's accounting).
        """
        if self._page_ids:
            tail_id = self._page_ids[-1]
            page = self.pool.get(tail_id)
            if not page.is_full:
                page.add(record)
                self.pool.put(page, dirty=True)
                return tail_id
        page = self.pool.disk.allocate(self.name, self.records_per_page)
        page.add(record)
        self._page_ids.append(page.page_id)
        self.pool.put(page, dirty=True)
        return page.page_id

    def bulk_load(self, records: list[Record]) -> None:
        """Load many records with one write per filled page.

        Used to build the initial database state without charging the
        workload for setup I/O — callers typically reset the meter
        afterwards anyway.
        """
        for start in range(0, len(records), self.records_per_page):
            chunk = records[start : start + self.records_per_page]
            page = self.pool.disk.allocate(self.name, self.records_per_page)
            for record in chunk:
                page.add(record)
            self._page_ids.append(page.page_id)
            self.pool.put(page, dirty=True)

    def scan(self) -> Iterator[Record]:
        """Sequential scan in page order (one read per page)."""
        for batch in self.scan_batches():
            yield from batch.to_records()

    def scan_batches(self) -> Iterator[ColumnBatch]:
        """Sequential scan yielding one :class:`ColumnBatch` per page.

        Same page-read sequence as :meth:`scan`; each batch aliases the
        page's record list (zero-copy), one metered read per batch.
        """
        for page_id in list(self._page_ids):
            page = self.pool.get(page_id)
            if page.records:
                yield ColumnBatch.from_records(list(page.records))

    def scan_pages(self) -> Iterator[Page]:
        """Yield whole pages (used by utilities that repack files)."""
        for page_id in list(self._page_ids):
            yield self.pool.get(page_id)

    def delete_where(self, predicate: Callable[[Record], bool]) -> int:
        """Delete matching records; returns how many were removed.

        Reads every page; rewrites only pages that changed.
        """
        removed = 0
        for page_id in list(self._page_ids):
            page = self.pool.get(page_id)
            kept = [r for r in page.records if not predicate(r)]
            if len(kept) != len(page.records):
                removed += len(page.records) - len(kept)
                page.records[:] = kept
                self.pool.put(page, dirty=True)
        return removed

    def truncate(self) -> None:
        """Drop all pages (no I/O charged; a catalog operation)."""
        for page_id in self._page_ids:
            self.pool.discard(page_id)
            self.pool.disk.free(page_id)
        self._page_ids.clear()
