"""Clustered hash file: fixed bucket directory with chained pages.

Section 3.1 gives ``R2`` clustered hashing on the join field and the
``AD`` differential file clustered hashing on the tuple key.  The
implementation uses a fixed number of buckets, each a chain of pages;
a lookup reads the chain of one bucket (one page in the common case,
which is the paper's assumption for hash probes).
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

from .pager import BufferPool, Page, PageId
from .tuples import Record

__all__ = ["HashFile"]


class HashFile:
    """Bucket-chained hash file keyed on ``hash_key(record)``.

    ``buckets`` should be sized so a bucket's records fit one page for
    the expected load; overflow chains keep correctness when they do
    not.  All page traffic is charged through the buffer pool.
    """

    def __init__(
        self,
        name: str,
        pool: BufferPool,
        hash_key: Callable[[Record], Any],
        records_per_page: int,
        buckets: int = 64,
    ) -> None:
        if records_per_page < 1:
            raise ValueError(f"records_per_page must be >= 1, got {records_per_page}")
        if buckets < 1:
            raise ValueError(f"buckets must be >= 1, got {buckets}")
        self.name = name
        self.pool = pool
        self.hash_key = hash_key
        self.records_per_page = records_per_page
        self.buckets = buckets
        self._heads: list[PageId | None] = [None] * buckets
        self._entries = 0

    def __len__(self) -> int:
        return self._entries

    def _bucket_of(self, key: Any) -> int:
        # Stable across runs for ints/strings; Python ints hash to
        # themselves so integer keys spread by modulo, like a real
        # mod-hash file.
        return hash(key) % self.buckets

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def lookup(self, key: Any) -> list[Record]:
        """All records whose hash key equals ``key`` (reads one chain)."""
        matches = []
        for page in self._chain_pages(self._bucket_of(key)):
            matches.extend(r for r in page.records if self.hash_key(r) == key)
        return matches

    def lookup_pinned(self, key: Any) -> list[Record]:
        """Like :meth:`lookup`, but pins the chain pages it touches.

        Used by the nested-loop join so inner pages stay buffered for
        the whole join; the caller unpins via ``pool.unpin_all()``.
        """
        matches = []
        for page in self._chain_pages(self._bucket_of(key)):
            self.pool.pin(page.page_id)
            matches.extend(r for r in page.records if self.hash_key(r) == key)
        return matches

    def insert(self, record: Record) -> PageId:
        """Insert into the first chain page with room (read+write).

        Returns the page written.  Appends a new chain page when the
        bucket is full.
        """
        bucket = self._bucket_of(self.hash_key(record))
        last_page: Page | None = None
        for page in self._chain_pages(bucket):
            last_page = page
            if not page.is_full:
                page.add(record)
                self.pool.put(page, dirty=True)
                self._entries += 1
                return page.page_id
        fresh = self.pool.disk.allocate(self._file(), self.records_per_page)
        fresh.add(record)
        self.pool.put(fresh, dirty=True)
        if last_page is None:
            self._heads[bucket] = fresh.page_id
        else:
            last_page.next_page = fresh.page_id
            self.pool.put(last_page, dirty=True)
        self._entries += 1
        return fresh.page_id

    def insert_pair(self, first: Record, second: Record) -> PageId:
        """Insert two same-bucket records with one read + one write.

        This is the paper's 3-I/O update protocol: when a tuple is
        modified without changing its key, the deleted old value and
        the appended new value hash to the same AD page, so both are
        placed with a single page read and a single page write.
        """
        bucket = self._bucket_of(self.hash_key(first))
        if bucket != self._bucket_of(self.hash_key(second)):
            raise ValueError("insert_pair requires records hashing to one bucket")
        last_page: Page | None = None
        for page in self._chain_pages(bucket):
            last_page = page
            if page.capacity - len(page.records) >= 2:
                page.add(first)
                page.add(second)
                self.pool.put(page, dirty=True)
                self._entries += 2
                return page.page_id
        fresh = self.pool.disk.allocate(self._file(), max(2, self.records_per_page))
        fresh.add(first)
        fresh.add(second)
        self.pool.put(fresh, dirty=True)
        if last_page is None:
            self._heads[bucket] = fresh.page_id
        else:
            last_page.next_page = fresh.page_id
            self.pool.put(last_page, dirty=True)
        self._entries += 2
        return fresh.page_id

    def delete(self, record: Record) -> bool:
        """Remove one exactly-matching record; True if found."""
        bucket = self._bucket_of(self.hash_key(record))
        for page in self._chain_pages(bucket):
            for i, stored in enumerate(page.records):
                if stored == record:
                    del page.records[i]
                    self.pool.put(page, dirty=True)
                    self._entries -= 1
                    return True
        return False

    def delete_key(self, key: Any) -> int:
        """Remove every record with the given hash key; returns count."""
        bucket = self._bucket_of(key)
        removed = 0
        for page in self._chain_pages(bucket):
            kept = [r for r in page.records if self.hash_key(r) != key]
            if len(kept) != len(page.records):
                removed += len(page.records) - len(kept)
                page.records[:] = kept
                self.pool.put(page, dirty=True)
        self._entries -= removed
        return removed

    def scan_all(self) -> Iterator[Record]:
        """Read every chain page once, yielding all records."""
        for bucket in range(self.buckets):
            for page in self._chain_pages(bucket):
                yield from page.records

    def page_count(self) -> int:
        """Allocated pages (catalog inspection, no I/O charged)."""
        return self.pool.disk.page_count(self._file())

    def truncate(self) -> None:
        """Drop every page and reset the directory (catalog operation)."""
        for pid in self.pool.disk.file_pages(self._file()):
            self.pool.discard(pid)
            self.pool.disk.free(pid)
        self._heads = [None] * self.buckets
        self._entries = 0

    def bulk_load(self, records: list[Record]) -> None:
        """Load records bucket-by-bucket with one write per filled page.

        The file must be empty (use :meth:`insert` for incremental adds).
        """
        if self._entries:
            raise RuntimeError("bulk_load requires an empty hash file")
        grouped: dict[int, list[Record]] = {}
        for record in records:
            grouped.setdefault(self._bucket_of(self.hash_key(record)), []).append(record)
        for bucket, group in grouped.items():
            prev: Page | None = None
            for start in range(0, len(group), self.records_per_page):
                chunk = group[start : start + self.records_per_page]
                page = self.pool.disk.allocate(self._file(), self.records_per_page)
                for record in chunk:
                    page.add(record)
                self.pool.put(page, dirty=True)
                if prev is None:
                    self._heads[bucket] = page.page_id
                else:
                    prev.next_page = page.page_id
                    self.pool.put(prev, dirty=True)
                prev = page
        self._entries += len(records)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _file(self) -> str:
        return f"{self.name}.hash"

    def _chain_pages(self, bucket: int) -> Iterator[Page]:
        current = self._heads[bucket]
        while current is not None:
            page = self.pool.get(current)
            yield page
            current = page.next_page
