"""Columnar batches and selection vectors for the vectorized hot path.

The engine's hot loops — stage-2 screening, net-change computation,
differential apply, view-range reads — process *batches* of records
rather than one tuple at a time.  A :class:`ColumnBatch` is the unit of
that processing: a fixed set of rows exposed both as the original
record objects (zero-copy — the batch just references the caller's
list) and, on demand, as cached per-field *column* lists that
comprehension-style kernels iterate at C speed.

Filters do not materialize intermediate batches.  They narrow a
:class:`SelectionVector` — a list of row indices into one batch — so a
conjunction of predicates is evaluated as successive index-list
shrinking (`repro.views.predicate.Predicate.matches_batch`), and only
the final survivors are gathered with :meth:`ColumnBatch.take`.

Cost accounting is unaffected by batching **by construction**: batches
are built from exactly the page reads the tuple-at-a-time iterators
performed, and CPU charges (``c1`` screens, ``c3`` ad ops) are metered
per batch with the same totals (``meter.record_screen(n)`` instead of
``n`` calls).  See docs/performance.md ("Columnar batches").

Fixed-width integer columns can additionally be packed into an
``array('q')`` (:meth:`ColumnBatch.pack_fixed`) whose ``memoryview``
slices share the buffer — useful for dense numeric post-processing;
the general engine path keeps plain list columns because field values
are arbitrary Python objects.
"""

from __future__ import annotations

from array import array
from typing import Any, Iterator, Sequence

from .tuples import Record

__all__ = ["ColumnBatch", "SelectionVector"]


class SelectionVector:
    """An ordered index mask over one batch's rows.

    Indices are strictly increasing row positions, so composing filters
    by narrowing a selection preserves row order, and a selection is
    also a stable identifier of "which rows" independently of the
    values stored in them.
    """

    __slots__ = ("indices",)

    def __init__(self, indices: list[int]) -> None:
        self.indices = indices

    @classmethod
    def full(cls, length: int) -> "SelectionVector":
        """Every row of a batch of ``length`` rows."""
        return cls(list(range(length)))

    def __len__(self) -> int:
        return len(self.indices)

    def __iter__(self) -> Iterator[int]:
        return iter(self.indices)

    def __bool__(self) -> bool:
        return bool(self.indices)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, SelectionVector):
            return self.indices == other.indices
        return NotImplemented

    def complement(self, length: int) -> "SelectionVector":
        """Rows of a ``length``-row batch *not* in this selection."""
        member = bytearray(length)
        for i in self.indices:
            member[i] = 1
        return SelectionVector([i for i in range(length) if not member[i]])

    def __repr__(self) -> str:
        return f"SelectionVector({self.indices!r})"


#: Sentinel distinguishing "field absent" from a stored ``None`` when a
#: column is materialized with :meth:`ColumnBatch.column` (which maps
#: absent fields to ``None``, matching ``Record.get``).
_ABSENT = object()


class ColumnBatch:
    """A batch of records with lazily materialized per-field columns.

    ``from_records`` is zero-copy: the batch aliases the caller's
    sequence and only builds a column (one list per field) the first
    time a kernel asks for it; columns are cached for the batch's
    lifetime, so a multi-clause predicate touches each field's values
    exactly once.  Batches are treated as immutable once built.
    """

    __slots__ = ("_records", "_columns", "_length", "_key_field")

    def __init__(self) -> None:  # use the classmethod constructors
        self._records: Sequence[Record] | None = None
        self._columns: dict[Any, list] = {}
        self._length = 0
        self._key_field: str | None = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_records(cls, records: Sequence[Record]) -> "ColumnBatch":
        """Wrap an existing record sequence without copying it."""
        batch = cls()
        batch._records = records
        batch._length = len(records)
        return batch

    @classmethod
    def from_columns(
        cls,
        columns: dict[str, list],
        key_field: str | None = None,
    ) -> "ColumnBatch":
        """Build from per-field value lists (all the same length).

        ``key_field`` names the column holding each row's record key;
        it is required only if :meth:`record_at` / :meth:`to_records`
        will be called on this batch.
        """
        lengths = {len(col) for col in columns.values()}
        if len(lengths) > 1:
            raise ValueError(f"ragged columns: lengths {sorted(lengths)}")
        batch = cls()
        batch._columns = {field: list(col) for field, col in columns.items()}
        batch._length = lengths.pop() if lengths else 0
        batch._key_field = key_field
        return batch

    # ------------------------------------------------------------------
    # shape
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._length

    def __bool__(self) -> bool:
        return self._length > 0

    @property
    def fields(self) -> tuple[str, ...]:
        """Fields with a materialized or materializable column."""
        if self._records is not None:
            seen: dict[str, None] = {}
            for record in self._records:
                for field in record.values:
                    seen[field] = None
            return tuple(seen)
        return tuple(f for f in self._columns if isinstance(f, str))

    # ------------------------------------------------------------------
    # column access
    # ------------------------------------------------------------------
    def column(self, field: str) -> list:
        """The field's values, row-aligned (``None`` where absent).

        Built once per batch and cached; kernels index the returned
        list directly (it must not be mutated).
        """
        col = self._columns.get(field)
        if col is None:
            if self._records is None:
                raise KeyError(f"no column {field!r} in this batch")
            # r._values is the record's mapping slot; going through it
            # directly keeps the build one C dict.get per row instead
            # of a Python-level Record.get frame per row.
            col = [r._values.get(field) for r in self._records]
            self._columns[field] = col
        return col

    def presence(self, field: str) -> list[bool]:
        """Row-aligned ``field in record.values`` flags.

        Distinguishes an absent field from a stored ``None`` (the
        whole-field t-lock test needs presence, not value).
        """
        cache_key = (_ABSENT, field)
        col = self._columns.get(cache_key)
        if col is None:
            if self._records is not None:
                col = [field in r._values for r in self._records]
            else:
                present = field in self._columns
                col = [present] * self._length
            self._columns[cache_key] = col
        return col

    def pack_fixed(self, field: str) -> array | None:
        """Pack an all-``int`` column into an ``array('q')``.

        Returns ``None`` when any value does not fit a signed 64-bit
        integer (floats, strings, ``None`` holes, big ints) — the
        caller then falls back to the plain list column.  The packed
        array's ``memoryview`` slices share the buffer, so fixed-width
        post-processing can sub-range rows without copying.
        """
        try:
            return array("q", self.column(field))
        except (TypeError, OverflowError):
            return None

    # ------------------------------------------------------------------
    # row access
    # ------------------------------------------------------------------
    def record_at(self, index: int) -> Record:
        """The row as a :class:`Record` (zero-copy when record-backed)."""
        if self._records is not None:
            return self._records[index]
        return self._build_record(index)

    def to_records(self) -> Sequence[Record]:
        """All rows as records.

        Record-backed batches return the original sequence unchanged;
        column-backed batches build records once (requires
        ``key_field``).
        """
        if self._records is not None:
            return self._records
        records = [self._build_record(i) for i in range(self._length)]
        self._records = records
        return records

    def take(self, selection: SelectionVector) -> list[Record]:
        """Gather the selected rows as a record list (order-preserving)."""
        if self._records is not None:
            records = self._records
            return [records[i] for i in selection.indices]
        return [self._build_record(i) for i in selection.indices]

    def slice(self, start: int, stop: int) -> "ColumnBatch":
        """A contiguous row-range view of this batch.

        Record-backed batches alias the same record objects; already
        materialized columns are sliced (packed fixed-width columns
        would share buffers via ``memoryview`` — list columns are
        Python object vectors, so the slice copies references only).
        """
        if self._records is not None:
            child = ColumnBatch.from_records(self._records[start:stop])
        else:
            child = ColumnBatch()
            child._length = max(0, min(stop, self._length) - max(start, 0))
            child._key_field = self._key_field
        for field, col in self._columns.items():
            child._columns[field] = col[start:stop]
        return child

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _build_record(self, index: int) -> Record:
        if self._key_field is None:
            raise ValueError(
                "this column-backed batch has no key_field; records "
                "cannot be reconstructed from it"
            )
        values = {
            field: col[index]
            for field, col in self._columns.items()
            if isinstance(field, str)
        }
        return Record(values[self._key_field], values)

    def __repr__(self) -> str:
        kind = "records" if self._records is not None else "columns"
        return f"ColumnBatch({self._length} rows, {kind}-backed)"
