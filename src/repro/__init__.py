"""repro — Hanson's view materialization performance analysis, rebuilt.

A from-scratch reproduction of Eric Hanson's *A Performance Analysis of
View Materialization Strategies* (UCB/ERL M86/98, SIGMOD 1987):

* :mod:`repro.core` — the paper's analytic cost model: parameters, the
  Yao function, the Model 1/2/3 cost formulas, a strategy advisor,
  region maps and crossover finding.
* :mod:`repro.storage` / :mod:`repro.hr` / :mod:`repro.views` /
  :mod:`repro.maintenance` / :mod:`repro.engine` — a simulated storage
  engine that *executes* query modification, immediate and deferred
  view maintenance and counts the same I/O/CPU events the formulas
  price.
* :mod:`repro.workload` — the paper's workload shapes, runnable.
* :mod:`repro.experiments` — regeneration of every figure and table.

Quickstart::

    from repro import Parameters, ViewModel, recommend

    params = Parameters(f=0.2, f_v=0.05).with_update_probability(0.3)
    print(recommend(params, ViewModel.SELECT_PROJECT).describe())
"""

from .core import (
    PAPER_DEFAULTS,
    CostBreakdown,
    Parameters,
    Recommendation,
    Strategy,
    ViewModel,
    evaluate,
    find_crossover_p,
    recommend,
    yao,
)

__version__ = "1.0.0"

__all__ = [
    "CostBreakdown",
    "PAPER_DEFAULTS",
    "Parameters",
    "Recommendation",
    "Strategy",
    "ViewModel",
    "__version__",
    "evaluate",
    "find_crossover_p",
    "recommend",
    "yao",
]
