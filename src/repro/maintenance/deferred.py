"""Deferred view maintenance: the paper's proposal (Section 2.2).

Base updates accumulate in the relation's hypothetical-relation ``AD``
file; the stored view is refreshed *just before data is retrieved from
it* by computing the net change sets and running the differential
update once for the whole batch.  Screening happens at update time
(tuples entering AD get markers), so a refresh applies the predicate to
already-screened tuples without paying ``c1`` again.
"""

from __future__ import annotations

from typing import Any

from repro.core.strategies import Strategy
from repro.engine.transaction import Transaction
from repro.hr.differential import HypotheticalRelation
from repro.views.definition import AggregateView, JoinView, SelectProjectView, ViewTuple
from repro.views.delta import DeltaSet
from repro.views.matview import AggregateStateStore, MaterializedView
from .base import MaintenanceStrategy
from .refresh import refresh_aggregate, refresh_select_project
from .screening import TwoStageScreen

__all__ = [
    "DeferredCoordinator",
    "DeferredSelectProject",
    "DeferredJoin",
    "DeferredAggregate",
]

_UNBOUNDED_LO = float("-inf")
_UNBOUNDED_HI = float("inf")


class DeferredCoordinator:
    """Shared refresh for all deferred views over one relation.

    Section 4: "In cases where more than one materialized view draws
    data from the same hypothetical relation, it may be worthwhile to
    refresh all the views whenever it is necessary to read the contents
    of the A and D sets ... since this would eliminate the need to read
    the hypothetical database again."  The coordinator does exactly
    that — one ``net_changes`` read feeds every registered view, then
    the AD file is folded down once.  It is also what makes multiple
    deferred views on one relation *correct*: a per-view reset would
    starve the siblings of the batched changes.
    """

    def __init__(self, relation: HypotheticalRelation) -> None:
        self.relation = relation
        self._views: list["_DeferredBase"] = []
        #: Durability hook: called (when set) just before a fold that
        #: actually installs pending changes, so the write-ahead log can
        #: journal the net-change install (:mod:`repro.durability`).
        self.on_refresh: Any = None
        #: Net-delta computations this coordinator has performed.  One
        #: refresh epoch bumps this exactly once however many sibling
        #: views it feeds — the shared-delta invariant the planner
        #: tests assert.
        self.net_computes = 0

    def register(self, view: "_DeferredBase") -> None:
        """Add a view over this coordinator's relation."""
        if view.relation is not self.relation:
            raise ValueError(
                f"view {view.view_name!r} is not over this coordinator's relation"
            )
        self._views.append(view)

    @property
    def views(self) -> tuple["_DeferredBase", ...]:
        return tuple(self._views)

    def deregister(self, view: "_DeferredBase") -> None:
        """Remove a view (catalog drop); the AD backlog stays for the
        remaining siblings."""
        if view in self._views:
            self._views.remove(view)

    def compute_net(self) -> DeltaSet:
        """One AD read producing the relation's net change set.

        This is the expensive half of a refresh (the paper's
        ``C_ADread``); :meth:`install` fans the result out, so the read
        happens once per refresh epoch regardless of sibling count.
        """
        self.net_computes += 1
        return self.relation.net_changes()

    def install(self, net: DeltaSet) -> None:
        """Fan one computed net delta out to every view, then fold.

        The durability hook fires before any page is written (the
        write-ahead discipline): replaying the journaled
        ``net_install`` reproduces the whole fold.
        """
        if self.on_refresh is not None and self.relation.ad_entry_count() > 0:
            self.on_refresh()
        for view in self._views:
            view.apply_net(net)
        self.relation.reset(net)

    def refresh_all(self) -> None:
        """Read AD once, refresh every registered view, reset the HR."""
        self.install(self.compute_net())


class _DeferredBase(MaintenanceStrategy):
    """Shared screening/refresh plumbing for deferred variants."""

    strategy = Strategy.DEFERRED

    def __init__(self, definition, relation: HypotheticalRelation) -> None:
        if not isinstance(relation, HypotheticalRelation):
            raise TypeError(
                "deferred maintenance requires a HypotheticalRelation "
                f"(got {type(relation).__name__}); create the relation with "
                "kind='hypothetical'"
            )
        self.definition = definition
        self.relation = relation
        self.screen = TwoStageScreen(
            definition.predicate,
            relation.meter,
            view_fields_read=definition.fields_read(),
        )
        #: Markers: identities of tuples that passed screening at
        #: update time.  Mirrors the paper's per-tuple view markers.
        self._markers: set = set()
        self.refresh_count = 0
        #: Every deferred view belongs to a coordinator; standalone
        #: construction gets a private one.
        self.coordinator = DeferredCoordinator(relation)
        self.coordinator.register(self)

    @property
    def view_name(self) -> str:
        return self.definition.name

    def on_transaction(self, txn: Transaction, delta: DeltaSet) -> None:
        """Screen incoming/deleted tuples and mark the survivors.

        The AD writes themselves were already performed (and charged)
        by the hypothetical relation when the database executed the
        transaction's operations.
        """
        if self.screen.transaction_is_riu(txn.written_fields()):
            return
        for record in self.screen.screen_many(list(delta.inserted) + list(delta.deleted)):
            self._markers.add(record)

    def join_coordinator(self, coordinator: DeferredCoordinator) -> None:
        """Move this view into a shared coordinator (database-managed)."""
        self.coordinator._views.remove(self)
        self.coordinator = coordinator
        coordinator.register(self)

    def refresh(self) -> None:
        """Batch-apply accumulated changes to every sibling view, then
        fold the AD file down (one shared AD read, per Section 4)."""
        self.coordinator.refresh_all()

    def _marked(self, net: DeltaSet) -> tuple[list, list]:
        marked_ins = [r for r in net.inserted if r in self._markers]
        marked_del = [r for r in net.deleted if r in self._markers]
        return marked_ins, marked_del

    def apply_net(self, net: DeltaSet) -> None:
        """Apply one already-read net delta to this view's stored copy."""
        marked_ins, marked_del = self._marked(net)
        self._apply_marked(marked_ins, marked_del)
        self._markers.clear()
        self.refresh_count += 1

    def _apply_marked(self, marked_ins: list, marked_del: list) -> None:
        raise NotImplementedError


class DeferredSelectProject(_DeferredBase):
    """Model 1 deferred maintenance over a duplicate-counted copy."""

    def __init__(
        self,
        definition: SelectProjectView,
        relation: HypotheticalRelation,
        matview: MaterializedView,
    ) -> None:
        super().__init__(definition, relation)
        self.matview = matview

    def _apply_marked(self, marked_ins: list, marked_del: list) -> None:
        if marked_ins or marked_del:
            refresh_select_project(self.definition, self.matview, marked_ins, marked_del)

    def query(self, lo: Any = None, hi: Any = None) -> list[ViewTuple]:
        self.refresh()
        lo = _UNBOUNDED_LO if lo is None else lo
        hi = _UNBOUNDED_HI if hi is None else hi
        result = self.matview.read_range(lo, hi)
        self.relation.meter.record_screen(len(result))
        return result


class DeferredJoin(_DeferredBase):
    """Model 2 deferred maintenance, one- or two-sided.

    With a plain hashed inner relation this is the paper's Model 2
    (``R2`` never updated): only outer-side deltas are deferred and
    applied.  Give the inner relation its own hypothetical storage
    (``kind='hashed_hypothetical'``) and inner updates defer too; the
    refresh then applies the telescoped two-sided differential update

        ΔV = Δ1 × R2_old  +  R1_new × Δ2

    — outer deltas joined against the *pre-batch* inner state (its base
    file), inner deltas joined against the *post-batch* outer state
    (HR reads see pending changes) — and folds both AD files down.
    """

    def __init__(
        self,
        definition: JoinView,
        relation: HypotheticalRelation,
        inner,
        matview: MaterializedView,
    ) -> None:
        super().__init__(definition, relation)
        self.inner = inner
        self.matview = matview
        #: join value -> outer keys, kept current with every outer
        #: transaction (in-memory, like a resident secondary index).
        self._outer_by_join: dict = {}
        for record in relation.base.records_snapshot():
            self._outer_by_join.setdefault(
                record[definition.join_field], set()
            ).add(record.key)

    def _inner_is_deferred(self) -> bool:
        from repro.hr.hashed import HashedHypotheticalRelation

        return isinstance(self.inner, HashedHypotheticalRelation)

    def on_transaction(self, txn: Transaction, delta: DeltaSet) -> None:
        if txn.relation == self.definition.inner:
            if not self._inner_is_deferred():
                raise NotImplementedError(
                    "this deferred join's inner relation is plain hashed "
                    "storage; create it with kind='hashed_hypothetical' to "
                    "defer inner updates, or use Strategy.IMMEDIATE"
                )
            # Inner deltas sit in the inner AD file until refresh; the
            # view predicate screens outer tuples only, so there is no
            # per-tuple screening work here.
            return
        self._track_outer(delta)
        super().on_transaction(txn, delta)

    def _track_outer(self, delta: DeltaSet) -> None:
        field = self.definition.join_field
        for record in delta.deleted:
            keys = self._outer_by_join.get(record[field])
            if keys is not None:
                keys.discard(record.key)
                if not keys:
                    del self._outer_by_join[record[field]]
        for record in delta.inserted:
            self._outer_by_join.setdefault(record[field], set()).add(record.key)

    def _apply_marked(self, marked_ins: list, marked_del: list) -> None:
        from repro.views.delta import ChangeSet

        changes = ChangeSet()
        meter = self.relation.meter
        # Term 1: outer deltas against the pre-batch inner state.
        try:
            for record, sign in (
                [(r, +1) for r in marked_ins] + [(r, -1) for r in marked_del]
            ):
                join_value = record[self.definition.join_field]
                if self._inner_is_deferred():
                    partners = self.inner.probe_base(join_value)
                else:
                    partners = self.inner.probe_pinned(join_value)
                for inner_record in partners:
                    meter.record_screen()
                    vt = self.definition.combine(record, inner_record)
                    if sign > 0:
                        changes.insert(vt)
                    else:
                        changes.delete(vt)
        finally:
            if not self._inner_is_deferred():
                self.inner.pool.unpin_all()
        # Term 2: inner deltas against the post-batch outer state.
        if self._inner_is_deferred():
            inner_net = self.inner.net_changes()  # reads the inner AD
            for inner_record, sign in (
                [(r, +1) for r in inner_net.inserted]
                + [(r, -1) for r in inner_net.deleted]
            ):
                join_value = inner_record[self.definition.join_field]
                for outer_key in sorted(self._outer_by_join.get(join_value, ())):
                    outer = self.relation.read_by_key(outer_key)
                    if outer is None:
                        continue
                    meter.record_screen()
                    if not self.definition.predicate.matches(outer):
                        continue
                    vt = self.definition.combine(outer, inner_record)
                    if sign > 0:
                        changes.insert(vt)
                    else:
                        changes.delete(vt)
            self.inner.reset(inner_net)
        if changes:
            self.matview.apply_changes(changes)

    def query(self, lo: Any = None, hi: Any = None) -> list[ViewTuple]:
        self.refresh()
        lo = _UNBOUNDED_LO if lo is None else lo
        hi = _UNBOUNDED_HI if hi is None else hi
        result = self.matview.read_range(lo, hi)
        self.relation.meter.record_screen(len(result))
        return result


class DeferredAggregate(_DeferredBase):
    """Model 3 deferred maintenance of a one-page aggregate state."""

    def __init__(
        self,
        definition: AggregateView,
        relation: HypotheticalRelation,
        store: AggregateStateStore,
    ) -> None:
        super().__init__(definition, relation)
        self.store = store

    def _apply_marked(self, marked_ins: list, marked_del: list) -> None:
        refresh_aggregate(self.definition, self.store, marked_ins, marked_del)

    def query(self, lo: Any = None, hi: Any = None) -> Any:
        self.refresh()
        return self.store.value()
