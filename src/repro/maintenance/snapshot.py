"""Database snapshots: periodically rebuilt stored copies.

The introduction's third materialization mechanism (Adiba & Lindsay
1980, Lindsay et al. 1986): a stored copy of a single-relation
selection-projection, refreshed by *complete recomputation* every
``refresh_every`` queries, and serving possibly **stale** answers in
between.  Updates cost nothing (snapshots ignore them entirely); the
trade is staleness plus the periodic rebuild scan.

Cost model counterpart: :func:`repro.core.policies.analyze_snapshot`.
"""

from __future__ import annotations

from typing import Any

from repro.core.strategies import Strategy
from repro.engine import executor
from repro.engine.transaction import Transaction
from repro.hr.differential import ClusteredRelation
from repro.views.definition import SelectProjectView, ViewTuple
from repro.views.delta import DeltaSet
from repro.views.matview import MaterializedView
from .base import MaintenanceStrategy

__all__ = ["SnapshotSelectProject", "RecomputeOnChangeSelectProject"]

_UNBOUNDED_LO = float("-inf")
_UNBOUNDED_HI = float("inf")


class SnapshotSelectProject(MaintenanceStrategy):
    """A Model 1 snapshot refreshed every ``refresh_every`` queries.

    ``refresh_every=1`` degenerates to always-fresh (rebuild before
    every read — the Buneman-Clemons fallback of recomputing whenever
    the view may have changed); larger periods amortize the rebuild at
    the price of staleness.
    """

    strategy = Strategy.SNAPSHOT

    def __init__(
        self,
        definition: SelectProjectView,
        relation: ClusteredRelation,
        matview: MaterializedView,
        refresh_every: int = 10,
    ) -> None:
        if refresh_every < 1:
            raise ValueError(f"refresh_every must be >= 1, got {refresh_every}")
        if relation.clustered_on != definition.view_key:
            raise ValueError(
                "snapshot rebuilds use a clustered scan; relation must be "
                f"clustered on the view key {definition.view_key!r}"
            )
        self.definition = definition
        self.relation = relation
        self.matview = matview
        self.refresh_every = refresh_every
        self.queries_since_rebuild = 0
        self.rebuild_count = 0
        #: Updates committed since the last rebuild (staleness metric).
        self.stale_updates = 0

    @property
    def view_name(self) -> str:
        return self.definition.name

    def on_transaction(self, txn: Transaction, delta: DeltaSet) -> None:
        """Snapshots ignore updates — they only age."""
        self.stale_updates += len(delta)

    def rebuild(self) -> None:
        """Full recomputation: clustered scan of R, rewrite the copy."""
        intervals = [
            iv
            for iv in self.definition.predicate.intervals()
            if iv.field == self.relation.clustered_on
        ]
        meter = self.relation.meter
        if intervals:
            lo = min(iv.lo for iv in intervals)
            hi = max(iv.hi for iv in intervals)
            records = executor.clustered_scan(
                self.relation, lo, hi, self.definition.predicate, meter
            )
        else:
            records = executor.sequential_scan(
                self.relation, self.definition.predicate, meter
            )
        self.matview.rebuild([self.definition.project(r) for r in records])
        self.queries_since_rebuild = 0
        self.stale_updates = 0
        self.rebuild_count += 1

    def query(self, lo: Any = None, hi: Any = None) -> list[ViewTuple]:
        """Serve from the (possibly stale) copy; rebuild on schedule.

        The rebuild runs *before* the serving read when the period has
        elapsed, so query 1, 1+r, 1+2r, ... are fresh.
        """
        if self.queries_since_rebuild % self.refresh_every == 0:
            self.rebuild()
        self.queries_since_rebuild += 1
        lo = _UNBOUNDED_LO if lo is None else lo
        hi = _UNBOUNDED_HI if hi is None else hi
        result = self.matview.read_range(lo, hi)
        self.relation.meter.record_screen(len(result))
        return result


class RecomputeOnChangeSelectProject(SnapshotSelectProject):
    """Buneman & Clemons' scheme: the introduction's fourth algorithm.

    Each update command is analyzed *prior to execution*: if the system
    cannot rule out that it changes the view (the command is not a
    readily ignorable update), the stored copy is flagged stale and
    completely recomputed before the next read.  Unlike a periodic
    snapshot, answers are therefore always fresh; unlike incremental
    maintenance, a single relevant update forces a full rebuild.
    """

    strategy = Strategy.BC_RECOMPUTE

    def __init__(
        self,
        definition: SelectProjectView,
        relation: ClusteredRelation,
        matview: MaterializedView,
    ) -> None:
        super().__init__(definition, relation, matview, refresh_every=1)
        self._view_fields = definition.fields_read()
        self._stale = False
        #: Commands dismissed by the compile-time RIU analysis.
        self.riu_skips = 0

    def on_transaction(self, txn: Transaction, delta: DeltaSet) -> None:
        """Compile-time analysis only: no per-tuple work at all."""
        from repro.views.predicate import is_readily_ignorable

        written = txn.written_fields()
        if "*" not in written and is_readily_ignorable(written, self._view_fields):
            self.riu_skips += 1
            return
        self._stale = True
        self.stale_updates += len(delta)

    def query(self, lo: Any = None, hi: Any = None) -> list[ViewTuple]:
        """Rebuild first when any non-RIU command ran since last read."""
        if self._stale:
            self.rebuild()
            self._stale = False
        self.queries_since_rebuild = 1  # disable the periodic schedule
        lo = _UNBOUNDED_LO if lo is None else lo
        hi = _UNBOUNDED_HI if hi is None else hi
        result = self.matview.read_range(lo, hi)
        self.relation.meter.record_screen(len(result))
        return result
