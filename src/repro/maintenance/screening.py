"""Two-stage screening: rule indexing (t-locks) + satisfiability.

Section 1's screening pipeline, as assumed by the performance
analysis for both immediate and deferred maintenance:

* **Stage 1 — rule indexing** (Stonebraker 1986): the index intervals
  covered by the view predicate's clauses carry *t-locks*.  A modified
  tuple that disturbs no t-locked interval cannot affect the view and
  is rejected implicitly, at essentially no cost.
* **Stage 2 — satisfiability** (Blakeley 1986): tuples that break a
  t-lock are substituted into the view predicate; this CPU test costs
  ``c1`` and may still reject (stage 1 produces "false drops").

Additionally, :func:`repro.views.predicate.is_readily_ignorable`
implements Buneman & Clemons' per-*command* compile-time screen; the
:class:`TwoStageScreen` exposes it so a whole transaction can be
skipped before any per-tuple work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.storage.columnar import ColumnBatch, SelectionVector
from repro.storage.pager import CostMeter
from repro.storage.tuples import Record
from repro.views.predicate import Interval, Predicate, is_readily_ignorable

__all__ = ["TLockIndex", "TwoStageScreen", "ScreenStats"]


class TLockIndex:
    """Trigger-locked index intervals, grouped by field.

    A predicate with no indexable clause registers a *whole-field*
    lock, which conservatively routes every tuple to stage 2.
    """

    def __init__(self) -> None:
        self._intervals: dict[str, list[Interval]] = {}
        self._full_fields: set[str] = set()

    def lock_predicate(self, predicate: Predicate) -> None:
        """Place t-locks for all of a predicate's coverable clauses."""
        intervals = predicate.intervals()
        if not intervals:
            for field in predicate.fields_read() or {"*"}:
                self._full_fields.add(field)
            return
        for interval in intervals:
            self._intervals.setdefault(interval.field, []).append(interval)

    def breaks_lock(self, record: Record) -> bool:
        """Stage 1 test: does this tuple disturb any locked interval?"""
        if "*" in self._full_fields:
            return True
        for field in self._full_fields:
            if field in record.values:
                return True
        for field, intervals in self._intervals.items():
            value = record.get(field)
            if value is None:
                continue
            if any(interval.contains(value) for interval in intervals):
                return True
        return False

    def breaks_lock_batch(
        self, batch: ColumnBatch, selection: SelectionVector | None = None
    ) -> SelectionVector:
        """Stage 1 over a batch: rows that disturb some locked interval.

        Row-for-row equivalent to :meth:`breaks_lock`; evaluated as
        column passes that mark broken rows in a byte mask, testing
        each field only on rows no earlier field already broke.
        """
        indices = range(len(batch)) if selection is None else selection.indices
        if "*" in self._full_fields:
            return SelectionVector(list(indices))
        broke = bytearray(len(batch))
        for field in self._full_fields:
            present = batch.presence(field)
            for i in indices:
                if present[i]:
                    broke[i] = 1
        # Each interval pass skips rows an earlier field already broke
        # (the mask test is cheaper than rebuilding a pending list
        # between fields).
        for field, intervals in self._intervals.items():
            col = batch.column(field)
            if len(intervals) == 1:
                lo, hi = intervals[0].lo, intervals[0].hi
                for i in indices:
                    if not broke[i] and (v := col[i]) is not None and lo <= v <= hi:
                        broke[i] = 1
            else:
                for i in indices:
                    if broke[i]:
                        continue
                    v = col[i]
                    if v is not None and any(iv.contains(v) for iv in intervals):
                        broke[i] = 1
        return SelectionVector([i for i in indices if broke[i]])

    def interval_count(self) -> int:
        """Number of t-locked intervals currently registered."""
        return sum(len(v) for v in self._intervals.values())


@dataclass
class ScreenStats:
    """Counters for screening behaviour (used in tests and reports)."""

    stage1_rejected: int = 0
    stage2_tested: int = 0
    stage2_rejected: int = 0
    passed: int = 0


class TwoStageScreen:
    """Screens modified tuples against one view's predicate.

    ``screen`` returns True when the tuple must be used to refresh the
    view (the paper's "marker").  Stage 2 charges ``c1`` on the shared
    meter; stage 1 is free.
    """

    def __init__(
        self,
        predicate: Predicate,
        meter: CostMeter,
        view_fields_read: frozenset[str] | None = None,
    ) -> None:
        self.predicate = predicate
        self.meter = meter
        #: Fields the *whole view definition* reads (predicate +
        #: projection + join field); defaults to the predicate's own
        #: read set when the caller has no richer definition.
        self.view_fields_read = (
            view_fields_read if view_fields_read is not None else predicate.fields_read()
        )
        self.tlocks = TLockIndex()
        self.tlocks.lock_predicate(predicate)
        self.stats = ScreenStats()

    def screen(self, record: Record) -> bool:
        """Two-stage per-tuple test; True = tuple gets a view marker."""
        if not self.tlocks.breaks_lock(record):
            self.stats.stage1_rejected += 1
            return False
        self.meter.record_screen()
        self.stats.stage2_tested += 1
        if self.predicate.matches(record):
            self.stats.passed += 1
            return True
        self.stats.stage2_rejected += 1
        return False

    def screen_batch(self, batch: ColumnBatch | Iterable[Record]) -> list[Record]:
        """Screen a whole batch, returning the marked tuples.

        This is the engine's single batch-native screening entry point.
        Stage 1 runs as column passes (free, as per tuple); stage 2
        charges ``c1`` *per stage-2-tested row* in one bulk
        ``record_screen(n)`` — identical totals, and identical
        :class:`ScreenStats` counters, to screening each record with
        :meth:`screen` (the per-record method remains the executable
        specification, asserted by the property suite).
        """
        if not isinstance(batch, ColumnBatch):
            records = batch if isinstance(batch, (list, tuple)) else list(batch)
            batch = ColumnBatch.from_records(records)
        total = len(batch)
        if total == 0:
            return []
        broke = self.tlocks.breaks_lock_batch(batch)
        tested = len(broke.indices)
        self.stats.stage1_rejected += total - tested
        if tested == 0:
            return []
        self.meter.record_screen(tested)
        self.stats.stage2_tested += tested
        passed = self.predicate.matches_batch(batch, broke)
        self.stats.passed += len(passed.indices)
        self.stats.stage2_rejected += tested - len(passed.indices)
        return batch.take(passed)

    def screen_many(self, records: Iterable[Record]) -> list[Record]:
        """Screen a batch, returning the marked tuples (batch-native)."""
        return self.screen_batch(records)

    def transaction_is_riu(self, written_fields: Iterable[str]) -> bool:
        """Compile-time RIU check for a whole command.

        ``True`` means no tuple of the transaction can affect the view,
        so per-tuple screening is skipped entirely (Buneman-Clemons).
        A transaction writing the wildcard ``"*"`` (deletions of
        unknown tuples) is never readily ignorable.
        """
        fields = set(written_fields)
        if "*" in fields:
            return False
        return is_readily_ignorable(fields, self.view_fields_read)
