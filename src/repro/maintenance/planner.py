"""Shared-delta refresh planning: one net-change read per epoch.

Section 4 of the paper observes that when several materialized views
draw from one hypothetical relation, the refresh should read the AD
file *once* and feed every view from that single net change set.  The
:class:`~repro.maintenance.deferred.DeferredCoordinator` implements
the per-relation mechanics (``compute_net`` / ``install``); this
module adds the serving-layer planning around it:

* **grouping** — :meth:`SharedDeltaPlanner.groups` maps each source
  relation to the deferred views it feeds, so a refresh epoch touches
  each relation exactly once however many views (or concurrent
  requests) want it fresh;
* **coalescing** — concurrent queries hitting the same stale relation
  wait on the one in-flight refresh instead of stacking duplicate
  AD reads behind it.  A follower re-checks staleness after the leader
  finishes and becomes the new leader if the leader failed, so a
  faulted refresh never strands waiters on a stale copy;
* **epoch accounting** — ``epochs``, ``coalesced_waits`` and the
  coordinator's ``net_computes`` make the once-per-epoch invariant
  observable (and testable).

The planner performs engine work only through a caller-supplied
``run`` callable, so the server can wrap each refresh in its striped
locks, engine mutex, per-request cost metering and pacing without the
maintenance layer knowing any of those exist.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterable

from repro.hr.differential import HypotheticalRelation

__all__ = ["SharedDeltaPlanner"]

Runner = Callable[[Callable[[], None]], None]


def _run_inline(work: Callable[[], None]) -> None:
    work()


class SharedDeltaPlanner:
    """Group deferred views by relation; refresh each net once per epoch."""

    def __init__(self, database: Any) -> None:
        self.database = database
        self._mutex = threading.Lock()
        #: relation name -> completion event of the in-flight refresh.
        self._inflight: dict[str, threading.Event] = {}
        #: Refresh epochs actually executed (leader runs).
        self.epochs = 0
        #: Requests that waited on another request's in-flight refresh
        #: instead of starting their own.
        self.coalesced_waits = 0

    # ------------------------------------------------------------------
    # planning surface
    # ------------------------------------------------------------------
    def groups(self) -> dict[str, tuple[str, ...]]:
        """Source relation -> names of the deferred views it feeds."""
        grouped: dict[str, tuple[str, ...]] = {}
        for relation in self.database.deferred_relations():
            coordinator = self.database.deferred_coordinator(relation)
            if coordinator is not None and coordinator.views:
                grouped[relation] = tuple(v.view_name for v in coordinator.views)
        return grouped

    def pending(self, relation_name: str) -> int:
        """AD entries awaiting the next refresh epoch (no I/O)."""
        relation = self.database.relations.get(relation_name)
        if isinstance(relation, HypotheticalRelation):
            return relation.ad_entry_count()
        return 0

    # ------------------------------------------------------------------
    # refresh epochs
    # ------------------------------------------------------------------
    def refresh(self, relation_name: str, run: Runner | None = None) -> bool:
        """Bring one relation's deferred views current; returns whether
        this caller led a refresh epoch (False = coalesced or no-op).

        The leader computes the net change set once and installs it in
        every dependent view through the shared coordinator; followers
        arriving while that runs wait on the leader's completion, then
        re-check the backlog — if the leader failed (its exception
        propagates to *its* caller only), a follower takes over as the
        new leader rather than serving stale silently.
        """
        runner = run or _run_inline
        while True:
            with self._mutex:
                event = self._inflight.get(relation_name)
                if event is None:
                    event = threading.Event()
                    self._inflight[relation_name] = event
                    leading = True
                else:
                    leading = False
            if leading:
                try:
                    runner(lambda: self._refresh_now(relation_name))
                finally:
                    with self._mutex:
                        del self._inflight[relation_name]
                    event.set()
                return True
            with self._mutex:
                self.coalesced_waits += 1
            event.wait()
            # The leader finished (or failed).  Fresh now?  Then its
            # epoch covered this request too; otherwise loop and lead.
            if self.pending(relation_name) == 0:
                return False

    def refresh_all_stale(self, run: Runner | None = None) -> tuple[str, ...]:
        """One refresh epoch over every relation with a backlog."""
        refreshed = []
        for relation_name, _views in sorted(self.groups().items()):
            if self.pending(relation_name) > 0 and self.refresh(relation_name, run):
                refreshed.append(relation_name)
        return tuple(refreshed)

    def _refresh_now(self, relation_name: str) -> None:
        """The actual epoch: one net compute fanned out to all views."""
        coordinator = self.database.deferred_coordinator(relation_name)
        if coordinator is not None and coordinator.views:
            coordinator.refresh_all()
        else:
            # No deferred views (left) on the relation: fold directly.
            self.database.settle_relation(relation_name)
        self.database.pool.flush_all()
        self.epochs += 1
