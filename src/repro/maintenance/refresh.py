"""Shared refresh steps for immediate and deferred maintenance.

Both strategies apply the *same* differential update; they differ only
in when it runs (after every transaction vs before a query) and where
the delta lives (in memory vs the ``AD`` file).  These helpers take
already-screened ("marked") inserted/deleted base tuples and push the
resulting view changes into the stored copy.
"""

from __future__ import annotations

from typing import Sequence

from repro.engine.relations import HashedRelation
from repro.storage.pager import CostMeter
from repro.storage.tuples import Record
from repro.views.definition import AggregateView, JoinView, SelectProjectView
from repro.views.delta import ChangeSet
from repro.views.matview import AggregateStateStore, MaterializedView

__all__ = ["refresh_select_project", "refresh_join", "refresh_aggregate"]


def refresh_select_project(
    view: SelectProjectView,
    matview: MaterializedView,
    marked_inserted: Sequence[Record],
    marked_deleted: Sequence[Record],
) -> tuple[int, int]:
    """Apply marked base changes to a Model 1 view; returns (ins, del)."""
    changes = ChangeSet()
    for record in marked_inserted:
        changes.insert(view.project(record))
    for record in marked_deleted:
        changes.delete(view.project(record))
    return matview.apply_changes(changes)


def refresh_join(
    view: JoinView,
    inner: HashedRelation,
    matview: MaterializedView,
    marked_inserted: Sequence[Record],
    marked_deleted: Sequence[Record],
    meter: CostMeter,
    pin_inner: bool = True,
) -> tuple[int, int]:
    """Apply marked outer-relation changes to a Model 2 join view.

    Each marked tuple probes the inner hash file (``c2`` I/O, shared
    across the batch via pinning — the paper's "pages read for the
    first join stay in the buffer pool for the second") and each
    joining pair costs ``c1`` to match.  Inner-relation deltas are not
    supported here because the paper's Model 2 never updates ``R2``;
    the full two-sided algebra lives in :func:`repro.views.delta
    .join_changes`.
    """
    changes = ChangeSet()
    try:
        for record, sign in _signed(marked_inserted, marked_deleted):
            probe = (
                inner.probe_pinned(record[view.join_field])
                if pin_inner
                else inner.probe(record[view.join_field])
            )
            for inner_record in probe:
                meter.record_screen()  # c1 per matched pair
                if sign > 0:
                    changes.insert(view.combine(record, inner_record))
                else:
                    changes.delete(view.combine(record, inner_record))
    finally:
        if pin_inner:
            inner.pool.unpin_all()
    return matview.apply_changes(changes)


def refresh_aggregate(
    view: AggregateView,
    store: AggregateStateStore,
    marked_inserted: Sequence[Record],
    marked_deleted: Sequence[Record],
) -> bool:
    """Fold marked changes into a Model 3 state; True if a write happened."""
    entering = [r[view.field] for r in marked_inserted]
    leaving = [r[view.field] for r in marked_deleted]
    return store.apply(entering, leaving)


def _signed(
    inserted: Sequence[Record], deleted: Sequence[Record]
) -> list[tuple[Record, int]]:
    return [(r, +1) for r in inserted] + [(r, -1) for r in deleted]
