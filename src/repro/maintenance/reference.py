"""Tuple-at-a-time reference implementations of the batch hot paths.

The engine's hot loops are vectorized (`repro.storage.columnar`): the
screens, net-change builds, delta algebra and differential apply all
consume columnar batches.  This module keeps the original
record-at-a-time formulations as the *executable specification*:

* the hypothesis property suites assert that each batch kernel
  produces identical results, identical cost-meter totals and (for
  the stored view) byte-identical page layouts;
* the engine microbenchmark (``benchmarks/test_bench_engine.py``)
  times these against the batch kernels to report the speedup.

None of these functions sit on a production code path, and none of
them touch bookkeeping counters beyond what their storage calls charge
(`net_from_entries_serial` in particular does **not** bump an HR's
``net_reads`` — it is fed raw entries, not a relation).
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.hr.differential import ROLE_APPENDED, _ROLE_FIELD, _SEQ_FIELD
from repro.storage.tuples import Record
from repro.views.definition import AggregateView, SelectProjectView
from repro.views.delta import ChangeSet, DeltaSet
from repro.views.matview import MaterializedView
from .screening import TwoStageScreen

__all__ = [
    "screen_serial",
    "net_from_entries_serial",
    "apply_changes_serial",
    "select_project_changes_serial",
    "aggregate_changes_serial",
]


def screen_serial(screen: TwoStageScreen, records: Iterable[Record]) -> list[Record]:
    """Per-record two-stage screening (what ``screen_batch`` vectorizes)."""
    return [r for r in records if screen.screen(r)]


def net_from_entries_serial(relation: str, entries: Iterable[Record]) -> DeltaSet:
    """Per-entry net-change toggling over sequence-sorted AD entries.

    The spec for ``repro.hr.differential._net_from_entries``: unwrap
    every entry into a :class:`Record` and feed it to the delta set's
    insert/delete toggling in arrival order.
    """
    delta = DeltaSet(relation)
    for entry in sorted(entries, key=lambda e: e[_SEQ_FIELD]):
        record = Record(entry["_k"], dict(entry["_values"]))
        if entry[_ROLE_FIELD] == ROLE_APPENDED:
            delta.add_insert(record)
        else:
            delta.add_delete(record)
    return delta


def apply_changes_serial(matview: MaterializedView, changes: ChangeSet) -> tuple[int, int]:
    """Apply a change set one tuple at a time (find + delete + reinsert).

    The spec for the batch ``MaterializedView.apply_changes``: same
    iteration order, same duplicate-count arithmetic, via the
    per-tuple ``insert_tuple`` / ``delete_tuple`` operations.
    """
    inserted = deleted = 0
    for vt, signed in changes.items():
        if signed > 0:
            matview.insert_tuple(vt, signed)
            inserted += signed
        else:
            matview.delete_tuple(vt, -signed)
            deleted += -signed
    return inserted, deleted


def select_project_changes_serial(
    view: SelectProjectView, delta: DeltaSet
) -> ChangeSet:
    """Per-record Model 1 delta projection (spec for the batch version)."""
    changes = ChangeSet()
    for record in delta.inserted:
        if view.predicate.matches(record):
            changes.insert(view.project(record))
    for record in delta.deleted:
        if view.predicate.matches(record):
            changes.delete(view.project(record))
    return changes


def aggregate_changes_serial(
    view: AggregateView, delta: DeltaSet
) -> tuple[list[Any], list[Any]]:
    """Per-record Model 3 entering/leaving values (spec for the batch one)."""
    entering = [r[view.field] for r in delta.inserted if view.predicate.matches(r)]
    leaving = [r[view.field] for r in delta.deleted if view.predicate.matches(r)]
    return entering, leaving
