"""Query modification: no stored copy; rewrite queries on base relations.

The conventional approach (Stonebraker 1975).  A transaction needs no
view work at all; every view query is answered by one of the paper's
plans (clustered / unclustered / sequential scan for Model 1, nested
loops for Model 2, clustered recomputation for Model 3 aggregates).
"""

from __future__ import annotations

from typing import Any

from repro.core.strategies import Strategy
from repro.engine import executor
from repro.engine.relations import HashedRelation
from repro.engine.transaction import Transaction
from repro.hr.differential import ClusteredRelation
from repro.views.definition import AggregateView, JoinView, SelectProjectView, ViewTuple
from repro.views.delta import DeltaSet
from .base import MaintenanceStrategy

__all__ = [
    "QueryModificationSelectProject",
    "QueryModificationJoin",
    "QueryModificationAggregate",
]

_PLAN_STRATEGIES = {
    "clustered": Strategy.QM_CLUSTERED,
    "unclustered": Strategy.QM_UNCLUSTERED,
    "sequential": Strategy.QM_SEQUENTIAL,
}

_UNBOUNDED_LO = float("-inf")
_UNBOUNDED_HI = float("inf")


def _bounds(lo: Any, hi: Any) -> tuple[Any, Any]:
    return (
        _UNBOUNDED_LO if lo is None else lo,
        _UNBOUNDED_HI if hi is None else hi,
    )


class QueryModificationSelectProject(MaintenanceStrategy):
    """Model 1 query modification with a selectable access plan."""

    def __init__(
        self,
        definition: SelectProjectView,
        relation: ClusteredRelation,
        plan: str = "clustered",
        secondary_index: executor.SecondaryIndex | None = None,
    ) -> None:
        if plan not in _PLAN_STRATEGIES:
            raise ValueError(
                f"unknown plan {plan!r}; expected one of {sorted(_PLAN_STRATEGIES)}"
            )
        if plan == "clustered" and relation.clustered_on != definition.view_key:
            raise ValueError(
                "clustered plan requires the relation clustered on the view key "
                f"({definition.view_key!r}), got {relation.clustered_on!r}"
            )
        if plan == "unclustered" and secondary_index is None:
            raise ValueError("unclustered plan requires a secondary index")
        self.definition = definition
        self.relation = relation
        self.plan = plan
        self.secondary_index = secondary_index
        self.strategy = _PLAN_STRATEGIES[plan]

    @property
    def view_name(self) -> str:
        return self.definition.name

    def on_transaction(self, txn: Transaction, delta: DeltaSet) -> None:
        """Nothing to do: there is no stored copy."""

    def query(self, lo: Any = None, hi: Any = None) -> list[ViewTuple]:
        lo, hi = _bounds(lo, hi)
        meter = self.relation.meter
        if self.plan == "clustered":
            records = executor.clustered_scan(
                self.relation, lo, hi, self.definition.predicate, meter
            )
        elif self.plan == "unclustered":
            assert self.secondary_index is not None
            records = executor.unclustered_scan(
                self.relation, self.secondary_index, lo, hi,
                self.definition.predicate, meter,
            )
        else:
            records = [
                r
                for r in executor.sequential_scan(
                    self.relation, self.definition.predicate, meter
                )
                if lo <= r[self.definition.view_key] <= hi
            ]
        return [self.definition.project(r) for r in records]


class QueryModificationJoin(MaintenanceStrategy):
    """Model 2 query modification: nested loops over R1 (outer) and R2."""

    strategy = Strategy.QM_LOOPJOIN

    def __init__(
        self,
        definition: JoinView,
        outer: ClusteredRelation,
        inner: HashedRelation,
    ) -> None:
        if outer.clustered_on != definition.view_key:
            raise ValueError(
                "loopjoin expects the outer relation clustered on the view key "
                f"({definition.view_key!r}), got {outer.clustered_on!r}"
            )
        if inner.hashed_on != definition.join_field:
            raise ValueError(
                "loopjoin expects the inner relation hashed on the join field "
                f"({definition.join_field!r}), got {inner.hashed_on!r}"
            )
        self.definition = definition
        self.outer = outer
        self.inner = inner

    @property
    def view_name(self) -> str:
        return self.definition.name

    def on_transaction(self, txn: Transaction, delta: DeltaSet) -> None:
        """Nothing to do: there is no stored copy."""

    def query(self, lo: Any = None, hi: Any = None) -> list[ViewTuple]:
        lo, hi = _bounds(lo, hi)
        return executor.nested_loop_join(
            self.definition, self.outer, self.inner.file, lo, hi, self.outer.meter
        )


class QueryModificationAggregate(MaintenanceStrategy):
    """Model 3 recomputation: clustered scan of the selected set."""

    strategy = Strategy.QM_CLUSTERED

    def __init__(self, definition: AggregateView, relation: ClusteredRelation) -> None:
        self.definition = definition
        self.relation = relation

    @property
    def view_name(self) -> str:
        return self.definition.name

    def on_transaction(self, txn: Transaction, delta: DeltaSet) -> None:
        """Nothing to do: there is no stored state."""

    def query(self, lo: Any = None, hi: Any = None) -> Any:
        """Recompute the aggregate from scratch (ignores the range).

        Scans the predicate's clustered interval when one exists (the
        paper's clustered-scan recomputation), else the whole relation.
        """
        intervals = self.definition.predicate.intervals()
        meter = self.relation.meter
        field = self.relation.clustered_on
        usable = [iv for iv in intervals if iv.field == field]
        if usable:
            scan_lo = min(iv.lo for iv in usable)
            scan_hi = max(iv.hi for iv in usable)
            records = executor.clustered_scan(
                self.relation, scan_lo, scan_hi, self.definition.predicate, meter
            )
        else:
            records = executor.sequential_scan(
                self.relation, self.definition.predicate, meter
            )
        return self.definition.evaluate(records)
