"""Immediate view maintenance: refresh after every transaction.

Blakeley et al.'s scheme (Section 2.1): the transaction's net A/D sets
are kept in an in-memory data structure (``c3`` per marked tuple to
maintain and reset, the paper's ``C_overhead``), screened through the
two-stage test, and the surviving tuples update the stored view before
the next operation runs.
"""

from __future__ import annotations

from typing import Any

from repro.core.strategies import Strategy
from repro.engine.relations import HashedRelation
from repro.engine.transaction import Transaction
from repro.hr.differential import ClusteredRelation
from repro.views.definition import AggregateView, JoinView, SelectProjectView, ViewTuple
from repro.views.delta import DeltaSet
from repro.views.matview import AggregateStateStore, MaterializedView
from .base import MaintenanceStrategy
from .refresh import refresh_aggregate, refresh_join, refresh_select_project
from .screening import TwoStageScreen

__all__ = ["ImmediateSelectProject", "ImmediateJoin", "ImmediateAggregate"]

_UNBOUNDED_LO = float("-inf")
_UNBOUNDED_HI = float("inf")


class _ImmediateBase(MaintenanceStrategy):
    """Shared screening + A/D-set bookkeeping for immediate variants."""

    strategy = Strategy.IMMEDIATE

    def __init__(self, definition, relation: ClusteredRelation) -> None:
        self.definition = definition
        self.relation = relation
        self.screen = TwoStageScreen(
            definition.predicate,
            relation.meter,
            view_fields_read=definition.fields_read(),
        )
        self.refresh_count = 0

    @property
    def view_name(self) -> str:
        return self.definition.name

    def _marked(self, txn: Transaction, delta: DeltaSet):
        """Screen the transaction's delta; returns (ins, del) or None.

        ``None`` means the whole command was readily ignorable.  Each
        marked tuple costs ``c3`` to place in / clear from the
        in-memory A and D sets (``C_overhead``).
        """
        if self.screen.transaction_is_riu(txn.written_fields()):
            return None
        marked_ins = self.screen.screen_many(delta.inserted)
        marked_del = self.screen.screen_many(delta.deleted)
        self.relation.meter.record_ad_op(len(marked_ins) + len(marked_del))
        return marked_ins, marked_del


class ImmediateSelectProject(_ImmediateBase):
    """Model 1 immediate maintenance over a duplicate-counted copy."""

    def __init__(
        self,
        definition: SelectProjectView,
        relation: ClusteredRelation,
        matview: MaterializedView,
    ) -> None:
        super().__init__(definition, relation)
        self.matview = matview

    def on_transaction(self, txn: Transaction, delta: DeltaSet) -> None:
        marked = self._marked(txn, delta)
        if marked is None:
            return
        marked_ins, marked_del = marked
        if marked_ins or marked_del:
            refresh_select_project(self.definition, self.matview, marked_ins, marked_del)
            self.refresh_count += 1

    def query(self, lo: Any = None, hi: Any = None) -> list[ViewTuple]:
        lo = _UNBOUNDED_LO if lo is None else lo
        hi = _UNBOUNDED_HI if hi is None else hi
        result = self.matview.read_range(lo, hi)
        self.relation.meter.record_screen(len(result))  # c1 per tuple read
        return result


class ImmediateJoin(_ImmediateBase):
    """Model 2 immediate maintenance, for updates on *either* side.

    The paper's Model 2 never updates ``R2``; this implementation also
    handles inner-side transactions (the delta algebra's two-sided
    case): an in-memory join index maps join values to outer keys, and
    each changed inner tuple fetches its joining outer tuples at one
    I/O apiece, mirroring the outer side's hash probes.
    """

    def __init__(
        self,
        definition: JoinView,
        relation: ClusteredRelation,
        inner: HashedRelation,
        matview: MaterializedView,
    ) -> None:
        super().__init__(definition, relation)
        self.inner = inner
        self.matview = matview
        self._outer_by_join: dict = {}
        for record in relation.records_snapshot():
            self._outer_by_join.setdefault(record[definition.join_field], set()).add(
                record.key
            )

    def on_transaction(self, txn: Transaction, delta: DeltaSet) -> None:
        if txn.relation == self.definition.inner:
            self._on_inner_delta(delta)
            return
        self._track_outer(delta)
        marked = self._marked(txn, delta)
        if marked is None:
            return
        marked_ins, marked_del = marked
        if marked_ins or marked_del:
            refresh_join(
                self.definition,
                self.inner,
                self.matview,
                marked_ins,
                marked_del,
                self.relation.meter,
            )
            self.refresh_count += 1

    def _track_outer(self, delta: DeltaSet) -> None:
        """Keep the join index current (in-memory, like a resident
        secondary index; no I/O charged)."""
        field = self.definition.join_field
        for record in delta.deleted:
            keys = self._outer_by_join.get(record[field])
            if keys is not None:
                keys.discard(record.key)
                if not keys:
                    del self._outer_by_join[record[field]]
        for record in delta.inserted:
            self._outer_by_join.setdefault(record[field], set()).add(record.key)

    def _on_inner_delta(self, delta: DeltaSet) -> None:
        """Apply inner-relation changes to the stored join view."""
        from repro.views.delta import ChangeSet

        changes = ChangeSet()
        meter = self.relation.meter
        touched = False
        for inner_record, sign in (
            [(r, +1) for r in delta.inserted] + [(r, -1) for r in delta.deleted]
        ):
            join_value = inner_record[self.definition.join_field]
            for outer_key in sorted(self._outer_by_join.get(join_value, ())):
                outer = self.relation.read_by_key(outer_key)  # one I/O each
                if outer is None:
                    continue
                meter.record_screen()  # c1 predicate test per pair
                if not self.definition.predicate.matches(outer):
                    continue
                vt = self.definition.combine(outer, inner_record)
                if sign > 0:
                    changes.insert(vt)
                else:
                    changes.delete(vt)
                touched = True
        if touched:
            self.matview.apply_changes(changes)
            self.refresh_count += 1

    def query(self, lo: Any = None, hi: Any = None) -> list[ViewTuple]:
        lo = _UNBOUNDED_LO if lo is None else lo
        hi = _UNBOUNDED_HI if hi is None else hi
        result = self.matview.read_range(lo, hi)
        self.relation.meter.record_screen(len(result))
        return result


class ImmediateAggregate(_ImmediateBase):
    """Model 3 immediate maintenance of a one-page aggregate state."""

    def __init__(
        self,
        definition: AggregateView,
        relation: ClusteredRelation,
        store: AggregateStateStore,
    ) -> None:
        super().__init__(definition, relation)
        self.store = store

    def on_transaction(self, txn: Transaction, delta: DeltaSet) -> None:
        marked = self._marked(txn, delta)
        if marked is None:
            return
        marked_ins, marked_del = marked
        if refresh_aggregate(self.definition, self.store, marked_ins, marked_del):
            self.refresh_count += 1

    def query(self, lo: Any = None, hi: Any = None) -> Any:
        return self.store.value()
