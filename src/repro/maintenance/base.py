"""Maintenance strategy interface.

A strategy owns everything view-specific: whether a materialized copy
exists, what happens after each base transaction, and how a view query
is answered.  The :class:`~repro.engine.database.Database` routes
transactions and queries to the strategies of the affected views.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any

from repro.core.strategies import Strategy
from repro.engine.transaction import Transaction
from repro.views.delta import DeltaSet

__all__ = ["MaintenanceStrategy", "QueryAnswer"]

#: A view query answers with either result tuples (Models 1/2) or a
#: scalar aggregate value (Model 3).
QueryAnswer = Any


class MaintenanceStrategy(ABC):
    """One view maintained under one strategy."""

    #: Which paper strategy this implements (set by subclasses).
    strategy: Strategy

    @property
    @abstractmethod
    def view_name(self) -> str:
        """Name of the view this strategy maintains."""

    @abstractmethod
    def on_transaction(self, txn: Transaction, delta: DeltaSet) -> None:
        """React to a committed base-relation transaction."""

    @abstractmethod
    def query(self, lo: Any = None, hi: Any = None) -> QueryAnswer:
        """Answer a view query.

        For select-project and join views, ``[lo, hi]`` is a range on
        the view key (``None`` bounds mean unbounded); aggregates
        ignore the range and return the scalar value.
        """
