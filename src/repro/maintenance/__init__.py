"""The three view materialization strategies, runnable over the engine."""

from .base import MaintenanceStrategy
from .hybrid import HybridSelectProject, RouteDecision
from .snapshot import RecomputeOnChangeSelectProject, SnapshotSelectProject
from .deferred import (
    DeferredAggregate,
    DeferredCoordinator,
    DeferredJoin,
    DeferredSelectProject,
)
from .immediate import ImmediateAggregate, ImmediateJoin, ImmediateSelectProject
from .planner import SharedDeltaPlanner
from .query_modification import (
    QueryModificationAggregate,
    QueryModificationJoin,
    QueryModificationSelectProject,
)
from .screening import ScreenStats, TLockIndex, TwoStageScreen

__all__ = [
    "DeferredAggregate",
    "DeferredCoordinator",
    "HybridSelectProject",
    "RouteDecision",
    "RecomputeOnChangeSelectProject",
    "SnapshotSelectProject",
    "DeferredJoin",
    "DeferredSelectProject",
    "ImmediateAggregate",
    "ImmediateJoin",
    "ImmediateSelectProject",
    "MaintenanceStrategy",
    "QueryModificationAggregate",
    "QueryModificationJoin",
    "QueryModificationSelectProject",
    "ScreenStats",
    "SharedDeltaPlanner",
    "TLockIndex",
    "TwoStageScreen",
]
