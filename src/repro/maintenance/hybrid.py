"""Dual-access-path routing: Section 3.3's optimizer integration.

    "a materialized view could be clustered on one attribute, and the
    base relation on another.  In this situation, a query optimizer
    could choose to process a view query in one of two ways, depending
    on the query predicate."

:class:`HybridSelectProject` maintains the materialized copy (immediate
scheme) clustered on the view key while the base relation stays
clustered on a different attribute.  Each query names the attribute it
ranges over; the router sends it down whichever access path its
analytic cost estimate favors — the clustered base index, or the
clustered view index — exactly the plan choice the paper sketches.
"""

from __future__ import annotations

from typing import Any

from repro.core.parameters import Parameters
from repro.core.strategies import Strategy
from repro.engine import executor
from repro.hr.differential import ClusteredRelation
from repro.views.definition import SelectProjectView, ViewTuple
from repro.views.matview import MaterializedView
from .immediate import ImmediateSelectProject

__all__ = ["HybridSelectProject", "RouteDecision"]

_UNBOUNDED_LO = float("-inf")
_UNBOUNDED_HI = float("inf")


class RouteDecision:
    """Record of one routing choice (inspectable in tests/examples)."""

    __slots__ = ("field", "path", "estimated_base_ms", "estimated_view_ms")

    def __init__(self, field: str, path: str,
                 estimated_base_ms: float, estimated_view_ms: float) -> None:
        self.field = field
        self.path = path
        self.estimated_base_ms = estimated_base_ms
        self.estimated_view_ms = estimated_view_ms

    def __repr__(self) -> str:
        return (
            f"RouteDecision(field={self.field!r}, path={self.path!r}, "
            f"base~{self.estimated_base_ms:.0f}ms, view~{self.estimated_view_ms:.0f}ms)"
        )


class HybridSelectProject(ImmediateSelectProject):
    """Immediate maintenance plus per-query access-path choice.

    The base relation is clustered on ``relation.clustered_on``; the
    view copy on ``definition.view_key``.  ``query_on(field, lo, hi)``
    routes to whichever path covers ``field`` with a clustered scan; a
    query on a field covered by *neither* clustering falls back to the
    cheaper of (sequential base scan, full view scan), estimated with
    the Section 3 formulas at ``params``.
    """

    strategy = Strategy.HYBRID

    def __init__(
        self,
        definition: SelectProjectView,
        relation: ClusteredRelation,
        matview: MaterializedView,
        params: Parameters,
    ) -> None:
        if relation.clustered_on == definition.view_key:
            raise ValueError(
                "hybrid routing is pointless when base and view share a "
                f"clustering attribute ({definition.view_key!r})"
            )
        super().__init__(definition, relation, matview)
        self.params = params
        self.decisions: list[RouteDecision] = []

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def _estimate_base_ms(self, field: str, selectivity: float) -> float:
        p = self.params
        if field == self.relation.clustered_on:
            return p.c2 * selectivity * p.b + p.c1 * selectivity * p.N
        return p.c2 * p.b + p.c1 * p.N  # sequential fallback

    def _estimate_view_ms(self, field: str, selectivity: float) -> float:
        p = self.params
        view_pages = p.f * p.b / 2.0
        view_tuples = p.f * p.N
        if field == self.definition.view_key:
            fraction = min(1.0, selectivity / p.f)
            return (
                p.c2 * p.H_vi
                + p.c2 * fraction * view_pages
                + p.c1 * fraction * view_tuples
            )
        return p.c2 * view_pages + p.c1 * view_tuples  # full view scan

    def query_on(
        self, field: str, lo: Any = None, hi: Any = None,
        selectivity: float | None = None,
    ) -> list[ViewTuple]:
        """Answer a range query on an arbitrary projected field.

        ``selectivity`` is the optimizer's estimate of the fraction of
        the *base relation* the range covers (defaults to the view
        selectivity ``f`` — a neutral guess).
        """
        if field not in self.definition.projection:
            raise KeyError(
                f"field {field!r} is not projected by view {self.view_name!r}"
            )
        selectivity = self.params.f if selectivity is None else selectivity
        base_ms = self._estimate_base_ms(field, selectivity)
        view_ms = self._estimate_view_ms(field, selectivity)
        path = "base" if base_ms < view_ms else "view"
        self.decisions.append(RouteDecision(field, path, base_ms, view_ms))

        lo = _UNBOUNDED_LO if lo is None else lo
        hi = _UNBOUNDED_HI if hi is None else hi
        if path == "base":
            return self._query_base(field, lo, hi)
        return self._query_view(field, lo, hi)

    def query(self, lo: Any = None, hi: Any = None) -> list[ViewTuple]:
        """Default entry point: a range on the view key."""
        return self.query_on(self.definition.view_key, lo, hi)

    # ------------------------------------------------------------------
    # execution paths
    # ------------------------------------------------------------------
    def _query_base(self, field: str, lo: Any, hi: Any) -> list[ViewTuple]:
        meter = self.relation.meter
        if field == self.relation.clustered_on:
            records = executor.clustered_scan(
                self.relation, lo, hi, self.definition.predicate, meter
            )
        else:
            records = [
                r
                for r in executor.sequential_scan(
                    self.relation, self.definition.predicate, meter
                )
                if lo <= r[field] <= hi
            ]
        return [
            self.definition.project(r) for r in records if lo <= r[field] <= hi
        ]

    def _query_view(self, field: str, lo: Any, hi: Any) -> list[ViewTuple]:
        meter = self.relation.meter
        if field == self.definition.view_key:
            candidates = self.matview.read_range(lo, hi)
        else:
            candidates = list(self.matview.scan_all())
        meter.record_screen(len(candidates))
        return [vt for vt in candidates if lo <= vt[field] <= hi]
