"""Trigger/alerter conditions over maintained views.

Section 4: "view materialization could be better employed where a
complete copy of the answer to a query is always needed.  For example,
materialization could support conditions for complex triggers and
alerters, as described in [Bune79]."

A condition is a boolean test over the current value of one view.
Because the views are incrementally maintained, evaluating a condition
costs a view query (one page for an aggregate state) rather than a
base-relation scan — the economics Buneman & Clemons wanted.
"""

from __future__ import annotations

import operator
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Callable

__all__ = [
    "Condition",
    "ThresholdCondition",
    "NonEmptyCondition",
    "PredicateCondition",
]

_COMPARATORS: dict[str, Callable[[Any, Any], bool]] = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "==": operator.eq,
    "!=": operator.ne,
}


class Condition(ABC):
    """A named boolean condition over one view."""

    def __init__(self, name: str, view_name: str) -> None:
        self.name = name
        self.view_name = view_name

    @abstractmethod
    def evaluate(self, answer: Any) -> bool:
        """Test the condition against a view query's answer."""

    def query_range(self) -> tuple[Any, Any]:
        """Range on the view key the condition needs (default: all)."""
        return (None, None)

    def describe(self) -> str:
        """One-line human-readable summary."""
        return f"{self.name}: view {self.view_name!r}"


@dataclass(frozen=True)
class _Comparison:
    op: str
    threshold: Any

    def test(self, value: Any) -> bool:
        return _COMPARATORS[self.op](value, self.threshold)


class ThresholdCondition(Condition):
    """Fires when an aggregate view's value compares true to a constant.

    Example: ``ThresholdCondition("backlog", "critical_count", ">=", 170)``.
    """

    def __init__(self, name: str, view_name: str, op: str, threshold: Any) -> None:
        if op not in _COMPARATORS:
            raise ValueError(f"unknown comparator {op!r}; expected one of "
                             f"{sorted(_COMPARATORS)}")
        super().__init__(name, view_name)
        self._comparison = _Comparison(op, threshold)

    def evaluate(self, answer: Any) -> bool:
        if answer is None:
            return False
        return self._comparison.test(answer)

    def describe(self) -> str:
        """One-line summary including the comparison."""
        return (f"{self.name}: {self.view_name} "
                f"{self._comparison.op} {self._comparison.threshold}")


class NonEmptyCondition(Condition):
    """Fires when a tuple view has any row in a key range."""

    def __init__(self, name: str, view_name: str,
                 lo: Any = None, hi: Any = None) -> None:
        super().__init__(name, view_name)
        self.lo = lo
        self.hi = hi

    def query_range(self) -> tuple[Any, Any]:
        return (self.lo, self.hi)

    def evaluate(self, answer: Any) -> bool:
        return bool(answer)

    def describe(self) -> str:
        """One-line summary including the watched range."""
        return (f"{self.name}: {self.view_name}[{self.lo}..{self.hi}] non-empty")


class PredicateCondition(Condition):
    """Fires when a caller-supplied test over the answer holds.

    The escape hatch for compound conditions ("average over 3x the
    median", "more than k rows above a value", ...).
    """

    def __init__(self, name: str, view_name: str,
                 test: Callable[[Any], bool],
                 lo: Any = None, hi: Any = None) -> None:
        super().__init__(name, view_name)
        self._test = test
        self.lo = lo
        self.hi = hi

    def query_range(self) -> tuple[Any, Any]:
        return (self.lo, self.hi)

    def evaluate(self, answer: Any) -> bool:
        return bool(self._test(answer))
