"""The alerter: watches conditions over maintained views.

Registers :class:`~repro.triggers.conditions.Condition` objects against
a :class:`~repro.engine.database.Database` and evaluates them on
demand.  Conditions are **edge-triggered** by default: an alert fires
when a condition transitions from false to true, then re-arms when it
falls back — the classic alerter contract — with an opt-in
level-triggered mode that fires on every true evaluation.

Each check queries the underlying views, so deferred-maintained views
are refreshed exactly when the alerter looks (the paper's deferred
scheme applied to its own proposed application).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.engine.database import Database
from .conditions import Condition

__all__ = ["Alert", "Alerter"]


@dataclass(frozen=True)
class Alert:
    """One firing: which condition, at which check, with what answer."""

    condition: str
    check_number: int
    answer: Any

    def __str__(self) -> str:
        return f"[check {self.check_number}] {self.condition} fired (answer={self.answer!r})"


class Alerter:
    """Evaluates registered conditions against one database."""

    def __init__(self, database: Database, level_triggered: bool = False) -> None:
        self.database = database
        self.level_triggered = level_triggered
        self._conditions: dict[str, Condition] = {}
        self._armed: dict[str, bool] = {}
        self._callbacks: dict[str, Callable[[Alert], None]] = {}
        self.checks_performed = 0
        self.history: list[Alert] = []

    def register(
        self,
        condition: Condition,
        callback: Callable[[Alert], None] | None = None,
    ) -> None:
        """Add a condition (optionally with a firing callback)."""
        if condition.name in self._conditions:
            raise ValueError(f"condition {condition.name!r} already registered")
        if condition.view_name not in self.database.views:
            raise KeyError(
                f"condition {condition.name!r} watches unknown view "
                f"{condition.view_name!r}"
            )
        self._conditions[condition.name] = condition
        self._armed[condition.name] = True
        if callback is not None:
            self._callbacks[condition.name] = callback

    def unregister(self, name: str) -> None:
        """Remove a condition (no-op if absent)."""
        self._conditions.pop(name, None)
        self._armed.pop(name, None)
        self._callbacks.pop(name, None)

    @property
    def conditions(self) -> tuple[Condition, ...]:
        return tuple(self._conditions.values())

    def check(self) -> list[Alert]:
        """Evaluate every condition once; returns the alerts that fired.

        View queries are shared across conditions watching the same
        view with the same range, so co-located conditions cost one
        query.
        """
        self.checks_performed += 1
        answers: dict[tuple[str, Any, Any], Any] = {}
        fired: list[Alert] = []
        for condition in self._conditions.values():
            lo, hi = condition.query_range()
            cache_key = (condition.view_name, lo, hi)
            if cache_key not in answers:
                answers[cache_key] = self.database.query_view(
                    condition.view_name, lo, hi
                )
            answer = answers[cache_key]
            holds = condition.evaluate(answer)
            if holds and (self.level_triggered or self._armed[condition.name]):
                alert = Alert(
                    condition=condition.name,
                    check_number=self.checks_performed,
                    answer=answer if not isinstance(answer, list) else len(answer),
                )
                fired.append(alert)
                self.history.append(alert)
                callback = self._callbacks.get(condition.name)
                if callback is not None:
                    callback(alert)
            # Edge semantics: disarm while true, re-arm when false.
            self._armed[condition.name] = not holds
        return fired
