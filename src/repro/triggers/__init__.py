"""Triggers and alerters over maintained views (Section 4's application).

The paper closes by arguing that incremental view maintenance shines
where a *complete, current* answer is always needed — trigger and
alerter conditions (Buneman & Clemons 1979) and live "windows on a
database".  This package provides that layer: conditions over view
answers, evaluated by an :class:`~repro.triggers.alerter.Alerter` with
edge-triggered semantics, at the cost of a view query per check (one
page for maintained aggregates).
"""

from .alerter import Alert, Alerter
from .conditions import (
    Condition,
    NonEmptyCondition,
    PredicateCondition,
    ThresholdCondition,
)

__all__ = [
    "Alert",
    "Alerter",
    "Condition",
    "NonEmptyCondition",
    "PredicateCondition",
    "ThresholdCondition",
]
