"""Admission-control primitives: decide *before* the engine works.

Hanson's models price each query and update that runs; a production
front door must also decide which requests run at all.  The primitives
here are deliberately small and thread-safe (the gateway's event loop
admits, worker threads execute and release):

* :class:`TokenBucket` — classic rate limiter.  The hard invariant
  (property-tested) is that **any** window of ``w`` seconds admits at
  most ``rate * w + burst`` requests, regardless of arrival pattern.
* :class:`ConcurrencyGuard` — per-client in-flight cap, covering a
  request from admission to response (queued *and* executing).
* :class:`BoundedQueue` — the ingress queue.  ``try_push`` never
  blocks and never grows the queue past its cap: full means *reject
  now*, the explicit-backpressure alternative to unbounded queueing.
* :class:`DeadLetterLog` — a bounded record of every rejected or
  expired request with a machine-readable label, so shed load is
  observable instead of silently dropped.

Rejection labels are module constants; they appear on the wire, in
dead-letter records, in metrics label sets and in the experiment
reports, and they compose with the resilience layer's
:class:`~repro.resilience.degradation.DegradedResult` labels: degraded
answers are *admitted* work the engine served off the normal path,
rejections never reached the engine at all.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

__all__ = [
    "REJECTED_RATE",
    "REJECTED_CONCURRENCY",
    "REJECTED_QUEUE_FULL",
    "EXPIRED",
    "REJECTION_LABELS",
    "AdmissionConfig",
    "AdmissionController",
    "BoundedQueue",
    "ConcurrencyGuard",
    "DeadLetterLog",
    "TokenBucket",
]

#: The request exceeded a token-bucket rate limit (global or per-client).
REJECTED_RATE = "rejected_rate"
#: The client already has its maximum number of requests in flight.
REJECTED_CONCURRENCY = "rejected_concurrency"
#: The bounded ingress queue is at its cap.
REJECTED_QUEUE_FULL = "rejected_queue_full"
#: The request's deadline passed before (or while) the engine served it.
EXPIRED = "expired"

#: Every label a request can be dead-lettered under.
REJECTION_LABELS = (
    REJECTED_RATE,
    REJECTED_CONCURRENCY,
    REJECTED_QUEUE_FULL,
    EXPIRED,
)


class TokenBucket:
    """A thread-safe token bucket: ``rate`` tokens/s, ``burst`` deep.

    The bucket starts full.  ``try_acquire`` consumes one token when
    available and never blocks.  ``clock`` is injectable so the window
    invariant can be property-tested on a fake clock.
    """

    def __init__(
        self,
        rate: float,
        burst: int,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0 tokens/s, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1 token, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._stamp = clock()
        self._mutex = threading.Lock()

    def _refill(self, now: float) -> None:
        elapsed = now - self._stamp
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._stamp = now

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Consume ``tokens`` if available; ``False`` means rate-reject."""
        with self._mutex:
            self._refill(self._clock())
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            return False

    @property
    def available(self) -> float:
        """Tokens currently in the bucket (refilled to now)."""
        with self._mutex:
            self._refill(self._clock())
            return self._tokens


class ConcurrencyGuard:
    """Per-client in-flight caps: admission acquires, completion releases."""

    def __init__(self, limit: int) -> None:
        if limit < 1:
            raise ValueError(f"concurrency limit must be >= 1, got {limit}")
        self.limit = limit
        self._inflight: dict[str, int] = {}
        self._mutex = threading.Lock()

    def try_acquire(self, client: str) -> bool:
        with self._mutex:
            held = self._inflight.get(client, 0)
            if held >= self.limit:
                return False
            self._inflight[client] = held + 1
            return True

    def release(self, client: str) -> None:
        with self._mutex:
            held = self._inflight.get(client, 0)
            if held <= 1:
                self._inflight.pop(client, None)
            else:
                self._inflight[client] = held - 1

    def inflight(self, client: str) -> int:
        with self._mutex:
            return self._inflight.get(client, 0)

    def total_inflight(self) -> int:
        with self._mutex:
            return sum(self._inflight.values())


class BoundedQueue:
    """A strictly bounded MPMC queue with non-blocking producers.

    ``try_push`` either enqueues and returns ``True`` or returns
    ``False`` immediately — producers are never parked, which is what
    turns overload into *rejections* instead of latency.  ``depth``
    never exceeds ``cap`` (the flood property test pounds on this), and
    ``peak`` records the high-water mark for the overload reports.
    """

    def __init__(self, cap: int) -> None:
        if cap < 1:
            raise ValueError(f"queue cap must be >= 1, got {cap}")
        self.cap = cap
        self._items: deque[Any] = deque()
        self._mutex = threading.Lock()
        self._ready = threading.Condition(self._mutex)
        self._peak = 0
        self._pushed = 0
        self._rejected = 0

    def try_push(self, item: Any) -> bool:
        with self._ready:
            if len(self._items) >= self.cap:
                self._rejected += 1
                return False
            self._items.append(item)
            self._pushed += 1
            self._peak = max(self._peak, len(self._items))
            self._ready.notify()
            return True

    def pop(self, timeout: float | None = None) -> Any | None:
        """Blocking pop; ``None`` when ``timeout`` elapses empty."""
        with self._ready:
            if not self._items and not self._ready.wait_for(
                lambda: bool(self._items), timeout=timeout
            ):
                return None
            return self._items.popleft()

    @property
    def depth(self) -> int:
        with self._mutex:
            return len(self._items)

    @property
    def peak(self) -> int:
        with self._mutex:
            return self._peak

    def stats(self) -> dict[str, int]:
        with self._mutex:
            return {
                "cap": self.cap,
                "depth": len(self._items),
                "peak": self._peak,
                "pushed": self._pushed,
                "rejected": self._rejected,
            }


@dataclass(frozen=True)
class DeadLetter:
    """One rejected or expired request, as recorded."""

    seq: int
    label: str
    client: str
    op: str
    detail: str = ""
    waited_ms: float = 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "label": self.label,
            "client": self.client,
            "op": self.op,
            "detail": self.detail,
            "waited_ms": round(self.waited_ms, 3),
        }


class DeadLetterLog:
    """Bounded ring of dead letters plus exact per-label totals.

    The ring keeps the most recent ``cap`` records for inspection; the
    counters are never truncated, so rejection totals in reports stay
    exact even when the ring has wrapped.
    """

    def __init__(self, cap: int = 2048) -> None:
        if cap < 1:
            raise ValueError(f"dead-letter cap must be >= 1, got {cap}")
        self._ring: deque[DeadLetter] = deque(maxlen=cap)
        self._counts: dict[str, int] = {}
        self._seq = 0
        self._mutex = threading.Lock()

    def record(
        self, label: str, client: str, op: str,
        detail: str = "", waited_ms: float = 0.0,
    ) -> DeadLetter:
        if label not in REJECTION_LABELS:
            raise ValueError(f"unknown rejection label {label!r}")
        with self._mutex:
            self._seq += 1
            letter = DeadLetter(self._seq, label, client, op, detail, waited_ms)
            self._ring.append(letter)
            self._counts[label] = self._counts.get(label, 0) + 1
            return letter

    def counts(self) -> dict[str, int]:
        with self._mutex:
            return dict(self._counts)

    def total(self) -> int:
        with self._mutex:
            return sum(self._counts.values())

    def records(self) -> tuple[DeadLetter, ...]:
        with self._mutex:
            return tuple(self._ring)

    def __iter__(self) -> Iterator[DeadLetter]:
        return iter(self.records())


@dataclass(frozen=True)
class AdmissionConfig:
    """Knobs of the admission pipeline (see ``docs/gateway.md``).

    ``None`` disables a stage.  Stage order per request: per-client
    rate, global rate, per-client concurrency, ingress queue — the
    cheap stateless checks run first, so a rate-rejected flood never
    touches the concurrency table or the queue.
    """

    #: Global token-bucket rate (requests/s) and burst depth.
    global_rate: float | None = None
    global_burst: int = 64
    #: Per-client token-bucket rate (requests/s) and burst depth.
    client_rate: float | None = None
    client_burst: int = 16
    #: Per-client in-flight cap (queued + executing).
    client_concurrency: int | None = 32
    #: Ingress queue cap: requests admitted but not yet executing.
    max_queue: int = 64
    #: Default deadline budget (wall ms) when a request names none.
    default_deadline_ms: float | None = None
    #: Dead-letter ring size.
    dead_letter_cap: int = 2048


@dataclass
class _Decision:
    """What the controller decided for one request."""

    admitted: bool
    label: str | None = None
    detail: str = ""


@dataclass
class AdmissionController:
    """The full admission pipeline in front of the ingress queue.

    ``admit`` runs the rate and concurrency stages and returns a
    decision; the caller then pushes to :attr:`queue` itself (so it
    can attach its own payload) and must call :meth:`release` exactly
    once per admitted request when the response is finished — that is
    what returns the client's concurrency slot.
    """

    config: AdmissionConfig = field(default_factory=AdmissionConfig)
    clock: Callable[[], float] = time.monotonic

    def __post_init__(self) -> None:
        cfg = self.config
        self.global_bucket = (
            TokenBucket(cfg.global_rate, cfg.global_burst, clock=self.clock)
            if cfg.global_rate is not None else None
        )
        self._client_buckets: dict[str, TokenBucket] = {}
        self._buckets_mutex = threading.Lock()
        self.guard = (
            ConcurrencyGuard(cfg.client_concurrency)
            if cfg.client_concurrency is not None else None
        )
        self.queue = BoundedQueue(cfg.max_queue)
        self.dead_letters = DeadLetterLog(cfg.dead_letter_cap)

    def _client_bucket(self, client: str) -> TokenBucket | None:
        cfg = self.config
        if cfg.client_rate is None:
            return None
        with self._buckets_mutex:
            bucket = self._client_buckets.get(client)
            if bucket is None:
                bucket = TokenBucket(
                    cfg.client_rate, cfg.client_burst, clock=self.clock
                )
                self._client_buckets[client] = bucket
            return bucket

    def admit(self, client: str) -> _Decision:
        bucket = self._client_bucket(client)
        if bucket is not None and not bucket.try_acquire():
            return _Decision(False, REJECTED_RATE, f"client {client} rate limit")
        if self.global_bucket is not None and not self.global_bucket.try_acquire():
            return _Decision(False, REJECTED_RATE, "global rate limit")
        if self.guard is not None and not self.guard.try_acquire(client):
            return _Decision(
                False, REJECTED_CONCURRENCY,
                f"client {client} at {self.guard.limit} in flight",
            )
        return _Decision(True)

    def release(self, client: str) -> None:
        if self.guard is not None:
            self.guard.release(client)

    def stats(self) -> dict[str, Any]:
        return {
            "queue": self.queue.stats(),
            "dead_letters": self.dead_letters.counts(),
            "inflight": self.guard.total_inflight() if self.guard else None,
            "config": {
                "global_rate": self.config.global_rate,
                "global_burst": self.config.global_burst,
                "client_rate": self.config.client_rate,
                "client_burst": self.config.client_burst,
                "client_concurrency": self.config.client_concurrency,
                "max_queue": self.config.max_queue,
                "default_deadline_ms": self.config.default_deadline_ms,
            },
        }
