"""The gateway server: asyncio edge, admission control, worker pool.

Architecture (one process)::

    clients ──TCP──▶ asyncio event loop          worker threads
                     ├─ frame parse              ├─ deadline check
                     ├─ admission pipeline ──▶ BoundedQueue ──▶ backend call
                     └─ immediate rejections ◀── responses (by id) ◀─┘

The event loop never executes engine work: it parses frames, runs the
admission pipeline (token buckets, concurrency guard, bounded queue)
and writes responses.  A small pool of worker threads pops admitted
requests from the bounded ingress queue and drives the backend — a
:class:`~repro.service.server.ViewServer` (thread-safe since the
striped-lock refactor) or a :class:`~repro.cluster.router.ClusterRouter`
(scatter-gather legs already run on their own threads).  Responses are
scheduled back onto the loop and matched by request id, so one
connection can carry many overlapping requests (the open-loop load
generator depends on this).

Deadlines propagate: the budget a request arrives with is checked
again when a worker picks it up (expired in queue → dead letter,
engine untouched), is passed to the backend as its remaining RPC
timeout where supported (cluster legs), and is checked once more at
completion — an answer computed after its deadline is labelled
``expired``, not served as success, which is what keeps the p99 of
*admitted* requests bounded under overload.
"""

from __future__ import annotations

import asyncio
import math
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.cluster.worker import decode_operation, encode_answer
from repro.engine.transaction import Transaction
from repro.service.metrics import MetricsRegistry
from .admission import (
    EXPIRED,
    REJECTED_QUEUE_FULL,
    AdmissionConfig,
    AdmissionController,
)
from .protocol import GATEWAY_PROTOCOL, FrameError, pack_frame, read_frame

__all__ = [
    "GatewayError",
    "GatewayConfig",
    "ViewServerBackend",
    "ClusterBackend",
    "GatewayServer",
    "GatewayHandle",
    "GATEWAY_LATENCY_BUCKETS_MS",
]

#: Wall-clock latency buckets (ms).  The serving layer's modelled-ms
#: buckets start at 1 ms; gateway latencies are wall time and include
#: sub-millisecond rejections, so the grid extends two decades down.
GATEWAY_LATENCY_BUCKETS_MS: tuple[float, ...] = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1_000.0, 2_500.0, 10_000.0, float("inf"),
)


class GatewayError(RuntimeError):
    """Gateway configuration or protocol misuse."""


@dataclass(frozen=True)
class GatewayConfig:
    """Gateway knobs: the admission pipeline plus the worker pool."""

    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    #: Worker threads executing admitted requests against the backend.
    workers: int = 4
    #: Seconds a worker waits on an empty queue before re-checking stop.
    idle_poll_s: float = 0.05

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")


# ----------------------------------------------------------------------
# backends
# ----------------------------------------------------------------------
class ViewServerBackend:
    """Adapt one in-process :class:`ViewServer` to the gateway."""

    def __init__(self, server: Any) -> None:
        self.server = server

    def views(self) -> tuple[str, ...]:
        return tuple(self.server.views())

    def query(
        self, view: str, lo: Any, hi: Any, client: str,
        timeout: float | None = None,
    ) -> Any:
        # An in-process engine call is not interruptible; the gateway
        # enforces the deadline around it (pre-dispatch and at
        # completion) instead.
        return self.server.query(view, lo, hi, client=client)

    def update(
        self, relation: str, ops: list[Mapping[str, Any]], client: str,
        timeout: float | None = None,
    ) -> int:
        schema = self.server.database.relations[relation].schema
        txn = Transaction.of(
            relation, [decode_operation(schema, doc) for doc in ops]
        )
        self.server.apply_update(txn, client=client)
        return len(txn)

    def metrics(self) -> dict[str, Any]:
        return self.server.metrics_dict()


class ClusterBackend:
    """Adapt a scatter–gather :class:`ClusterRouter` to the gateway.

    The remaining deadline budget becomes the router's per-call RPC
    timeout, so a gateway deadline bounds every shard leg too.
    ``schemas`` is only needed for ``insert`` operations (a record must
    be built against its schema before routing); updates and deletes
    carry their own keys.
    """

    def __init__(self, router: Any, schemas: Mapping[str, Any] | None = None) -> None:
        self.router = router
        self.schemas = dict(schemas or {})

    def views(self) -> tuple[str, ...]:
        return tuple(self.router.views())

    def query(
        self, view: str, lo: Any, hi: Any, client: str,
        timeout: float | None = None,
    ) -> Any:
        return self.router.query(view, lo, hi, client=client, timeout=timeout)

    def pop_retry_flag(self) -> bool:
        """Whether this thread's last query was served via replica retry."""
        return self.router.pop_retried()

    def update(
        self, relation: str, ops: list[Mapping[str, Any]], client: str,
        timeout: float | None = None,
    ) -> int:
        schema = self.schemas.get(relation)
        operations = []
        for doc in ops:
            if doc.get("kind") == "insert" and schema is None:
                raise GatewayError(
                    f"insert into {relation!r} needs a schema; give the "
                    "ClusterBackend a schemas mapping"
                )
            operations.append(decode_operation(schema, doc))
        txn = Transaction.of(relation, operations)
        # The remaining deadline budget bounds every shard leg of the
        # write fan-out, exactly as it already does for queries.
        self.router.apply_update(txn, client=client, timeout=timeout)
        return len(txn)

    def metrics(self) -> dict[str, Any]:
        return self.router.cluster_metrics()


# ----------------------------------------------------------------------
# the server
# ----------------------------------------------------------------------
@dataclass
class _Conn:
    """Per-connection state: the writer plus a write-ordering lock."""

    writer: asyncio.StreamWriter
    lock: asyncio.Lock


@dataclass
class _Pending:
    """One admitted request riding the ingress queue."""

    conn: _Conn
    request: dict[str, Any]
    op: str
    client: str
    received: float
    #: Absolute monotonic deadline, or None for no budget.
    deadline: float | None


class GatewayServer:
    """Serve the framed gateway protocol over a backend.

    Use :meth:`start`/:meth:`stop` inside an event loop, or
    :class:`GatewayHandle` to run the whole thing on a background
    thread (tests, experiments, and the in-process ``--listen`` shims).
    """

    def __init__(
        self,
        backend: ViewServerBackend | ClusterBackend,
        config: GatewayConfig | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.backend = backend
        self.config = config or GatewayConfig()
        self.metrics = registry or MetricsRegistry()
        self.admission = AdmissionController(self.config.admission)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.base_events.Server | None = None
        self._threads: list[threading.Thread] = []
        self._stopping = threading.Event()
        self._started = 0.0

    # -- lifecycle ------------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        if self._server is not None:
            raise GatewayError("gateway already started")
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(self._handle_conn, host, port)
        self._started = time.monotonic()
        self._stopping.clear()
        self._threads = [
            threading.Thread(
                target=self._worker_loop, name=f"gateway-worker-{i}", daemon=True
            )
            for i in range(self.config.workers)
        ]
        for thread in self._threads:
            thread.start()

    @property
    def port(self) -> int:
        if self._server is None:
            raise GatewayError("gateway not started")
        return self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Stop accepting, drain workers, close the listener."""
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._stopping.set()
        for thread in self._threads:
            await asyncio.get_running_loop().run_in_executor(None, thread.join)
        self._server = None
        self._threads = []

    # -- observability --------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Queue, dead-letter, outcome and uptime counters as plain data."""
        outcomes = {
            dict(counter.labels)["outcome"]: int(counter.value)
            for counter in self.metrics.series("gateway_outcomes_total")
        }
        doc = self.admission.stats()
        doc["outcomes"] = outcomes
        doc["uptime_s"] = round(time.monotonic() - self._started, 3)
        doc["workers"] = self.config.workers
        doc["protocol"] = GATEWAY_PROTOCOL
        return doc

    def metrics_dict(self) -> dict[str, Any]:
        return self.metrics.to_dict()

    def _observe(self, outcome: str, op: str, latency_ms: float) -> None:
        self.metrics.counter("gateway_outcomes_total", outcome=outcome).inc()
        self.metrics.counter("gateway_requests_total", op=op).inc()
        self.metrics.histogram(
            "gateway_request_ms",
            buckets=GATEWAY_LATENCY_BUCKETS_MS,
            outcome=outcome,
        ).observe(latency_ms)
        queue = self.admission.queue
        self.metrics.gauge("gateway_queue_depth").set(queue.depth)
        self.metrics.gauge("gateway_queue_peak").set(queue.peak)

    def _dead_letter(
        self, label: str, pending_or_client: Any, op: str,
        detail: str, waited_ms: float,
    ) -> None:
        client = (
            pending_or_client.client
            if isinstance(pending_or_client, _Pending) else pending_or_client
        )
        self.admission.dead_letters.record(
            label, client, op, detail=detail, waited_ms=waited_ms
        )
        self.metrics.counter("gateway_dead_letters_total", reason=label).inc()

    # -- the asyncio edge ----------------------------------------------
    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Conn(writer, asyncio.Lock())
        try:
            while True:
                try:
                    request = await read_frame(reader)
                except FrameError:
                    return  # garbage on the wire: drop the connection
                if request is None:
                    return
                self._dispatch(conn, request)
        finally:
            try:
                writer.close()
            except Exception:
                pass

    def _dispatch(self, conn: _Conn, request: dict[str, Any]) -> None:
        """Admission decision for one frame, on the event loop."""
        op = str(request.get("op", ""))
        client = str(request.get("client", "anon"))
        received = time.monotonic()

        if op in ("ping", "stats", "metrics"):
            self._answer_control(conn, request, op)
            return
        if op not in ("query", "update"):
            self._respond(conn, {
                "id": request.get("id"), "ok": False,
                "kind": "GatewayError", "error": f"unknown op {op!r}",
            })
            return

        # Malformed deadlines are rejected *before* admission: anything
        # that can fail after admit() would otherwise leak the client's
        # concurrency slot and wedge its cap permanently.
        budget_ms = request.get("deadline_ms")
        if budget_ms is None:
            budget_ms = self.config.admission.default_deadline_ms
        elif (
            isinstance(budget_ms, bool)
            or not isinstance(budget_ms, (int, float))
            or not math.isfinite(budget_ms)
        ):
            self._respond(conn, {
                "id": request.get("id"), "ok": False,
                "kind": "GatewayError",
                "error": f"deadline_ms must be a finite number, got {budget_ms!r}",
            })
            return

        decision = self.admission.admit(client)
        if not decision.admitted:
            assert decision.label is not None
            self._dead_letter(decision.label, client, op, decision.detail, 0.0)
            self._observe(decision.label, op, 0.0)
            self._respond(conn, {
                "id": request.get("id"), "ok": False,
                "rejected": decision.label,
            })
            return

        try:
            deadline = (
                received + budget_ms / 1000.0 if budget_ms is not None else None
            )
            pending = _Pending(conn, request, op, client, received, deadline)
            pushed = self.admission.queue.try_push(pending)
        except BaseException:
            # Between admit() and a successful try_push() the slot is
            # ours; never let it escape unreleased.
            self.admission.release(client)
            raise
        if not pushed:
            self.admission.release(client)
            self._dead_letter(
                REJECTED_QUEUE_FULL, client, op,
                f"queue at cap {self.admission.queue.cap}", 0.0,
            )
            self._observe(REJECTED_QUEUE_FULL, op, 0.0)
            self._respond(conn, {
                "id": request.get("id"), "ok": False,
                "rejected": REJECTED_QUEUE_FULL,
            })

    def _answer_control(self, conn: _Conn, request: dict[str, Any], op: str) -> None:
        if op == "ping":
            result: Any = {
                "protocol": GATEWAY_PROTOCOL,
                "views": list(self.backend.views()),
            }
        elif op == "stats":
            result = self.stats()
        else:
            # "metrics" calls into the backend — for a cluster that is
            # a synchronous scatter-gather bounded only by rpc_timeout,
            # so it must not run inline on the event loop (it would
            # stall parsing, admission and responses on every
            # connection while it waits).
            assert self._loop is not None
            self._loop.create_task(self._answer_metrics(conn, request))
            return
        self._respond(conn, {"id": request.get("id"), "ok": True, "result": result})

    async def _answer_metrics(self, conn: _Conn, request: dict[str, Any]) -> None:
        loop = asyncio.get_running_loop()

        def collect() -> dict[str, Any]:
            return {
                "gateway": self.metrics_dict(),
                "backend": self.backend.metrics(),
            }

        try:
            result = await loop.run_in_executor(None, collect)
        except Exception as exc:
            await self._send(conn, {
                "id": request.get("id"), "ok": False,
                "kind": type(exc).__name__, "error": str(exc),
            })
            return
        await self._send(conn, {"id": request.get("id"), "ok": True, "result": result})

    def _respond(self, conn: _Conn, doc: dict[str, Any]) -> None:
        """Send from the event loop (fire-and-forget task per frame)."""
        assert self._loop is not None
        self._loop.create_task(self._send(conn, doc))

    async def _send(self, conn: _Conn, doc: dict[str, Any]) -> None:
        try:
            async with conn.lock:
                conn.writer.write(pack_frame(doc))
                await conn.writer.drain()
        except (ConnectionError, RuntimeError, OSError):
            self.metrics.counter("gateway_send_failures_total").inc()

    # -- the worker pool ------------------------------------------------
    def _worker_loop(self) -> None:
        while not self._stopping.is_set():
            pending = self.admission.queue.pop(timeout=self.config.idle_poll_s)
            if pending is None:
                continue
            try:
                self._execute(pending)
            finally:
                self.admission.release(pending.client)

    def _execute(self, pending: _Pending) -> None:
        now = time.monotonic()
        waited_ms = (now - pending.received) * 1000.0
        request = pending.request
        if pending.deadline is not None and now >= pending.deadline:
            # Expired while queued: the engine never sees it.
            self._dead_letter(EXPIRED, pending, pending.op,
                              "expired in queue", waited_ms)
            self._finish(pending, EXPIRED, {
                "id": request.get("id"), "ok": False, "rejected": EXPIRED,
            })
            return
        remaining = (
            pending.deadline - now if pending.deadline is not None else None
        )
        try:
            if pending.op == "query":
                answer = self.backend.query(
                    request["view"], request.get("lo"), request.get("hi"),
                    pending.client, timeout=remaining,
                )
                result = encode_answer(answer)
                # pop_retry_flag runs on this same worker thread, so
                # the flag the router parked thread-locally belongs to
                # exactly this request.
                retried = bool(getattr(
                    self.backend, "pop_retry_flag", lambda: False
                )())
                if retried:
                    result["retried"] = True
                if result.get("degraded"):
                    outcome = "degraded"
                elif retried:
                    # A full-fidelity answer that needed a replica
                    # retry: correct, but worth its own histogram —
                    # failover latency hides inside these.
                    outcome = "ok_retry"
                else:
                    outcome = "ok"
            else:
                applied = self.backend.update(
                    request["relation"], request.get("ops", ()),
                    pending.client, timeout=remaining,
                )
                result = {"applied": applied}
                outcome = "ok"
        except Exception as exc:
            if (
                pending.deadline is not None
                and time.monotonic() >= pending.deadline - 0.010
            ):
                # The budget ran out mid-call: backends that honour the
                # remaining-time budget (cluster shard legs) raise when
                # it is exhausted, so the honest label is the deadline's
                # — expired — not an engine error.
                self._dead_letter(
                    EXPIRED, pending, pending.op, "deadline cut mid-call",
                    (time.monotonic() - pending.received) * 1000.0,
                )
                self._finish(pending, EXPIRED, {
                    "id": request.get("id"), "ok": False,
                    "rejected": EXPIRED, "late": True,
                })
                return
            self._finish(pending, "error", {
                "id": request.get("id"), "ok": False,
                "kind": type(exc).__name__, "error": str(exc),
            })
            return
        if pending.deadline is not None and time.monotonic() > pending.deadline:
            # Served too late to count: the caller's budget is blown, so
            # the answer is withheld and the work dead-lettered — this
            # is what bounds the latency of *admitted* successes.
            self._dead_letter(
                EXPIRED, pending, pending.op, "completed past deadline",
                (time.monotonic() - pending.received) * 1000.0,
            )
            self._finish(pending, EXPIRED, {
                "id": request.get("id"), "ok": False,
                "rejected": EXPIRED, "late": True,
            })
            return
        self._finish(pending, outcome, {
            "id": request.get("id"), "ok": True, "result": result,
        })

    def _finish(self, pending: _Pending, outcome: str, doc: dict[str, Any]) -> None:
        latency_ms = (time.monotonic() - pending.received) * 1000.0
        self._observe(outcome, pending.op, latency_ms)
        assert self._loop is not None
        try:
            asyncio.run_coroutine_threadsafe(
                self._send(pending.conn, doc), self._loop
            )
        except RuntimeError:
            # Loop already closed (shutdown race); the response is lost
            # with the connection, which is the normal close semantics.
            self.metrics.counter("gateway_send_failures_total").inc()


class GatewayHandle:
    """A gateway running on its own thread with its own event loop.

    What tests, experiments and the CLI shims use: ``launch`` returns
    once the socket is listening; ``stop`` tears the loop down and
    joins the thread.  The handle owns only the gateway — backend
    lifecycle (server shutdown, cluster close) stays with the caller.
    """

    def __init__(self, gateway: GatewayServer, host: str) -> None:
        self.gateway = gateway
        self.host = host
        self.port: int = 0
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None

    @classmethod
    def launch(
        cls,
        backend: ViewServerBackend | ClusterBackend,
        config: GatewayConfig | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        registry: MetricsRegistry | None = None,
    ) -> "GatewayHandle":
        handle = cls(GatewayServer(backend, config, registry), host)
        ready = threading.Event()
        failure: list[BaseException] = []

        def run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            handle._loop = loop
            try:
                loop.run_until_complete(handle.gateway.start(host, port))
            except BaseException as exc:  # surfaced to the launcher
                failure.append(exc)
                ready.set()
                loop.close()
                return
            handle.port = handle.gateway.port
            ready.set()
            try:
                loop.run_forever()
            finally:
                loop.run_until_complete(handle.gateway.stop())
                loop.close()

        thread = threading.Thread(target=run, name="gateway-loop", daemon=True)
        handle._thread = thread
        thread.start()
        ready.wait(timeout=30.0)
        if failure:
            raise failure[0]
        if handle.port == 0:
            raise GatewayError("gateway failed to start within 30s")
        return handle

    def stop(self) -> None:
        if self._thread is None or self._loop is None:
            return
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=30.0)
        self._thread = None

    def __enter__(self) -> "GatewayHandle":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
