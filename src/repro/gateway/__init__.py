"""The network front door: admission control before the engine.

``repro.gateway`` puts an asyncio TCP front end on a serving stack —
a single :class:`~repro.service.server.ViewServer` or a whole
:class:`~repro.cluster.router.ClusterRouter` — and makes every request
pass admission control *before* any engine work is scheduled:

* token-bucket rate limiting, global and per-client;
* per-client concurrency guards (queued + executing);
* a bounded ingress queue with explicit backpressure — the queue
  rejects instead of growing, so overload can never build an unbounded
  latency mountain behind the socket;
* deadline propagation — a request that waited past its budget is
  expired without touching the engine;
* a dead-letter log recording every rejected or expired request with a
  machine-readable label.

The wire protocol reuses the cluster's length-prefixed JSON framing
(:mod:`repro.cluster.rpc` conventions); see ``docs/gateway.md``.
"""

from .admission import (
    EXPIRED,
    REJECTED_CONCURRENCY,
    REJECTED_QUEUE_FULL,
    REJECTED_RATE,
    REJECTION_LABELS,
    AdmissionConfig,
    AdmissionController,
    BoundedQueue,
    ConcurrencyGuard,
    DeadLetterLog,
    TokenBucket,
)
from .client import AsyncGatewayClient, GatewayCallError, call_once
from .protocol import GATEWAY_PROTOCOL, pack_frame, read_frame
from .server import (
    ClusterBackend,
    GatewayConfig,
    GatewayError,
    GatewayHandle,
    GatewayServer,
    ViewServerBackend,
)

__all__ = [
    "EXPIRED",
    "REJECTED_CONCURRENCY",
    "REJECTED_QUEUE_FULL",
    "REJECTED_RATE",
    "REJECTION_LABELS",
    "AdmissionConfig",
    "AdmissionController",
    "AsyncGatewayClient",
    "BoundedQueue",
    "ClusterBackend",
    "ConcurrencyGuard",
    "DeadLetterLog",
    "GATEWAY_PROTOCOL",
    "GatewayCallError",
    "GatewayConfig",
    "GatewayError",
    "GatewayHandle",
    "GatewayServer",
    "TokenBucket",
    "ViewServerBackend",
    "call_once",
    "pack_frame",
    "read_frame",
]
