"""``repro-gateway``: serve the network front door and drive load at it.

Two subcommands::

    repro-gateway serve --listen 127.0.0.1:7411            # demo ViewServer
    repro-gateway serve --cluster 4 --pacing 2e-4          # sharded backend
    repro-gateway serve --global-rate 60 --max-queue 16    # tuned admission

    repro-gateway load --connect 127.0.0.1:7411 --rate 120 --duration 2
    repro-gateway load --connect ... --closed 4            # saturation probe
    repro-gateway load --connect ... --json burst.json     # CI artifact

``load`` exits nonzero when any admitted answer violated its validator
(wrong result) or the gateway's ingress queue exceeded its cap — the
two conditions CI's ``gateway-overload-smoke`` job gates on.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from pathlib import Path
from typing import Any

from repro.workload.clients import (
    OpenLoopConfig,
    demo_request_factory,
    run_closed_loop,
    run_open_loop,
)
from .admission import AdmissionConfig
from .client import GatewayCallError, call_once
from .protocol import GATEWAY_PROTOCOL
from .server import (
    ClusterBackend,
    GatewayConfig,
    GatewayHandle,
    ViewServerBackend,
)

__all__ = ["main", "parse_listen", "serve_until_interrupted", "wait_for_gateway"]


def parse_listen(text: str) -> tuple[str, int]:
    """Parse ``host:port`` (port 0 asks the OS to pick)."""
    host, sep, port_text = text.rpartition(":")
    if not sep or not host:
        raise ValueError(f"expected host:port, got {text!r}")
    try:
        port = int(port_text)
    except ValueError as exc:
        raise ValueError(f"bad port in {text!r}") from exc
    if not 0 <= port <= 65535:
        raise ValueError(f"port {port} out of range")
    return host, port


def serve_until_interrupted(
    backend: ViewServerBackend | ClusterBackend,
    host: str,
    port: int,
    config: GatewayConfig | None = None,
    duration: float | None = None,
    announce: Any = print,
) -> int:
    """Run a gateway over ``backend`` until ^C (or for ``duration`` s).

    The shared serving path of ``repro-gateway serve`` and the
    ``--listen`` shims on ``repro-serve`` / ``repro-cluster``.
    """
    handle = GatewayHandle.launch(backend, config, host=host, port=port)
    announce(
        f"gateway listening on {handle.host}:{handle.port} "
        f"(protocol {GATEWAY_PROTOCOL}, "
        f"views: {', '.join(backend.views())})"
    )
    try:
        if duration is not None:
            time.sleep(duration)
        else:
            while True:  # pragma: no cover - interactive serving
                time.sleep(3600)
    except KeyboardInterrupt:  # pragma: no cover - interactive serving
        pass
    finally:
        handle.stop()
    return 0


def wait_for_gateway(host: str, port: int, timeout: float = 10.0) -> bool:
    """Poll ``ping`` until the gateway answers (spawn-order helper)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            reply = asyncio.run(call_once(host, port, {"op": "ping"}))
            if reply.ok:
                return True
        except (GatewayCallError, ConnectionError, OSError):
            pass
        time.sleep(0.2)
    return False


def _admission_from_args(args: argparse.Namespace) -> AdmissionConfig:
    return AdmissionConfig(
        global_rate=args.global_rate,
        global_burst=args.global_burst,
        client_rate=args.client_rate,
        client_burst=args.client_burst,
        client_concurrency=args.client_concurrency,
        max_queue=args.max_queue,
        default_deadline_ms=args.default_deadline_ms,
    )


def _add_admission_args(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("admission control")
    group.add_argument("--global-rate", type=float, default=None, metavar="RPS",
                       help="global token-bucket rate (default: unlimited)")
    group.add_argument("--global-burst", type=int, default=64)
    group.add_argument("--client-rate", type=float, default=None, metavar="RPS",
                       help="per-client token-bucket rate (default: unlimited)")
    group.add_argument("--client-burst", type=int, default=16)
    group.add_argument("--client-concurrency", type=int, default=32,
                       metavar="N", help="per-client in-flight cap")
    group.add_argument("--max-queue", type=int, default=64,
                       help="bounded ingress queue cap (default 64)")
    group.add_argument("--default-deadline-ms", type=float, default=None,
                       metavar="MS",
                       help="deadline budget for requests that name none")
    group.add_argument("--workers", type=int, default=4,
                       help="threads executing admitted requests (default 4)")


def _cmd_serve(args: argparse.Namespace) -> int:
    try:
        host, port = parse_listen(args.listen)
    except ValueError as exc:
        print(f"invalid --listen: {exc}", file=sys.stderr)
        return 2
    config = GatewayConfig(
        admission=_admission_from_args(args), workers=args.workers
    )
    if args.cluster is not None:
        from repro.cluster.harness import launch_demo

        router = launch_demo(
            args.cluster, pacing=args.pacing,
            n_records=args.records, seed=args.seed,
        )
        try:
            return serve_until_interrupted(
                ClusterBackend(router), host, port,
                config=config, duration=args.duration,
            )
        finally:
            router.close()
    from repro.service.traffic import demo_server

    demo = demo_server(
        n_tuples=args.records, seed=args.seed, pacing=args.pacing
    )
    return serve_until_interrupted(
        ViewServerBackend(demo.server), host, port,
        config=config, duration=args.duration,
    )


def _cmd_load(args: argparse.Namespace) -> int:
    try:
        host, port = parse_listen(args.connect)
    except ValueError as exc:
        print(f"invalid --connect: {exc}", file=sys.stderr)
        return 2
    if not wait_for_gateway(host, port, timeout=args.connect_timeout):
        print(f"no gateway answered at {host}:{port} within "
              f"{args.connect_timeout:.0f}s", file=sys.stderr)
        return 2
    if args.target == "cluster":
        from repro.cluster.harness import DOMAIN

        # Updating a key no shard owns is a routing error, so the
        # generated key range must match the serve side's record count
        # (defaults mirror repro-cluster / repro-gateway serve).
        records = args.records if args.records is not None else 480
        factory = demo_request_factory(
            tuples_view="by_a", total_view="total",
            view_bound=DOMAIN, key_count=records,
        )
    else:
        records = args.records if args.records is not None else 2000
        factory = demo_request_factory(key_count=records)

    if args.closed is not None:
        report = run_closed_loop(
            host, port, factory, concurrency=args.closed,
            duration_s=args.duration, deadline_ms=args.deadline_ms,
            seed=args.seed,
        )
    else:
        report = run_open_loop(
            host, port,
            OpenLoopConfig(
                rate=args.rate, duration_s=args.duration,
                deadline_ms=args.deadline_ms, n_clients=args.clients,
                zipf_s=args.zipf_s, seed=args.seed,
            ),
            factory,
        )

    doc = report.to_dict()
    failures: list[str] = []
    if report.wrong:
        failures.append(
            f"{len(report.wrong)} wrong results, e.g. {report.wrong[0]}"
        )
    queue = (report.server_stats or {}).get("queue", {})
    if queue and queue["peak"] > queue["cap"]:
        failures.append(
            f"queue peaked at {queue['peak']} above cap {queue['cap']}"
        )
    doc["failures"] = failures

    if args.json:
        Path(args.json).write_text(json.dumps(doc, indent=2) + "\n")

    mode = (f"closed x{args.closed}" if args.closed is not None
            else f"open @ {args.rate:.0f} rps")
    print(f"load [{mode}]: offered {report.offered} in "
          f"{doc['duration_s']}s -> goodput {doc['goodput_rps']} rps, "
          f"{report.ok} ok, {report.rejected} rejected, "
          f"{len(report.wrong)} wrong")
    for outcome in sorted(report.outcomes):
        summary = doc["outcomes"][outcome]
        print(f"  {outcome:<22} n={summary['count']:<6} "
              f"p50={_ms(summary['p50_ms'])} "
              f"p95={_ms(summary['p95_ms'])} p99={_ms(summary['p99_ms'])}")
    if queue:
        print(f"  queue: peak {queue['peak']} / cap {queue['cap']}, "
              f"{queue['rejected']} rejected at the door")
    for failure in failures:
        print(f"FAILURE: {failure}", file=sys.stderr)
    if args.json:
        print(f"wrote {args.json}")
    return 1 if failures else 0


def _ms(value: float | None) -> str:
    return f"{value:7.1f}ms" if value is not None else "      - "


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-gateway",
        description="Network front door for the materialized-view stack: "
        "admission-controlled serving and open-loop load generation.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="serve a demo backend behind the gateway")
    serve.add_argument("--listen", default="127.0.0.1:7411", metavar="HOST:PORT")
    serve.add_argument("--cluster", type=int, default=None, metavar="N",
                       help="front an N-shard cluster instead of one ViewServer")
    serve.add_argument("--records", type=int, default=2000,
                       help="demo relation size (default 2000)")
    serve.add_argument("--seed", type=int, default=7)
    serve.add_argument("--pacing", type=float, default=0.0, metavar="S",
                       help="wall seconds per modelled ms (default 0)")
    serve.add_argument("--duration", type=float, default=None, metavar="S",
                       help="serve for S seconds then exit (default: until ^C)")
    _add_admission_args(serve)
    serve.set_defaults(func=_cmd_serve)

    load = sub.add_parser("load", help="drive open- or closed-loop load")
    load.add_argument("--connect", default="127.0.0.1:7411", metavar="HOST:PORT")
    load.add_argument("--target", choices=("demo", "cluster"), default="demo",
                      help="request mix matching the serve-side backend")
    load.add_argument("--records", type=int, default=None,
                      help="key range for generated updates — must match the "
                      "serve side's record count (default: 2000 for demo, "
                      "480 for cluster, mirroring the serve defaults)")
    load.add_argument("--rate", type=float, default=100.0, metavar="RPS",
                      help="open-loop offered load (default 100)")
    load.add_argument("--duration", type=float, default=2.0, metavar="S")
    load.add_argument("--deadline-ms", type=float, default=600.0, metavar="MS")
    load.add_argument("--clients", type=int, default=20,
                      help="Zipf client population size (default 20)")
    load.add_argument("--zipf-s", type=float, default=1.1)
    load.add_argument("--closed", type=int, default=None, metavar="N",
                      help="closed-loop with N workers instead of open-loop")
    load.add_argument("--seed", type=int, default=17)
    load.add_argument("--connect-timeout", type=float, default=10.0)
    load.add_argument("--json", metavar="PATH", default=None,
                      help="write the latency/rejection summary as JSON")
    load.set_defaults(func=_cmd_load)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
