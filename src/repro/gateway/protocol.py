"""Asyncio framing for the gateway wire protocol.

Same bytes as the cluster's shard RPC (:mod:`repro.cluster.rpc`): one
JSON object per message, preceded by a 4-byte big-endian length, with
the same frame-size cap — a shard worker and a gateway can be read
with the same tooling.  The difference is *ordering*: shard RPC
serializes one call per connection, while the gateway pipelines —
responses carry the request's ``id`` and may arrive out of order, so
clients must demultiplex by id.

Request documents::

    {"id": N, "op": "query", "view": str, "lo": A, "hi": B,
     "client": str, "deadline_ms": F}
    {"id": N, "op": "update", "relation": str, "ops": [op-doc, ...],
     "client": str, "deadline_ms": F}
    {"id": N, "op": "ping" | "stats" | "metrics"}

``op-doc`` is the cluster wire encoding
(:func:`repro.cluster.worker.encode_operation`).  Responses::

    {"id": N, "ok": true,  "result": ...}
    {"id": N, "ok": false, "rejected": label, ...}      # shed load
    {"id": N, "ok": false, "kind": cls, "error": msg}   # engine error

A ``rejected`` response names one of the admission labels
(:data:`~repro.gateway.admission.REJECTION_LABELS`); an admitted query
result uses :func:`repro.cluster.worker.encode_answer`, whose
``degraded`` field carries the resilience layer's DegradedResult
labels — the wire composes both vocabularies.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any, Mapping

from repro.cluster.rpc import MAX_FRAME_BYTES, FrameError

__all__ = ["GATEWAY_PROTOCOL", "pack_frame", "read_frame", "FrameError"]

#: Protocol tag echoed by ``ping`` so clients can sanity-check peers.
GATEWAY_PROTOCOL = "repro.gateway/v1"

_LENGTH = struct.Struct("!I")


def pack_frame(doc: Mapping[str, Any]) -> bytes:
    """One length-prefixed JSON frame as bytes."""
    payload = json.dumps(doc, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(f"frame of {len(payload)} bytes exceeds the protocol cap")
    return _LENGTH.pack(len(payload)) + payload


async def read_frame(reader: asyncio.StreamReader) -> dict[str, Any] | None:
    """Read one frame; ``None`` means the peer closed at a boundary."""
    try:
        header = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise FrameError("connection closed mid-header") from exc
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"frame length {length} exceeds the protocol cap")
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise FrameError("connection closed between header and payload") from exc
    try:
        doc = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"frame payload is not JSON: {exc}") from exc
    if not isinstance(doc, dict):
        raise FrameError(f"frame must be a JSON object, got {type(doc).__name__}")
    return doc
