"""Asyncio client for the gateway protocol.

One :class:`AsyncGatewayClient` owns one TCP connection and any number
of in-flight requests on it: a background reader task demultiplexes
response frames by ``id`` back to their awaiting callers, which is what
lets the open-loop load generator keep issuing requests on schedule
while earlier ones are still queued server-side.

Responses come back as :class:`GatewayReply` — a small record exposing
the three outcome classes (``ok`` / ``rejected`` / ``error``) without
raising, because under deliberate overload rejections are *expected*
data, not exceptions.  :func:`call_once` is the convenience wrapper for
scripts and tests that want exactly one call on a fresh connection.
"""

from __future__ import annotations

import asyncio
import itertools
from dataclasses import dataclass
from typing import Any, Mapping

from repro.cluster.worker import decode_answer
from .protocol import FrameError, pack_frame, read_frame

__all__ = ["AsyncGatewayClient", "GatewayCallError", "GatewayReply", "call_once"]


class GatewayCallError(RuntimeError):
    """The connection died or the protocol was violated mid-call."""


@dataclass(frozen=True)
class GatewayReply:
    """One response frame, classified.

    Exactly one of the three outcome classes holds: ``ok`` (``result``
    carries the payload), ``rejected`` (a rejection label from
    :data:`~repro.gateway.admission.REJECTION_LABELS`), or an engine
    error (``error`` carries the message, ``kind`` the exception class).
    """

    doc: Mapping[str, Any]

    @property
    def ok(self) -> bool:
        return bool(self.doc.get("ok"))

    @property
    def rejected(self) -> str | None:
        return self.doc.get("rejected")

    @property
    def error(self) -> str | None:
        return self.doc.get("error")

    @property
    def kind(self) -> str | None:
        return self.doc.get("kind")

    @property
    def result(self) -> Any:
        return self.doc.get("result")

    def answer(self) -> tuple[Any, dict[str, Any] | None]:
        """Decode an ``ok`` query result into (payload, degraded_info)."""
        if not self.ok:
            raise GatewayCallError(f"no answer in a non-ok reply: {self.doc}")
        return decode_answer(self.doc["result"])


class AsyncGatewayClient:
    """A pipelined connection to one gateway.

    Every ``call`` is bounded: the server may legitimately drop a
    response (send failure, shutdown race, requests left queued at
    stop), and an unbounded await on a still-open connection would hang
    the caller forever.  Requests carrying ``deadline_ms`` wait that
    budget plus ``reply_slack_s`` (engine work is not interruptible, so
    a late ``expired`` reply can trail the deadline by the full
    execution time); requests without one wait ``reply_timeout_s``.
    Either knob can be ``None`` to disable the bound.  Expiry raises
    :class:`GatewayCallError`, which the load generators record as a
    ``lost`` outcome.
    """

    def __init__(
        self,
        host: str,
        port: int,
        client: str = "anon",
        reply_timeout_s: float | None = 60.0,
        reply_slack_s: float | None = 30.0,
    ) -> None:
        self.host = host
        self.port = port
        self.client = client
        self.reply_timeout_s = reply_timeout_s
        self.reply_slack_s = reply_slack_s
        self._ids = itertools.count(1)
        self._pending: dict[int, asyncio.Future[GatewayReply]] = {}
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._reader_task: asyncio.Task[None] | None = None
        self._closed = False

    async def connect(self) -> "AsyncGatewayClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_loop()
        )
        return self

    async def __aenter__(self) -> "AsyncGatewayClient":
        return await self.connect()

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()

    async def close(self) -> None:
        self._closed = True
        if self._writer is not None:
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):
                pass
        self._fail_pending(GatewayCallError("connection closed"))

    def _fail_pending(self, exc: Exception) -> None:
        for future in self._pending.values():
            if not future.done():
                future.set_exception(exc)
        self._pending.clear()

    async def _read_loop(self) -> None:
        assert self._reader is not None
        try:
            while True:
                doc = await read_frame(self._reader)
                if doc is None:
                    break
                future = self._pending.pop(doc.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(GatewayReply(doc))
        except (FrameError, ConnectionError, OSError) as exc:
            self._fail_pending(GatewayCallError(f"connection lost: {exc}"))
            return
        except asyncio.CancelledError:
            raise
        self._fail_pending(GatewayCallError("gateway closed the connection"))

    def _reply_budget(self, request: Mapping[str, Any]) -> float | None:
        deadline_ms = request.get("deadline_ms")
        if isinstance(deadline_ms, (int, float)) and not isinstance(
            deadline_ms, bool
        ):
            if self.reply_slack_s is None:
                return None
            return max(0.0, deadline_ms) / 1000.0 + self.reply_slack_s
        return self.reply_timeout_s

    async def call(
        self, doc: Mapping[str, Any], timeout: float | None = None
    ) -> GatewayReply:
        """Send one request document (``id`` is assigned here) and await.

        ``timeout`` overrides the computed reply bound for this call.
        """
        if self._writer is None or self._closed:
            raise GatewayCallError("client is not connected")
        request = dict(doc)
        request["id"] = next(self._ids)
        future: asyncio.Future[GatewayReply] = (
            asyncio.get_running_loop().create_future()
        )
        self._pending[request["id"]] = future
        try:
            self._writer.write(pack_frame(request))
            await self._writer.drain()
        except (ConnectionError, OSError) as exc:
            self._pending.pop(request["id"], None)
            raise GatewayCallError(f"send failed: {exc}") from exc
        budget = timeout if timeout is not None else self._reply_budget(request)
        if budget is None:
            return await future
        try:
            return await asyncio.wait_for(future, timeout=budget)
        except asyncio.TimeoutError:
            self._pending.pop(request["id"], None)
            raise GatewayCallError(
                f"no reply to request {request['id']} within {budget:.3f}s "
                f"(response lost)"
            ) from None

    # -- typed helpers --------------------------------------------------
    async def ping(self) -> GatewayReply:
        return await self.call({"op": "ping"})

    async def stats(self) -> dict[str, Any]:
        reply = await self.call({"op": "stats"})
        if not reply.ok:
            raise GatewayCallError(f"stats failed: {reply.doc}")
        return dict(reply.result)

    async def metrics(self) -> dict[str, Any]:
        reply = await self.call({"op": "metrics"})
        if not reply.ok:
            raise GatewayCallError(f"metrics failed: {reply.doc}")
        return dict(reply.result)

    async def query(
        self, view: str, lo: Any, hi: Any,
        deadline_ms: float | None = None,
    ) -> GatewayReply:
        doc: dict[str, Any] = {
            "op": "query", "view": view, "lo": lo, "hi": hi,
            "client": self.client,
        }
        if deadline_ms is not None:
            doc["deadline_ms"] = deadline_ms
        return await self.call(doc)

    async def update(
        self, relation: str, ops: list[Mapping[str, Any]],
        deadline_ms: float | None = None,
    ) -> GatewayReply:
        doc: dict[str, Any] = {
            "op": "update", "relation": relation, "ops": list(ops),
            "client": self.client,
        }
        if deadline_ms is not None:
            doc["deadline_ms"] = deadline_ms
        return await self.call(doc)


async def call_once(
    host: str, port: int, doc: Mapping[str, Any], client: str = "anon"
) -> GatewayReply:
    """One request on a fresh connection; closes it afterwards."""
    async with AsyncGatewayClient(host, port, client=client) as conn:
        return await conn.call(doc)
