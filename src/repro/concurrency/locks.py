"""Reader-writer locks, named-lock striping, and modelled-time pacing.

The server's locking discipline (see ``docs/performance.md``) layers
three mechanisms:

1. a *world* :class:`RWLock` — hot paths hold the read side, admin
   operations (migrations, checkpoints, recovery, repairs) the write
   side;
2. striped per-relation and per-view :class:`RWLock` instances handed
   out by a :class:`LockManager` and always acquired in one canonical
   sorted order, so queries on distinct views proceed concurrently and
   read-only queries on a fresh view never block each other;
3. a single engine mutex (a plain lock owned by the server) that
   serializes short sections touching the shared buffer pool and cost
   meter.

:class:`Pacer` converts each engine section's modelled cost into a
wall-clock sleep taken while only the striped locks are held, which is
what lets concurrent requests overlap their modelled I/O waits.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterable, Iterator, Protocol

__all__ = [
    "LockTimeout",
    "LockObserver",
    "RWLock",
    "LockManager",
    "Pacer",
    "set_lock_observer",
    "get_lock_observer",
]


class LockTimeout(RuntimeError):
    """A lock acquisition exceeded its timeout (possible ordering bug)."""


class LockObserver(Protocol):
    """Observer protocol for lock-order recording (see repro.analysis).

    Called after every successful RWLock acquisition and before every
    release, outside the lock's internal condition variable.  The
    installed observer must be fast and must never raise.
    """

    def on_acquire(self, name: str, mode: str) -> None: ...

    def on_release(self, name: str, mode: str) -> None: ...


#: Process-global acquisition observer.  ``None`` (the default) keeps
#: the hot path at a single pointer check per acquisition — the
#: recorder in :mod:`repro.analysis.lockorder` is opt-in tooling, not a
#: production dependency.
_observer: LockObserver | None = None


def set_lock_observer(observer: LockObserver | None) -> None:
    """Install (or with ``None`` remove) the global lock observer."""
    global _observer
    _observer = observer


def get_lock_observer() -> LockObserver | None:
    return _observer


class RWLock:
    """A writer-preference reader-writer lock.

    * Any number of readers may hold the lock together.
    * A writer excludes readers and other writers; waiting writers
      block *new* readers (no writer starvation).
    * Write acquisition is re-entrant for the holding thread.
    * A read acquisition by the thread holding the write side is a
      no-op (the write side already grants every read right), so
      write-locked admin code can call read-locked helpers.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._cond = threading.Condition(threading.Lock())
        self._readers: dict[int, int] = {}
        self._writer: int | None = None
        self._write_depth = 0
        self._writers_waiting = 0

    def _observed_name(self) -> str:
        return self.name or f"rwlock@{id(self):x}"

    # ------------------------------------------------------------------
    # read side
    # ------------------------------------------------------------------
    def acquire_read(self, timeout: float | None = None) -> bool:
        """Take the read side; returns False when it was a no-op
        (the caller already holds the write side)."""
        me = threading.get_ident()
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            if self._writer == me:
                return False
            while self._writer is not None or (
                self._writers_waiting and me not in self._readers
            ):
                self._wait(deadline, "read")
            self._readers[me] = self._readers.get(me, 0) + 1
        # Observer calls happen outside the condition variable: the
        # recorder may capture a stack, which must not extend the
        # critical section.  The no-op (write-held) path above never
        # reports — it acquires nothing.
        if _observer is not None:
            _observer.on_acquire(self._observed_name(), "read")
        return True

    def release_read(self) -> None:
        me = threading.get_ident()
        if _observer is not None:
            _observer.on_release(self._observed_name(), "read")
        with self._cond:
            count = self._readers.get(me, 0)
            if count <= 1:
                self._readers.pop(me, None)
            else:
                self._readers[me] = count - 1
            self._cond.notify_all()

    @contextmanager
    def read(self, timeout: float | None = None) -> Iterator[None]:
        acquired = self.acquire_read(timeout)
        try:
            yield
        finally:
            if acquired:
                self.release_read()

    # ------------------------------------------------------------------
    # write side
    # ------------------------------------------------------------------
    def acquire_write(self, timeout: float | None = None) -> None:
        me = threading.get_ident()
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            if self._writer == me:
                self._write_depth += 1
            else:
                if me in self._readers:
                    raise RuntimeError(
                        f"lock {self.name!r}: read-to-write upgrade would deadlock"
                    )
                self._writers_waiting += 1
                try:
                    while self._writer is not None or self._readers:
                        self._wait(deadline, "write")
                finally:
                    self._writers_waiting -= 1
                self._writer = me
                self._write_depth = 1
        if _observer is not None:
            _observer.on_acquire(self._observed_name(), "write")

    def release_write(self) -> None:
        if _observer is not None:
            _observer.on_release(self._observed_name(), "write")
        with self._cond:
            if self._writer != threading.get_ident():
                raise RuntimeError(f"lock {self.name!r}: write released by non-owner")
            self._write_depth -= 1
            if self._write_depth == 0:
                self._writer = None
                self._cond.notify_all()

    @contextmanager
    def write(self, timeout: float | None = None) -> Iterator[None]:
        self.acquire_write(timeout)
        try:
            yield
        finally:
            self.release_write()

    def _wait(self, deadline: float | None, mode: str) -> None:
        if deadline is None:
            self._cond.wait()
            return
        remaining = deadline - time.monotonic()
        if remaining <= 0 or not self._cond.wait(remaining):
            raise LockTimeout(f"lock {self.name!r}: {mode} acquisition timed out")

    def write_held_by_me(self) -> bool:
        with self._cond:
            return self._writer == threading.get_ident()


class LockManager:
    """Named :class:`RWLock` instances with ordered multi-acquire.

    Locks are created on demand and never dropped (the universe of
    relation and view names is small).  :meth:`acquire` takes any mix
    of read- and write-mode locks in one canonical global order —
    sorted by name, write mode winning when a name appears in both
    sets — which is the fixed lock-ordering discipline that makes the
    striped scheme deadlock-free.
    """

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self._locks: dict[str, RWLock] = {}

    def lock(self, name: str) -> RWLock:
        with self._mutex:
            lock = self._locks.get(name)
            if lock is None:
                lock = RWLock(name)
                self._locks[name] = lock
            return lock

    @contextmanager
    def acquire(
        self,
        writes: Iterable[str] = (),
        reads: Iterable[str] = (),
        timeout: float | None = None,
    ) -> Iterator[None]:
        """Acquire a set of named locks in canonical (sorted) order."""
        write_set = set(writes)
        read_set = set(reads) - write_set
        plan = sorted(
            [(name, "w") for name in write_set] + [(name, "r") for name in read_set]
        )
        held: list[tuple[RWLock, str, bool]] = []
        try:
            for name, mode in plan:
                lock = self.lock(name)
                if mode == "w":
                    lock.acquire_write(timeout)
                    held.append((lock, "w", True))
                else:
                    acquired = lock.acquire_read(timeout)
                    held.append((lock, "r", acquired))
            yield
        finally:
            for lock, mode, acquired in reversed(held):
                if mode == "w":
                    lock.release_write()
                elif acquired:
                    lock.release_read()


class Pacer:
    """Realize modelled milliseconds as wall-clock time.

    ``seconds_per_ms`` is the wall duration of one modelled
    millisecond; zero (the default everywhere) disables pacing
    entirely.  The server sleeps *outside* its engine mutex but inside
    the striped locks, so two requests against distinct views overlap
    their modelled I/O waits — the honest mechanism behind the parallel
    benchmark's multi-thread speedup under the GIL.
    """

    def __init__(self, seconds_per_ms: float = 0.0) -> None:
        if seconds_per_ms < 0:
            raise ValueError(f"pacing must be >= 0, got {seconds_per_ms}")
        self.seconds_per_ms = seconds_per_ms

    @property
    def enabled(self) -> bool:
        return self.seconds_per_ms > 0

    def pace(self, modelled_ms: float) -> None:
        if self.seconds_per_ms > 0 and modelled_ms > 0:
            time.sleep(modelled_ms * self.seconds_per_ms)
