"""Concurrency primitives for the serving layer.

The paper's cost model is single-user, but the ROADMAP's serving layer
is not: many client threads issue interleaved queries and updates
against many views.  This package provides the locking substrate the
server builds its striped reader-writer scheme on:

* :class:`RWLock` — a writer-preference reader-writer lock with
  timeouts, re-entrant write acquisition, and read-acquire-as-no-op
  while the calling thread already holds the write side (so admin
  operations can call read-locked helpers without deadlocking).
* :class:`LockManager` — named on-demand locks acquired in one
  canonical global order (sorted by name), which is what makes the
  server's per-relation/per-view striping deadlock-free.
* :class:`Pacer` — realizes *modelled* milliseconds as wall-clock
  sleeps, so concurrent requests genuinely overlap their modelled I/O
  waits instead of being serialized by Python's GIL.
"""

from .locks import LockTimeout, LockManager, Pacer, RWLock

__all__ = ["LockTimeout", "LockManager", "Pacer", "RWLock"]
