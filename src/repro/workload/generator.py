"""Scenario construction: databases, views and operation streams.

Builds the three paper models as runnable scenarios.  All randomness is
seeded, so a scenario is fully reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any

from repro.core.strategies import Strategy, ViewModel
from repro.engine.database import Database
from repro.engine.transaction import Transaction, Update
from repro.storage.tuples import Record, Schema
from repro.views.definition import AggregateView, JoinView, SelectProjectView
from repro.views.predicate import IntervalPredicate
from .spec import ScenarioConfig

__all__ = ["Scenario", "QueryOp", "UpdateOp", "build_scenario"]


@dataclass(frozen=True)
class QueryOp:
    """A view query over ``[lo, hi]`` on the view key."""

    lo: Any
    hi: Any


@dataclass(frozen=True)
class UpdateOp:
    """One update transaction."""

    txn: Transaction


@dataclass
class Scenario:
    """A built scenario: the database, the view, and the op stream."""

    config: ScenarioConfig
    database: Database
    view_name: str
    operations: list[QueryOp | UpdateOp]

    def query_count(self) -> int:
        """Number of view queries in the operation stream."""
        return sum(1 for op in self.operations if isinstance(op, QueryOp))

    def update_count(self) -> int:
        """Number of update transactions in the operation stream."""
        return sum(1 for op in self.operations if isinstance(op, UpdateOp))


# ----------------------------------------------------------------------
# schemas
# ----------------------------------------------------------------------
def _model1_schema(tuple_bytes: int) -> Schema:
    return Schema("r", ("id", "a", "pay1", "pay2"), "id", tuple_bytes=tuple_bytes)


def _outer_schema(tuple_bytes: int) -> Schema:
    return Schema("r1", ("id", "a", "j", "pay"), "id", tuple_bytes=tuple_bytes)


def _inner_schema(tuple_bytes: int) -> Schema:
    return Schema("r2", ("j", "c", "pay2"), "j", tuple_bytes=tuple_bytes)


def _base_records(config: ScenarioConfig, schema: Schema, rng: random.Random) -> list[Record]:
    return [
        schema.new_record(
            id=i,
            a=rng.randrange(config.domain),
            pay1=rng.randrange(10_000),
            pay2=rng.randrange(10_000),
        )
        for i in range(config.params.N)
    ]


# ----------------------------------------------------------------------
# operation stream
# ----------------------------------------------------------------------
def _update_transaction(
    config: ScenarioConfig,
    rng: random.Random,
    relation: str,
    keys: list[int],
    fields: tuple[str, ...],
) -> Transaction:
    """One transaction updating ``l`` distinct tuples.

    Every update rewrites the predicate attribute ``a`` to a fresh
    uniform value (so old and new versions each lie in the view with
    probability ``f``, the paper's screening model) plus one payload
    field.
    """
    l = int(config.params.l)
    if config.update_skew == "hot":
        # 80% of updates land on the hottest 20% of keys.
        hot_pool = keys[: max(1, len(keys) // 5)]
        chosen_set: set[int] = set()
        while len(chosen_set) < min(l, len(keys)):
            pool = hot_pool if rng.random() < 0.8 else keys
            chosen_set.add(rng.choice(pool))
        chosen = sorted(chosen_set)
    else:
        chosen = rng.sample(keys, min(l, len(keys)))
    ops = [
        Update(
            key,
            {
                "a": rng.randrange(config.domain),
                fields[0]: rng.randrange(10_000),
            },
        )
        for key in chosen
    ]
    return Transaction.of(relation, ops)


def _query_range(config: ScenarioConfig, rng: random.Random) -> tuple[int, int]:
    """A random ``f_v``-sized range inside the view's key interval."""
    width = config.query_width
    hi_start = max(0, config.view_bound - width)
    lo = rng.randint(0, hi_start) if hi_start > 0 else 0
    return lo, lo + width - 1


def _interleave(
    config: ScenarioConfig,
    rng: random.Random,
    make_txn,
) -> list[QueryOp | UpdateOp]:
    """``k`` updates spread evenly among ``q`` queries.

    Uses fractional accumulation so any k:q ratio interleaves smoothly
    (e.g. k=5, q=20 runs a transaction every fourth query).
    """
    k, q = int(config.params.k), int(config.params.q)
    ops: list[QueryOp | UpdateOp] = []
    credit = 0.0
    per_query = k / q if q else 0.0
    issued = 0
    for _ in range(q):
        credit += per_query
        while credit >= 1.0 and issued < k:
            ops.append(UpdateOp(make_txn()))
            issued += 1
            credit -= 1.0
        lo, hi = _query_range(config, rng)
        ops.append(QueryOp(lo, hi))
    while issued < k:  # leftover updates (rounding)
        ops.append(UpdateOp(make_txn()))
        issued += 1
    return ops


# ----------------------------------------------------------------------
# scenario builders
# ----------------------------------------------------------------------
def build_scenario(config: ScenarioConfig) -> Scenario:
    """Build the database, view and operation stream for a config."""
    builders = {
        ViewModel.SELECT_PROJECT: _build_model1,
        ViewModel.JOIN: _build_model2,
        ViewModel.AGGREGATE: _build_model3,
    }
    return builders[config.model](config)


def _relation_kind(strategy: Strategy) -> str:
    return "hypothetical" if strategy is Strategy.DEFERRED else "plain"


def _build_model1(config: ScenarioConfig) -> Scenario:
    rng = random.Random(config.seed)
    db = Database.from_parameters(
        config.params,
        buffer_pages=config.buffer_pages,
        cold_operations=config.cold_operations,
    )
    schema = _model1_schema(config.params.S)
    records = _base_records(config, schema, rng)

    # The unclustered plan stores R clustered on the key and reaches
    # the predicate attribute through a secondary index; every other
    # strategy clusters on the predicate attribute (Section 3.1).
    clustered_on = "id" if config.strategy is Strategy.QM_UNCLUSTERED else "a"
    kind = _relation_kind(config.strategy) if config.include_view else "plain"
    db.create_relation(schema, clustered_on, kind=kind, records=records, ad_buckets=1)
    definition = SelectProjectView(
        name="v",
        relation="r",
        predicate=IntervalPredicate("a", 0, config.view_bound - 1, selectivity=config.params.f),
        projection=("id", "a"),
        view_key="a",
    )
    if config.include_view:
        db.define_view(definition, config.strategy, index_field="a")
    db.reset_meter()

    keys = list(range(config.params.N))
    make_txn = lambda: _update_transaction(config, rng, "r", keys, ("pay1",))
    ops = _interleave(config, rng, make_txn)
    return Scenario(config, db, "v", ops)


def _build_model2(config: ScenarioConfig) -> Scenario:
    rng = random.Random(config.seed)
    db = Database.from_parameters(
        config.params,
        buffer_pages=config.buffer_pages,
        cold_operations=config.cold_operations,
    )
    p = config.params
    inner_count = max(1, round(p.f_r2 * p.N))
    outer_schema = _outer_schema(p.S)
    inner_schema = _inner_schema(p.S)
    outer_records = [
        outer_schema.new_record(
            id=i,
            a=rng.randrange(config.domain),
            j=rng.randrange(inner_count),
            pay=rng.randrange(10_000),
        )
        for i in range(p.N)
    ]
    inner_records = [
        inner_schema.new_record(j=j, c=rng.randrange(10_000), pay2=rng.randrange(10_000))
        for j in range(inner_count)
    ]
    outer_kind = _relation_kind(config.strategy) if config.include_view else "plain"
    db.create_relation(outer_schema, "a", kind=outer_kind, records=outer_records, ad_buckets=1)
    buckets = max(8, inner_count // max(1, inner_schema.records_per_page(p.B)))
    db.create_relation(
        inner_schema, "j", kind="hashed", records=inner_records, hash_buckets=buckets
    )
    definition = JoinView(
        name="v",
        outer="r1",
        inner="r2",
        join_field="j",
        predicate=IntervalPredicate("a", 0, config.view_bound - 1, selectivity=p.f),
        outer_projection=("id", "a"),
        inner_projection=("j", "c"),
        view_key="a",
    )
    if config.include_view:
        db.define_view(definition, config.strategy)
    db.reset_meter()

    keys = list(range(p.N))
    make_txn = lambda: _update_transaction(config, rng, "r1", keys, ("pay",))
    ops = _interleave(config, rng, make_txn)
    return Scenario(config, db, "v", ops)


def _build_model3(config: ScenarioConfig) -> Scenario:
    rng = random.Random(config.seed)
    db = Database.from_parameters(
        config.params,
        buffer_pages=config.buffer_pages,
        cold_operations=config.cold_operations,
    )
    schema = _model1_schema(config.params.S)
    records = _base_records(config, schema, rng)
    kind = _relation_kind(config.strategy) if config.include_view else "plain"
    db.create_relation(schema, "a", kind=kind, records=records, ad_buckets=1)
    definition = AggregateView(
        name="v",
        relation="r",
        predicate=IntervalPredicate("a", 0, config.view_bound - 1, selectivity=config.params.f),
        aggregate=config.aggregate,
        field="pay1",
    )
    if config.include_view:
        db.define_view(definition, config.strategy)
    db.reset_meter()

    keys = list(range(config.params.N))
    make_txn = lambda: _update_transaction(config, rng, "r", keys, ("pay1",))
    ops = _interleave(config, rng, make_txn)
    return Scenario(config, db, "v", ops)
