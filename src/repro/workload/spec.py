"""Workload and scenario specifications mirroring Section 3.1.

A scenario fixes a (usually scaled-down) parameter set, a view model
and a maintenance strategy; the builder functions in
:mod:`repro.workload.generator` turn it into a ready
:class:`~repro.engine.database.Database` plus an operation stream of
``k`` update transactions (each modifying ``l`` tuples) interleaved
with ``q`` view queries (each reading a fraction ``f_v`` of the view).

The attribute domains are arranged so that the paper's selectivities
hold by construction: the predicate attribute ``a`` is uniform over
``[0, domain)`` and the view predicate is ``a < f * domain``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.parameters import Parameters
from repro.core.strategies import Strategy, ViewModel

__all__ = ["ScenarioConfig", "SCALED_DEFAULTS"]

#: A laptop-scale parameter set with the paper's *shape* (same f, f_v,
#: f_r2, cost constants; smaller N/k/q/l so simulations finish fast).
SCALED_DEFAULTS = Parameters(
    N=4_000,
    S=100,
    B=4_000,
    k=20,
    l=5,
    q=20,
    n=20,
    f=0.1,
    f_v=0.1,
    f_r2=0.1,
    c1=1.0,
    c2=30.0,
    c3=1.0,
)


@dataclass(frozen=True)
class ScenarioConfig:
    """Everything needed to build and run one simulation scenario."""

    params: Parameters = SCALED_DEFAULTS
    model: ViewModel = ViewModel.SELECT_PROJECT
    strategy: Strategy = Strategy.DEFERRED
    seed: int = 7
    #: Domain size of the predicate attribute ``a``; the predicate
    #: selects ``a < f * domain``.
    domain: int = 1_000
    #: Aggregate function for Model 3 scenarios.
    aggregate: str = "sum"
    #: Buffer pool pages.  Large enough to hold one operation's working
    #: set (intra-operation reuse is what produces Yao-function
    #: behaviour); the cold-operation flag empties it between ops.
    buffer_pages: int = 512
    #: Empty the buffer pool before every transaction and query so each
    #: operation is costed cold, matching the analytic formulas.
    cold_operations: bool = True
    #: When False, the scenario is built *without* the view (same base
    #: layout, same update stream): the calibration baseline used to
    #: isolate view-maintenance overhead.
    include_view: bool = True
    #: Update-key distribution: "uniform" (the paper's implicit model —
    #: every tuple equally likely) or "hot" (80% of updates hit the
    #: hottest 20% of keys, a temporal-locality extension).
    update_skew: str = "uniform"

    def __post_init__(self) -> None:
        if self.domain < 2:
            raise ValueError(f"domain must be >= 2, got {self.domain}")
        if int(self.params.k) != self.params.k or int(self.params.q) != self.params.q:
            raise ValueError("simulation scenarios need integer k and q")
        if int(self.params.l) != self.params.l:
            raise ValueError("simulation scenarios need integer l")
        if self.update_skew not in ("uniform", "hot"):
            raise ValueError(
                f"update_skew must be 'uniform' or 'hot', got {self.update_skew!r}"
            )

    @property
    def view_bound(self) -> int:
        """Exclusive upper bound of the view predicate on ``a``."""
        return max(1, round(self.params.f * self.domain))

    @property
    def query_width(self) -> int:
        """Width of a view query's range on ``a`` (fraction ``f_v``)."""
        return max(1, round(self.params.f_v * self.view_bound))

    def describe(self) -> str:
        """One-line scenario summary."""
        p = self.params
        return (
            f"Model {int(self.model)} / {self.strategy.label}: "
            f"N={p.N}, k={int(p.k)}, l={int(p.l)}, q={int(p.q)}, "
            f"f={p.f}, f_v={p.f_v}, P={p.P:.2f}, seed={self.seed}"
        )
