"""Workload specification, generation and simulation running."""

from .generator import QueryOp, Scenario, UpdateOp, build_scenario
from .runner import (
    SimulationResult,
    measure_base_update_cost,
    run_config,
    run_scenario,
)
from .spec import SCALED_DEFAULTS, ScenarioConfig

__all__ = [
    "QueryOp",
    "SCALED_DEFAULTS",
    "Scenario",
    "ScenarioConfig",
    "SimulationResult",
    "UpdateOp",
    "build_scenario",
    "measure_base_update_cost",
    "run_config",
    "run_scenario",
]
