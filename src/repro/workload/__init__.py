"""Workload specification, generation, simulation and live load."""

from .clients import (
    LoadReport,
    OpenLoopConfig,
    ZipfClientPopulation,
    demo_request_factory,
    exact_percentile,
    run_closed_loop,
    run_open_loop,
)
from .generator import QueryOp, Scenario, UpdateOp, build_scenario
from .runner import (
    SimulationResult,
    measure_base_update_cost,
    run_config,
    run_scenario,
)
from .spec import SCALED_DEFAULTS, ScenarioConfig

__all__ = [
    "LoadReport",
    "OpenLoopConfig",
    "QueryOp",
    "SCALED_DEFAULTS",
    "Scenario",
    "ScenarioConfig",
    "SimulationResult",
    "UpdateOp",
    "ZipfClientPopulation",
    "build_scenario",
    "demo_request_factory",
    "exact_percentile",
    "measure_base_update_cost",
    "run_config",
    "run_open_loop",
    "run_closed_loop",
    "run_scenario",
]
