"""Scenario execution: run the operation stream and price it.

The runner drives a built :class:`~repro.workload.generator.Scenario`
through its database, splitting measured cost between update
transactions and view queries, and reports the paper's headline
quantity — **average cost per view query** in milliseconds, with all
update-side maintenance overhead amortized over the queries, exactly
as the ``TOTAL_*`` formulas do.

Pure base-relation update cost (what a database *without* the view
would pay) is measured by a calibration run against a bare relation and
subtracted, so the reported figure isolates view-maintenance overhead
the way the cost model does.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.parameters import Parameters
from repro.core.strategies import Strategy, ViewModel
from repro.storage.pager import CostMeter
from .generator import Scenario, UpdateOp, build_scenario
from .spec import ScenarioConfig

__all__ = ["SimulationResult", "run_scenario", "run_config", "measure_base_update_cost"]


@dataclass
class SimulationResult:
    """Measured costs of one scenario run."""

    config: ScenarioConfig
    strategy: Strategy
    model: ViewModel
    queries: int
    updates: int
    query_meter: CostMeter
    update_meter: CostMeter
    #: Milliseconds of pure base-update work a view-less database would
    #: also pay (subtracted to isolate view-maintenance overhead).
    base_update_ms: float = 0.0
    #: Answers collected per query (sizes only, for sanity checks).
    answer_sizes: list = field(default_factory=list)

    @property
    def params(self) -> Parameters:
        return self.config.params

    @property
    def query_ms(self) -> float:
        return self.query_meter.milliseconds(self.params)

    @property
    def update_ms(self) -> float:
        return self.update_meter.milliseconds(self.params)

    @property
    def total_ms(self) -> float:
        return self.query_ms + self.update_ms

    @property
    def view_overhead_ms(self) -> float:
        """Total cost beyond what a bare (view-less) relation would pay.

        The bare-relation update cost is subtracted from the *total*
        rather than the update phase alone because deferred maintenance
        performs the base write-back inside its refresh (query phase):
        the paper treats that write-back as the "normal" update cost
        every scheme eventually pays, not as view overhead.
        """
        return max(0.0, self.total_ms - self.base_update_ms)

    @property
    def avg_cost_per_query(self) -> float:
        """The paper's metric: all view-related cost per view query."""
        if self.queries == 0:
            return 0.0
        return self.view_overhead_ms / self.queries

    @property
    def avg_total_per_query(self) -> float:
        """Total cost (including base updates) per view query."""
        if self.queries == 0:
            return 0.0
        return self.total_ms / self.queries

    def describe(self) -> str:
        """One-line result summary."""
        return (
            f"{self.strategy.label:<12} Model {int(self.model)}: "
            f"{self.avg_cost_per_query:9.1f} ms/query "
            f"(query phase {self.query_ms:.0f} ms, update phase "
            f"{self.update_ms:.0f} ms, base calibration "
            f"{self.base_update_ms:.0f} ms, {self.queries} queries)"
        )


def run_scenario(scenario: Scenario, base_update_ms: float = 0.0) -> SimulationResult:
    """Execute a built scenario and return measured costs."""
    db = scenario.database
    meter = db.meter
    query_meter = CostMeter()
    update_meter = CostMeter()
    answer_sizes = []
    queries = updates = 0

    for op in scenario.operations:
        before = meter.snapshot()
        if isinstance(op, UpdateOp):
            db.apply_transaction(op.txn)
            update_meter.merge(meter.diff(before))
            updates += 1
        else:
            answer = db.query_view(scenario.view_name, op.lo, op.hi)
            query_meter.merge(meter.diff(before))
            answer_sizes.append(len(answer) if isinstance(answer, list) else 1)
            queries += 1

    return SimulationResult(
        config=scenario.config,
        strategy=scenario.config.strategy,
        model=scenario.config.model,
        queries=queries,
        updates=updates,
        query_meter=query_meter,
        update_meter=update_meter,
        base_update_ms=base_update_ms,
        answer_sizes=answer_sizes,
    )


def measure_base_update_cost(config: ScenarioConfig) -> float:
    """Cost of the scenario's updates against a bare relation.

    Runs the identical update stream (same seed, same transactions)
    against a database with *no view defined*, measuring what any
    scheme would pay just to keep the base relation current.  Deferred
    scenarios calibrate against a plain relation too: the paper treats
    the base write-back as the "normal" cost and only the extra AD
    traffic as overhead.
    """
    from dataclasses import replace

    plain = replace(config, include_view=False)
    scenario = build_scenario(plain)
    db = scenario.database
    meter = db.meter
    total = 0.0
    for op in scenario.operations:
        if isinstance(op, UpdateOp):
            before = meter.snapshot()
            db.apply_transaction(op.txn)
            total += meter.diff(before).milliseconds(config.params)
    return total


def run_config(config: ScenarioConfig, calibrate: bool = True) -> SimulationResult:
    """Build and run a scenario from a config (with base calibration)."""
    base_ms = measure_base_update_cost(config) if calibrate else 0.0
    scenario = build_scenario(config)
    return run_scenario(scenario, base_update_ms=base_ms)
