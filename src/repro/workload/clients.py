"""Open-loop load generation against a live gateway.

Hanson's analysis assumes Poisson-ish arrival processes that do not
slow down when the system does; a *closed*-loop driver (issue, wait,
issue) accidentally self-throttles and can never push a server past
saturation.  The generator here is **open-loop**: request ``i`` is
issued at ``start + i/rate`` regardless of how many earlier requests
are still in flight, which is exactly the arrival process that makes
admission control necessary — and measurable.

The client population is heavy-tailed: client ``rank`` issues traffic
proportional to ``1 / rank**s`` (:class:`ZipfClientPopulation`), so a
few hot clients dominate, exercising the *per-client* token buckets
and concurrency guards rather than just the global ones.

Request factories yield ``(doc, validator)`` pairs; validators check
*invariants* of an admitted answer (tuples inside the queried range,
aggregate is a number, updates applied in full) so the overload
experiment can assert "zero wrong results" without assuming quiescence
mid-run.  Every completion lands in a :class:`LoadReport` with exact
per-outcome latency percentiles.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.gateway.client import AsyncGatewayClient, GatewayCallError

__all__ = [
    "LoadReport",
    "OpenLoopConfig",
    "ZipfClientPopulation",
    "demo_request_factory",
    "exact_percentile",
    "run_closed_loop",
    "run_open_loop",
]

#: factory(rng) -> (request doc sans client/deadline, validator or None);
#: validator(result) -> error string, or None when the answer is sound.
RequestFactory = Callable[
    [random.Random],
    tuple[dict[str, Any], Callable[[Any], str | None] | None],
]


class ZipfClientPopulation:
    """``n`` clients with Zipf(s) traffic shares: hot heads, long tail."""

    def __init__(
        self, n_clients: int, s: float = 1.1, seed: int = 0, prefix: str = "c",
    ) -> None:
        if n_clients < 1:
            raise ValueError(f"need at least one client, got {n_clients}")
        self.names = tuple(f"{prefix}{rank:03d}" for rank in range(1, n_clients + 1))
        raw = [1.0 / (rank ** s) for rank in range(1, n_clients + 1)]
        total = sum(raw)
        self.weights = tuple(w / total for w in raw)
        self._rng = random.Random(seed)

    def pick(self) -> str:
        """Draw one client name, weighted by the Zipf shares."""
        return self._rng.choices(self.names, weights=self.weights, k=1)[0]

    def share(self, top_k: int) -> float:
        """Traffic share of the ``top_k`` hottest clients (for tests)."""
        return sum(self.weights[:top_k])


def exact_percentile(values: list[float], q: float) -> float | None:
    """Exact ``q``-percentile (linear interpolation); ``None`` if empty."""
    if not values:
        return None
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"percentile must be in [0, 1], got {q}")
    ordered = sorted(values)
    position = q * (len(ordered) - 1)
    lo = int(position)
    hi = min(lo + 1, len(ordered) - 1)
    return ordered[lo] + (ordered[hi] - ordered[lo]) * (position - lo)


@dataclass
class LoadReport:
    """Everything one load run produced, percentile-ready."""

    offered: int = 0
    #: The offered-load window: goodput's denominator.  Open-loop runs
    #: use the scheduled window (``offered / rate``); the drain tail,
    #: bounded by the deadline budget, is reported as ``wall_s``.
    duration_s: float = 0.0
    #: Wall time including the drain of in-flight tails.
    wall_s: float = 0.0
    #: outcome label -> completion count.  Outcomes are ``ok``,
    #: ``ok_retry`` (full-fidelity answer that needed a replica
    #: retry), ``degraded``, the admission rejection labels, ``error``
    #: (engine exception) and ``lost`` (connection died mid-call).
    outcomes: dict[str, int] = field(default_factory=dict)
    latencies_ms: dict[str, list[float]] = field(default_factory=dict)
    #: Per-completion ``(monotonic_time, outcome)`` samples in
    #: completion order — what failover experiments slice into
    #: pre-kill / failover-window / post-window populations.
    samples: list[tuple[float, str]] = field(default_factory=list)
    #: Invariant violations in admitted answers — must stay empty.
    wrong: list[str] = field(default_factory=list)
    #: Engine error messages (first few, for diagnosis).
    errors: list[str] = field(default_factory=list)
    #: Gateway ``stats`` snapshot taken after the run, when available.
    server_stats: dict[str, Any] | None = None

    def record(
        self, outcome: str, latency_ms: float, at: float | None = None,
    ) -> None:
        """Count one completion under ``outcome`` with its latency."""
        self.outcomes[outcome] = self.outcomes.get(outcome, 0) + 1
        self.latencies_ms.setdefault(outcome, []).append(latency_ms)
        self.samples.append(
            (time.monotonic() if at is None else at, outcome)
        )

    @property
    def ok(self) -> int:
        return (
            self.outcomes.get("ok", 0)
            + self.outcomes.get("ok_retry", 0)
            + self.outcomes.get("degraded", 0)
        )

    @property
    def rejected(self) -> int:
        return sum(
            n for label, n in self.outcomes.items()
            if label.startswith("rejected_") or label == "expired"
        )

    def goodput(self) -> float:
        """Admitted-and-served requests per second."""
        return self.ok / self.duration_s if self.duration_s > 0 else 0.0

    def percentile(self, outcome: str, q: float) -> float | None:
        """Exact ``q``-percentile latency of ``outcome`` completions."""
        return exact_percentile(self.latencies_ms.get(outcome, []), q)

    def to_dict(self) -> dict[str, Any]:
        """Summary as plain data (raw latency lists are left out)."""
        summary = {
            outcome: {
                "count": self.outcomes[outcome],
                "p50_ms": self.percentile(outcome, 0.50),
                "p95_ms": self.percentile(outcome, 0.95),
                "p99_ms": self.percentile(outcome, 0.99),
            }
            for outcome in sorted(self.outcomes)
        }
        return {
            "offered": self.offered,
            "duration_s": round(self.duration_s, 3),
            "wall_s": round(self.wall_s, 3),
            "goodput_rps": round(self.goodput(), 3),
            "ok": self.ok,
            "rejected": self.rejected,
            "wrong_results": len(self.wrong),
            "wrong_samples": self.wrong[:5],
            "error_samples": self.errors[:5],
            "outcomes": summary,
            "server_stats": self.server_stats,
        }


@dataclass(frozen=True)
class OpenLoopConfig:
    """Offered load: how hard, how long, who, and with what budget."""

    #: Offered load in requests/second — issued on schedule, not on
    #: completion.
    rate: float = 200.0
    duration_s: float = 2.0
    #: Per-request deadline budget (wall ms); None sends no deadline.
    deadline_ms: float | None = 250.0
    n_clients: int = 20
    zipf_s: float = 1.1
    seed: int = 17


def demo_request_factory(
    relation: str = "r",
    tuples_view: str = "v_tuples",
    total_view: str = "v_total",
    view_bound: int = 100,
    key_count: int = 2000,
    query_fraction: float = 0.8,
) -> RequestFactory:
    """Requests (and validators) for the standard 2-view demo schema.

    Queries split between ``v_tuples`` range reads (validated: every
    returned tuple's ``a`` lies inside the queried interval) and
    ``v_total`` reads (validated: the sum is a number).  Updates rewrite
    the non-view attribute ``v`` of a random record (validated: the
    whole transaction applied).
    """

    def tuples_validator(lo: int, hi: int) -> Callable[[Any], str | None]:
        def check(result: Any) -> str | None:
            if not isinstance(result, Mapping) or result.get("kind") != "tuples":
                return f"{tuples_view}: expected a tuples answer, got {result!r}"
            for item in result.get("items", ()):
                a = item.get("a")
                if a is None or not lo <= a <= hi:
                    return f"{tuples_view}: tuple a={a!r} outside [{lo}, {hi}]"
            return None
        return check

    def total_validator(result: Any) -> str | None:
        if not isinstance(result, Mapping) or result.get("kind") != "scalar":
            return f"{total_view}: expected a scalar answer, got {result!r}"
        value = result.get("value")
        if value is not None and not isinstance(value, (int, float)):
            return f"{total_view}: non-numeric sum {value!r}"
        return None

    def update_validator(n_ops: int) -> Callable[[Any], str | None]:
        def check(result: Any) -> str | None:
            if not isinstance(result, Mapping) or result.get("applied") != n_ops:
                return f"update: expected {n_ops} ops applied, got {result!r}"
            return None
        return check

    def factory(rng: random.Random) -> tuple[
        dict[str, Any], Callable[[Any], str | None] | None
    ]:
        roll = rng.random()
        if roll < query_fraction / 2:
            lo = rng.randrange(view_bound)
            hi = min(view_bound - 1, lo + rng.randrange(1, view_bound // 2 + 1))
            return (
                {"op": "query", "view": tuples_view, "lo": lo, "hi": hi},
                tuples_validator(lo, hi),
            )
        if roll < query_fraction:
            return (
                {"op": "query", "view": total_view, "lo": None, "hi": None},
                total_validator,
            )
        ops = [{
            "kind": "update",
            "key": rng.randrange(key_count),
            "changes": {"v": rng.randrange(10_000)},
        }]
        return (
            {"op": "update", "relation": relation, "ops": ops},
            update_validator(len(ops)),
        )

    return factory


async def _issue(
    conn: AsyncGatewayClient,
    doc: dict[str, Any],
    validator: Callable[[Any], str | None] | None,
    report: LoadReport,
) -> None:
    started = time.monotonic()
    try:
        reply = await conn.call(doc)
    except GatewayCallError as exc:
        report.record("lost", (time.monotonic() - started) * 1000.0)
        report.errors.append(f"lost: {exc}")
        return
    latency_ms = (time.monotonic() - started) * 1000.0
    if reply.ok:
        result = reply.result
        if isinstance(result, Mapping) and result.get("degraded"):
            outcome = "degraded"
        elif isinstance(result, Mapping) and result.get("retried"):
            outcome = "ok_retry"
        else:
            outcome = "ok"
        report.record(outcome, latency_ms)
        if validator is not None:
            problem = validator(result)
            if problem is not None:
                report.wrong.append(problem)
    elif reply.rejected is not None:
        report.record(reply.rejected, latency_ms)
    else:
        report.record("error", latency_ms)
        report.errors.append(f"{reply.kind}: {reply.error}")


async def _connect_population(
    host: str, port: int, names: tuple[str, ...]
) -> dict[str, AsyncGatewayClient]:
    conns: dict[str, AsyncGatewayClient] = {}
    for name in names:
        conns[name] = await AsyncGatewayClient(host, port, client=name).connect()
    return conns


async def _close_all(conns: dict[str, AsyncGatewayClient]) -> None:
    for conn in conns.values():
        await conn.close()


async def run_open_loop_async(
    host: str,
    port: int,
    config: OpenLoopConfig,
    factory: RequestFactory,
    fetch_stats: bool = True,
) -> LoadReport:
    """Drive ``rate`` req/s for ``duration_s`` seconds, open loop."""
    population = ZipfClientPopulation(
        config.n_clients, config.zipf_s, seed=config.seed
    )
    rng = random.Random(config.seed + 1)
    report = LoadReport()
    conns = await _connect_population(host, port, population.names)
    tasks: list[asyncio.Task[None]] = []
    total = max(1, int(config.rate * config.duration_s))
    start = time.monotonic()
    try:
        for i in range(total):
            due = start + i / config.rate
            delay = due - time.monotonic()
            if delay > 0:
                await asyncio.sleep(delay)
            client = population.pick()
            doc, validator = factory(rng)
            doc["client"] = client
            if config.deadline_ms is not None:
                doc["deadline_ms"] = config.deadline_ms
            report.offered += 1
            tasks.append(
                asyncio.get_running_loop().create_task(
                    _issue(conns[client], doc, validator, report)
                )
            )
        await asyncio.gather(*tasks, return_exceptions=True)
        report.duration_s = total / config.rate
        report.wall_s = time.monotonic() - start
        if fetch_stats:
            async with AsyncGatewayClient(host, port, client="stats") as probe:
                report.server_stats = await probe.stats()
    finally:
        await _close_all(conns)
    return report


def run_open_loop(
    host: str,
    port: int,
    config: OpenLoopConfig,
    factory: RequestFactory,
    fetch_stats: bool = True,
) -> LoadReport:
    """Synchronous wrapper around :func:`run_open_loop_async`."""
    return asyncio.run(
        run_open_loop_async(host, port, config, factory, fetch_stats=fetch_stats)
    )


async def run_closed_loop_async(
    host: str,
    port: int,
    factory: RequestFactory,
    concurrency: int = 1,
    duration_s: float = 2.0,
    deadline_ms: float | None = None,
    seed: int = 29,
) -> LoadReport:
    """Closed-loop driver: each worker issues, awaits, repeats.

    This is the *saturation probe*: with enough workers to keep the
    gateway's own worker pool busy, its goodput is the throughput the
    backend can actually sustain — the denominator of the overload
    experiment's "goodput ≥ 80% of saturation" bar.
    """
    report = LoadReport()
    names = tuple(f"probe{i:02d}" for i in range(concurrency))
    conns = await _connect_population(host, port, names)
    start = time.monotonic()
    deadline = start + duration_s

    async def worker(name: str) -> None:
        rng = random.Random(seed + hash(name) % 1000)
        conn = conns[name]
        while time.monotonic() < deadline:
            doc, validator = factory(rng)
            doc["client"] = name
            if deadline_ms is not None:
                doc["deadline_ms"] = deadline_ms
            report.offered += 1
            await _issue(conn, doc, validator, report)

    try:
        await asyncio.gather(*(worker(name) for name in names))
        report.duration_s = time.monotonic() - start
        report.wall_s = report.duration_s
    finally:
        await _close_all(conns)
    return report


def run_closed_loop(
    host: str,
    port: int,
    factory: RequestFactory,
    concurrency: int = 1,
    duration_s: float = 2.0,
    deadline_ms: float | None = None,
    seed: int = 29,
) -> LoadReport:
    """Synchronous wrapper around :func:`run_closed_loop_async`."""
    return asyncio.run(run_closed_loop_async(
        host, port, factory, concurrency=concurrency, duration_s=duration_s,
        deadline_ms=deadline_ms, seed=seed,
    ))
