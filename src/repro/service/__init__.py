"""The serving layer: many views, live traffic, adaptive strategies.

The paper's conclusion is a *decision procedure* — which maintenance
strategy is cheapest depends on workload parameters (`P`, `l`, `f`,
`f_v`) that shift at runtime.  This package turns the one-shot
experiment harness into a long-lived **view server**:

* :mod:`repro.service.server` — :class:`ViewServer` hosts many named
  views over one shared :class:`~repro.engine.database.Database` and
  serves interleaved update/query traffic from multiple logical
  clients, sharing deferred refreshes per base relation.
* :mod:`repro.service.router` — :class:`AdaptiveRouter` keeps running
  workload statistics per view, re-runs the paper's advisor on live
  estimates, and migrates views between strategies with hysteresis.
* :mod:`repro.service.scheduler` — refresh policies beyond the paper's
  on-demand refresh: periodic every-*j*-queries and asynchronous
  background refresh, priced with :mod:`repro.core.policies`.
* :mod:`repro.service.metrics` — a counter/gauge/histogram registry
  recording per-view, per-strategy latency, refresh cost, AD-file
  depth, Bloom-filter screening and strategy migrations; exportable as
  JSON and as an ASCII dashboard.
* :mod:`repro.service.cache` — :class:`QueryResultCache`, a versioned
  (epoch-invalidated) result cache in front of the materialized read
  path; opt-in so the default cost accounting stays paper-faithful.
* :mod:`repro.service.traffic` — multi-client, multi-phase workload
  generation (drifting update probability) and a demo server builder.
* :mod:`repro.service.cli` — the ``repro-serve`` entry point.
"""

from .cache import QueryResultCache
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSchemaError,
    validate_metrics,
)
from .router import AdaptiveRouter, RouterConfig, StrategySwitch, WorkloadStats
from .scheduler import RefreshPolicy, RefreshScheduler, StalenessReport
from .server import ViewServer
from .traffic import (
    PhaseSpec,
    Request,
    ServiceDemo,
    TrafficSummary,
    demo_server,
    drifting_traffic,
    run_traffic,
)

__all__ = [
    "AdaptiveRouter",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSchemaError",
    "PhaseSpec",
    "QueryResultCache",
    "RefreshPolicy",
    "RefreshScheduler",
    "Request",
    "RouterConfig",
    "ServiceDemo",
    "StalenessReport",
    "StrategySwitch",
    "TrafficSummary",
    "ViewServer",
    "WorkloadStats",
    "demo_server",
    "drifting_traffic",
    "run_traffic",
    "validate_metrics",
]
