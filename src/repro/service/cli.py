"""``repro-serve``: drive the view server from the command line.

Replays a drifting-``P`` workload against the two-view demo server and
reports what it cost — with the adaptive router on (default) or pinned
to one static strategy::

    repro-serve                                  # adaptive, default drift
    repro-serve --static deferred                # a static baseline
    repro-serve --phases 0.15:70:3,0.9:70:8      # P:ops[:l] per phase
    repro-serve --json                           # metrics export (schema v1)
    repro-serve --dashboard                      # ASCII metrics dashboard
    repro-serve --state-dir st --checkpoint-every 50   # journaled + recoverable
    repro-serve --fault-profile mixed --degraded-reads # chaos + resilience
"""

from __future__ import annotations

import argparse
import sys

from repro.core.strategies import Strategy
from repro.resilience.faults import fault_profile, profile_names
from repro.resilience.policy import ResilienceConfig
from .router import RouterConfig
from .server import DEGRADABLE_ERRORS
from .traffic import PhaseSpec, demo_server, drifting_traffic, run_traffic

__all__ = ["main", "parse_phases"]

_STATIC_CHOICES = ("deferred", "immediate", "qm_clustered")

DEFAULT_PHASES = "0.15:70:3,0.9:70:8"


def parse_phases(text: str) -> tuple[PhaseSpec, ...]:
    """Parse ``P:ops[:l]`` comma-separated phase specs."""
    phases = []
    for chunk in text.split(","):
        parts = chunk.strip().split(":")
        if len(parts) not in (2, 3):
            raise ValueError(
                f"bad phase {chunk!r}: expected P:operations[:batch_size]"
            )
        p = float(parts[0])
        ops = int(parts[1])
        batch = int(parts[2]) if len(parts) == 3 else 5
        phases.append(PhaseSpec(operations=ops, update_probability=p, batch_size=batch))
    if not phases:
        raise ValueError("at least one phase is required")
    return tuple(phases)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve a drifting update/query workload over materialized "
        "views, with adaptive strategy routing (Hanson, SIGMOD 1987).",
    )
    parser.add_argument("--n-tuples", type=int, default=2000,
                        help="tuples in the base relation (default 2000)")
    parser.add_argument("--domain", type=int, default=1000,
                        help="attribute domain size (default 1000)")
    parser.add_argument("--view-bound", type=int, default=100,
                        help="view covers a in [0, bound) (default 100)")
    parser.add_argument("--phases", default=DEFAULT_PHASES,
                        help="comma-separated P:operations[:batch] phases "
                        f"(default {DEFAULT_PHASES!r})")
    parser.add_argument("--seed", type=int, default=7,
                        help="seed for data and traffic (default 7)")
    parser.add_argument("--static", choices=_STATIC_CHOICES, default=None,
                        help="pin one strategy instead of adaptive routing")
    parser.add_argument("--decision-every", type=int, default=20,
                        help="router re-decides every N ops per view (default 20)")
    parser.add_argument("--json", action="store_true",
                        help="print the metrics JSON export instead of the summary")
    parser.add_argument("--dashboard", action="store_true",
                        help="print the ASCII metrics dashboard after the summary")
    parser.add_argument("--state-dir", default=None, metavar="DIR",
                        help="durability state directory (WAL + checkpoints); "
                        "the run is journaled and recoverable with repro-recover")
    parser.add_argument("--checkpoint-every", type=int, default=None, metavar="N",
                        help="checkpoint every N served requests "
                        "(requires --state-dir)")
    parser.add_argument("--fault-profile", choices=profile_names(), default=None,
                        help="inject seeded storage faults after bootstrap; "
                        "also installs checksums, retries, breakers and "
                        "degraded serving")
    parser.add_argument("--fault-seed", type=int, default=None, metavar="SEED",
                        help="re-seed the fault profile's RNG "
                        "(requires --fault-profile)")
    parser.add_argument("--degraded-reads", action=argparse.BooleanOptionalAction,
                        default=True,
                        help="allow bounded-staleness stale reads as the last "
                        "degradation rung (default on; only meaningful with "
                        "--fault-profile)")
    parser.add_argument("--listen", default=None, metavar="HOST:PORT",
                        help="serve the demo over TCP via the repro.gateway "
                        "front door instead of replaying local traffic "
                        "(admission knobs: repro-gateway serve)")
    parser.add_argument("--listen-duration", type=float, default=None,
                        metavar="S", help="with --listen: serve for S seconds "
                        "then exit (default: until ^C)")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        phases = parse_phases(args.phases)
    except ValueError as exc:
        print(f"invalid phases: {exc}", file=sys.stderr)
        return 2
    if args.checkpoint_every is not None:
        if args.state_dir is None:
            print("--checkpoint-every requires --state-dir "
                  "(there is nowhere to write the checkpoint)", file=sys.stderr)
            return 2
        if args.checkpoint_every < 1:
            print(f"invalid --checkpoint-every {args.checkpoint_every}: "
                  "must be >= 1", file=sys.stderr)
            return 2
    if args.fault_seed is not None and args.fault_profile is None:
        print("--fault-seed requires --fault-profile", file=sys.stderr)
        return 2

    profile = None
    resilience = None
    if args.fault_profile is not None:
        profile = fault_profile(args.fault_profile, seed=args.fault_seed)
        resilience = ResilienceConfig(degraded_reads=args.degraded_reads)

    adaptive = args.static is None
    demo = demo_server(
        n_tuples=args.n_tuples,
        domain=args.domain,
        view_bound=args.view_bound,
        seed=args.seed,
        strategy=Strategy(args.static) if args.static else Strategy.DEFERRED,
        adaptive=adaptive,
        router_config=RouterConfig(decision_every=args.decision_every),
        fault_profile=profile,
        resilience=resilience,
    )
    if args.state_dir is not None:
        from repro.durability.manager import DurabilityManager

        manager = DurabilityManager(args.state_dir)
        demo.server.attach_durability(manager, checkpoint_every=args.checkpoint_every)
        # Baseline checkpoint: the demo bootstrap ran before journaling,
        # so recovery must start from a snapshot that includes it.
        demo.server.checkpoint()

    if args.listen is not None:
        # Thin shim: the gateway is the one network entry point; this
        # just hands it the demo server as a backend.
        from repro.gateway.cli import parse_listen, serve_until_interrupted
        from repro.gateway.server import ViewServerBackend

        try:
            host, port = parse_listen(args.listen)
        except ValueError as exc:
            print(f"invalid --listen: {exc}", file=sys.stderr)
            return 2
        try:
            return serve_until_interrupted(
                ViewServerBackend(demo.server), host, port,
                duration=args.listen_duration,
            )
        finally:
            demo.server.shutdown()

    requests = drifting_traffic(demo, phases, seed=args.seed + 1)
    try:
        summary = run_traffic(demo.server, requests)
    except DEGRADABLE_ERRORS as exc:
        # Base-relation or AD damage is beyond local repair; only a
        # WAL-backed run can recover from it.
        print(f"unrecoverable storage damage: {exc}", file=sys.stderr)
        if args.state_dir is None:
            print("hint: rerun with --state-dir DIR to arm checkpoint+WAL "
                  "recovery", file=sys.stderr)
        try:
            demo.server.shutdown()
        except DEGRADABLE_ERRORS:
            pass  # the WAL is sealed regardless; recovery replays it
        return 1
    manager = demo.server.durability
    # Unconditional graceful stop: with durability armed this takes the
    # final checkpoint and seals the WAL; without it the call is an
    # idempotent no-op — scripts can always pair a serve with a
    # shutdown without tracking whether --state-dir was given.
    demo.server.shutdown()

    total_ms = demo.database.meter.milliseconds(demo.server.params)
    per_query = total_ms / summary.queries if summary.queries else 0.0

    if args.json:
        print(demo.server.metrics_json())
        return 0

    mode = "adaptive" if adaptive else f"static {args.static}"
    print(f"served {summary.operations} requests "
          f"({summary.queries} queries, {summary.updates} updates) [{mode}]")
    print(f"total modelled cost {total_ms:.0f} ms, {per_query:.1f} ms/query")
    router = demo.server.router
    if router is not None:
        if router.switches:
            for sw in router.switches:
                print(f"  switch: {sw.view} {sw.from_strategy.label} -> "
                      f"{sw.to_strategy.label} at op {sw.at_operation} "
                      f"(P~{sw.estimated_p:.2f}, advantage {sw.relative_advantage:.0%})")
        else:
            print("  no strategy switches")
    for view in demo.view_names:
        report = demo.server.staleness(view)
        print(f"  {view}: strategy={demo.server.strategy_of(view).label}, "
              f"pending AD entries={report.pending_ad_entries}")
    if profile is not None:
        faults = demo.database.faults
        injected = dict(faults.injected) if faults is not None else {}
        mix = ", ".join(f"{k}={v}" for k, v in injected.items() if v) or "none"
        print(f"  faults[{profile.name}]: injected {mix}; "
              f"{summary.degraded} degraded answers, "
              f"{len(demo.server.degraded_views())} views still degraded")
    if args.state_dir is not None:
        assert manager is not None
        print(f"  durability: {manager.checkpoints_taken} checkpoints, "
              f"{manager.wal.records_appended} WAL records, "
              f"{manager.wal.fsyncs} fsyncs -> {args.state_dir}")
    if args.dashboard:
        print()
        print(demo.server.dashboard())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
