"""The view server: many views, one database, live traffic.

:class:`ViewServer` is the serving layer over
:class:`~repro.engine.database.Database`.  It hosts any number of
named views (each under its own maintenance strategy), applies update
transactions from logical clients, answers view queries, and around
every request:

* attributes the request's :class:`~repro.storage.pager.CostMeter`
  delta to per-view / per-strategy / per-client metrics (in modelled
  milliseconds, so measurements line up with the paper's formulas),
* lets the :class:`~repro.service.scheduler.RefreshScheduler` decide
  whether a deferred view folds its backlog now, later, or in
  background "idle time",
* feeds the :class:`~repro.service.router.AdaptiveRouter`, which may
  migrate a view to a cheaper strategy as the observed workload
  drifts.

Concurrency follows a striped reader-writer discipline (the full
write-up is ``docs/performance.md``):

* a **world** :class:`~repro.concurrency.RWLock` — request paths hold
  the read side, admin operations (migrations, checkpoints, recovery,
  repairs, registration) the write side;
* **striped** per-relation and per-view locks from a
  :class:`~repro.concurrency.LockManager`, acquired in one canonical
  sorted order (relations before views): updates and refresh epochs
  take the write side of the relation they fold plus the views they
  rewrite, while read-only queries on a fresh view share read locks —
  so queries against distinct views proceed concurrently and readers
  of one fresh view never block each other;
* one **engine mutex** serializing the short sections that touch the
  shared buffer pool and cost meter, with per-section meter deltas
  summed into a per-request cost box (a global before/after diff would
  misattribute cost across concurrent requests).

Deferred refreshes run through a
:class:`~repro.maintenance.planner.SharedDeltaPlanner`: one net-change
read per relation per epoch, fanned out to every dependent view, with
concurrent requests against the same stale relation coalescing onto a
single in-flight refresh.  An optional
:class:`~repro.service.cache.QueryResultCache` (off by default) serves
repeat queries of unchanged views without touching the engine, and an
optional pacing factor realizes modelled milliseconds as wall-clock
sleeps taken outside the engine mutex — which is what lets the
parallel benchmark's threads overlap their modelled I/O waits.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterator

from repro.concurrency import LockManager, Pacer, RWLock
from repro.core.parameters import PAPER_DEFAULTS, Parameters
from repro.core.strategies import Strategy
from repro.engine.database import CatalogError, Database, ViewMaintenanceError
from repro.engine.transaction import Transaction
from repro.hr.differential import HypotheticalRelation
from repro.maintenance.planner import SharedDeltaPlanner
from repro.resilience.degradation import (
    DegradedResult,
    describe_failure,
    qm_fallback_answer,
)
from repro.resilience.faults import FaultProfile
from repro.resilience.policy import RESILIENCE_ERRORS, ResilienceConfig
from repro.resilience.scrub import (
    ScrubReport,
    classify_file,
    scrub_database,
    view_files,
)
from repro.views.definition import AggregateView, JoinView, SelectProjectView
from .cache import QueryResultCache
from .metrics import MetricsRegistry
from .router import AdaptiveRouter
from .scheduler import RefreshPolicy, RefreshScheduler, StalenessReport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.durability.checkpoint import CheckpointInfo
    from repro.durability.manager import DurabilityManager

__all__ = ["ViewServer", "ServedView"]

#: Failure classes the server degrades on (everything the resilience
#: layer detects, plus the engine's post-commit view-maintenance wrap).
DEGRADABLE_ERRORS = RESILIENCE_ERRORS + (ViewMaintenanceError,)

_BREAKER_STATE_LEVELS = {"closed": 0.0, "half_open": 1.0, "open": 2.0}

ViewDefinition = SelectProjectView | JoinView | AggregateView


@dataclass
class ServedView:
    """Catalog entry the server keeps per hosted view."""

    definition: ViewDefinition
    #: Whether the adaptive router may migrate this view.
    adaptive: bool
    queries: int = 0
    updates_seen: int = 0


class _CostBox:
    """Per-request accumulator of engine-section meter deltas."""

    __slots__ = ("ms",)

    def __init__(self) -> None:
        self.ms = 0.0

    def add(self, ms: float) -> None:
        self.ms += ms


class ViewServer:
    """Serve interleaved update/query traffic over many views."""

    def __init__(
        self,
        database: Database,
        params: Parameters | None = None,
        router: AdaptiveRouter | None = None,
        scheduler: RefreshScheduler | None = None,
        registry: MetricsRegistry | None = None,
        resilience: ResilienceConfig | None = None,
        cache: QueryResultCache | None = None,
        pacing: float = 0.0,
        lock_timeout: float | None = None,
    ) -> None:
        self.database = database
        #: Cost constants used to convert meter deltas to milliseconds.
        self.params = params or PAPER_DEFAULTS
        self.router = router
        self.scheduler = scheduler or RefreshScheduler()
        self.metrics = registry or MetricsRegistry()
        self._catalog: dict[str, ServedView] = {}
        #: World lock: request paths read, admin operations write.
        self._world = RWLock("world")
        #: Striped per-relation ("rel:<name>") and per-view
        #: ("view:<name>") locks; sorted acquisition puts relations
        #: before views, the fixed lock-ordering discipline.
        self._locks = LockManager()
        #: Serializes engine sections (shared buffer pool + cost meter).
        self._engine_lock = threading.RLock()
        #: Guards serving-layer state dicts (catalog counters,
        #: degraded/missed/repair bookkeeping).
        self._state_lock = threading.RLock()
        self._lock_timeout = lock_timeout
        #: Shared-delta refresh planning (grouping + coalescing).
        self.planner = SharedDeltaPlanner(database)
        #: Optional versioned query-result cache (None = disabled, the
        #: paper-faithful default: every query pays its metered I/O).
        self.cache = cache
        #: Wall seconds per modelled millisecond; zero disables pacing.
        self.pacer = Pacer(pacing)
        #: Durability manager (WAL + checkpoints), armed by
        #: :meth:`attach_durability` or :meth:`open`.
        self.durability: "DurabilityManager | None" = None
        #: Degradation policy; defaults to whatever the engine was
        #: built with, so one config object drives the whole stack.
        self.resilience = (
            resilience if resilience is not None else database.resilience_config
        )
        #: Views currently serving degraded (view -> reason).
        self._degraded: dict[str, str] = {}
        #: Committed updates each degraded view has missed since
        #: degrading (feeds the stale-read staleness bound).
        self._missed_updates: dict[str, int] = {}
        #: Queued background repairs (view -> repair info dict).
        self._pending_repairs: dict[str, dict[str, Any]] = {}
        #: Base-relation or AD damage: escalate to checkpoint+WAL recovery.
        self._needs_recovery = False
        self._repairing = False
        #: Database factory for recovery repairs (set by :meth:`open`).
        self._database_factory: Any = None
        self._hook_disk_events(database)

    def _hook_disk_events(self, database: Database) -> None:
        resilient = database.resilient_disk
        if resilient is not None:
            resilient.listener = self._on_disk_event

    def _on_disk_event(self, event: str, **info: Any) -> None:
        """Metrics bridge for the resilient disk's retry/breaker events."""
        if event == "retry":
            self.metrics.counter("disk_retries_total", file=info["file"]).inc()
        elif event == "give_up":
            self.metrics.counter("disk_giveups_total", file=info["file"]).inc()
        elif event == "transition":
            self.metrics.counter(
                "breaker_transitions_total",
                file=info["file"],
                from_state=info["old"],
                to_state=info["new"],
            ).inc()
            self.metrics.gauge("breaker_state", file=info["file"]).set(
                _BREAKER_STATE_LEVELS[info["new"]]
            )

    @classmethod
    def open(
        cls,
        state_dir: Any,
        params: Parameters | None = None,
        router: AdaptiveRouter | None = None,
        scheduler: RefreshScheduler | None = None,
        registry: MetricsRegistry | None = None,
        default_config: dict[str, Any] | None = None,
        fsync_every: int = 1,
        checkpoint_every: int | None = None,
        fault_profile: FaultProfile | None = None,
        resilience: ResilienceConfig | None = None,
        cache: QueryResultCache | None = None,
        pacing: float = 0.0,
    ) -> "ViewServer":
        """Open a server over a durability state directory.

        Recovers whatever the directory holds (checkpoint restore + WAL
        replay), re-registers every recovered view with its saved policy
        and counters, arms write-ahead journaling, and exports recovery
        metrics (``recovery_replay_records``, ``recovery_ms``).  A fresh
        directory yields an empty server — register views as usual and
        they are journaled from the first operation.

        ``fault_profile``/``resilience`` rebuild the recovered engine
        with the same injection and retry/breaker disk stack the live
        instance uses (faults come back *disarmed*; arm them once the
        serving loop is ready).
        """
        from repro.durability.manager import DurabilityManager

        manager = DurabilityManager(state_dir, fsync_every=fsync_every)

        def factory(config: dict[str, Any]) -> Database:
            return Database(
                fault_profile=fault_profile, resilience=resilience, **config
            )

        start = time.perf_counter()
        db, report, service_state = manager.open(
            default_config, database_factory=factory
        )
        wall_ms = (time.perf_counter() - start) * 1000.0
        server = cls(
            db, params=params, router=router, scheduler=scheduler,
            registry=registry, resilience=resilience, cache=cache, pacing=pacing,
        )
        server.durability = manager
        server._database_factory = factory
        saved = service_state or {}
        if checkpoint_every is None:
            checkpoint_every = saved.get("checkpoint_every")
        server.scheduler.set_checkpoint_every(checkpoint_every)
        view_state = saved.get("views", {})
        for name, impl in db.views.items():
            state = view_state.get(name, {})
            entry = ServedView(db.view_definition(name), state.get("adaptive", True))
            entry.queries = state.get("queries", 0)
            entry.updates_seen = state.get("updates_seen", 0)
            server._catalog[name] = entry
            policy_doc = state.get("policy")
            policy = (
                RefreshPolicy(policy_doc["kind"], every=policy_doc.get("every", 1))
                if policy_doc
                else RefreshPolicy.on_demand()
            )
            server.scheduler.set_policy(name, policy)
            server._set_strategy_gauge(name, impl.strategy)
        server.metrics.counter("recoveries_total").inc()
        server.metrics.gauge("recovery_replay_records").set(report.replay_records)
        server.metrics.gauge("recovery_ms").set(report.milliseconds(server.params))
        server.metrics.gauge("recovery_wall_ms").set(wall_ms)
        server.metrics.gauge("recovery_full_recomputes").set(
            report.full_recomputes_during_replay
        )
        server._update_durability_gauges()
        return server

    # ------------------------------------------------------------------
    # locking plumbing
    # ------------------------------------------------------------------
    @contextmanager
    def _engine(self, box: _CostBox | None = None) -> Iterator[None]:
        """One engine section: exclusive pool/meter access, metered.

        The meter delta is taken inside the mutex (so it belongs to
        exactly this request) and, when pacing is enabled, realized as
        a wall sleep *after* the mutex is released — the caller still
        holds its striped locks, so concurrent requests on other views
        sleep through their modelled I/O simultaneously.
        """
        ms = 0.0
        with self._engine_lock:
            meter = self.database.meter
            before = meter.snapshot()
            try:
                yield
            finally:
                ms = meter.diff(before).milliseconds(self.params)
                if box is not None:
                    box.add(ms)
        self.pacer.pace(ms)

    @staticmethod
    def _sources_of(definition: ViewDefinition) -> tuple[str, ...]:
        if isinstance(definition, JoinView):
            return (definition.outer, definition.inner)
        return (definition.relation,)

    @staticmethod
    def _rel_locks(relations: Any) -> list[str]:
        return [f"rel:{name}" for name in relations]

    @staticmethod
    def _view_locks(views: Any) -> list[str]:
        return [f"view:{name}" for name in views]

    def _deferred_siblings(self, relation: str) -> list[str]:
        names = []
        for name in self.database.views_on(relation):
            impl = self.database.views.get(name)
            if impl is not None and impl.strategy is Strategy.DEFERRED:
                names.append(name)
        return names

    def _fold_lock_sets(self, relation: str) -> tuple[list[str], list[str]]:
        """Relations and views a fold of one relation may touch.

        The relation itself, every deferred sibling view it feeds, and
        those views' other source relations (a two-sided deferred join
        folds its inner relation's AD during the same refresh).
        """
        views = self._deferred_siblings(relation)
        relations = {relation}
        for name in views:
            impl = self.database.views.get(name)
            if impl is not None:
                relations.update(self._sources_of(impl.definition))
        return sorted(relations), views

    def _refresh_runner(self, relation: str, box: _CostBox):
        """Wrap a planner refresh in striped locks + an engine section."""

        def run(work: Any) -> None:
            relations, views = self._fold_lock_sets(relation)
            with self._locks.acquire(
                writes=self._rel_locks(relations) + self._view_locks(views),
                timeout=self._lock_timeout,
            ):
                with self._engine(box):
                    work()

        return run

    # ------------------------------------------------------------------
    # durability surface
    # ------------------------------------------------------------------
    def attach_durability(
        self, manager: "DurabilityManager", checkpoint_every: int | None = None
    ) -> None:
        """Arm write-ahead journaling on a live server.

        Operations from here on are journaled; take a :meth:`checkpoint`
        right after attaching so recovery never has to replay the
        pre-durability bootstrap (which is not in the log).
        """
        with self._world.write():
            self.durability = manager
            manager.attach(self.database)
            self.scheduler.set_checkpoint_every(checkpoint_every)
            self._update_durability_gauges()

    def checkpoint(self) -> "CheckpointInfo":
        """Snapshot engine + serving state, truncating the WAL behind it."""
        with self._world.write():
            manager = self._require_durability()
            start = time.perf_counter()
            info = manager.checkpoint(self.database, self._service_state())
            duration_ms = (time.perf_counter() - start) * 1000.0
            self.metrics.counter("checkpoints_total").inc()
            self.metrics.histogram("checkpoint_duration_ms").observe(duration_ms)
            self.metrics.gauge("checkpoint_bytes").set(info.bytes_written)
            self.scheduler.note_checkpoint()
            self._update_durability_gauges()
            return info

    def shutdown(self) -> None:
        """Graceful stop: final checkpoint, then seal the WAL.

        Idempotent — a second call is a no-op — and the durability
        resources are released (WAL sealed, journaling detached) even
        when the final checkpoint raises; the error still propagates so
        the caller knows the last snapshot is missing, but recovery can
        replay the sealed WAL regardless.
        """
        with self._world.write():
            manager = self.durability
            if manager is None:
                return
            try:
                self.checkpoint()
            finally:
                self.durability = None
                self.database.attach_journal(None)
                manager.close()

    # ------------------------------------------------------------------
    # catalog surface
    # ------------------------------------------------------------------
    def register_view(
        self,
        definition: ViewDefinition,
        strategy: Strategy,
        adaptive: bool = True,
        policy: RefreshPolicy | None = None,
        plan: str | None = None,
        index_field: str | None = None,
        refresh_every: int = 10,
        charge_setup: bool = False,
    ) -> None:
        """Host a view under a strategy and (optionally) a refresh policy.

        Setup I/O (materializing the initial copy) is reported in the
        ``view_setup_ms`` metric; unless ``charge_setup`` it is then
        cleared from the database meter, mirroring the paper's practice
        of excluding initial materialization from per-query costs.
        """
        with self._world.write():
            meter = self.database.meter
            before = meter.snapshot()
            self.database.define_view(
                definition, strategy,
                plan=plan, index_field=index_field, refresh_every=refresh_every,
            )
            setup = meter.diff(before)
            self._catalog[definition.name] = ServedView(definition, adaptive)
            self.scheduler.set_policy(
                definition.name, policy or RefreshPolicy.on_demand()
            )
            # define_view charges materialization to the meter's setup
            # bucket, so the workload counters are already untouched.
            self.metrics.gauge("view_setup_ms", view=definition.name).set(
                setup.setup_milliseconds(self.params)
            )
            self._set_strategy_gauge(definition.name, strategy)
            if charge_setup:
                # Fold exactly this view's setup delta into the workload
                # counters (earlier bucket contents stay in the bucket).
                meter.page_reads += setup.setup_page_reads
                meter.page_writes += setup.setup_page_writes
                meter.screens += setup.setup_screens
                meter.ad_ops += setup.setup_ad_ops
                meter.setup_page_reads -= setup.setup_page_reads
                meter.setup_page_writes -= setup.setup_page_writes
                meter.setup_screens -= setup.setup_screens
                meter.setup_ad_ops -= setup.setup_ad_ops

    def views(self) -> tuple[str, ...]:
        return tuple(self._catalog)

    def definition_of(self, name: str) -> ViewDefinition:
        return self._entry(name).definition

    def strategy_of(self, name: str) -> Strategy:
        impl = self.database.views.get(name)
        if impl is None:
            raise CatalogError(f"unknown view {name!r}")
        return impl.strategy

    # ------------------------------------------------------------------
    # traffic surface
    # ------------------------------------------------------------------
    def apply_update(self, txn: Transaction, client: str = "anon") -> None:
        """Apply one update transaction and run the post-update hooks.

        The transaction's own cost lands in ``update_ms`` per affected
        view's strategy; background refreshes triggered by async
        policies are measured separately (``background_refresh_ms``) —
        they model idle-time work off the request's critical path.

        The apply itself runs under the transaction relation's write
        lock plus the affected views' write locks; a base-path failure
        escalates to checkpoint+WAL recovery under the exclusive world
        lock (the transaction was journaled before any page was
        touched, so it is not lost).
        """
        box = _CostBox()
        with self._world.read(self._lock_timeout):
            status, failure = self._apply_locked(txn, box)
        if status == "recover":
            with self._world.write(self._lock_timeout):
                recovered = self._recover_from_durability("update")
            if not recovered:
                assert failure is not None
                raise failure
        with self._world.read(self._lock_timeout):
            routed = self._apply_bookkeeping(txn, client, box)
        self._post_request(routed_views=routed)

    def _apply_locked(
        self, txn: Transaction, box: _CostBox
    ) -> tuple[str, Exception | None]:
        affected = self.database.views_on(txn.relation)
        lock_names = self._rel_locks([txn.relation]) + self._view_locks(affected)
        with self._locks.acquire(writes=lock_names, timeout=self._lock_timeout):
            try:
                with self._engine(box):
                    self.database.apply_transaction(txn)
                    self._settle_if_no_deferred(txn.relation)
            except ViewMaintenanceError as exc:
                # The base mutation committed; only the named views'
                # stored copies are suspect.  Degrade them and move on.
                if self.resilience is None:
                    raise
                for view_name, view_exc in exc.failures:
                    reason, file = describe_failure(view_exc)
                    self._mark_degraded(view_name, f"update:{reason}", file)
                self.metrics.counter(
                    "update_maintenance_failures_total", relation=txn.relation
                ).inc()
            except DEGRADABLE_ERRORS as exc:
                # Base-path failure.  The transaction was journaled
                # *before* any page was touched, so checkpoint+WAL
                # recovery replays it in full — the update is not lost.
                if self.resilience is None:
                    raise
                self.metrics.counter(
                    "update_base_failures_total", relation=txn.relation
                ).inc()
                return "recover", exc
            if self.cache is not None:
                self.cache.bump(txn.relation)
        return "ok", None

    def _apply_bookkeeping(
        self, txn: Transaction, client: str, box: _CostBox
    ) -> tuple[str, ...]:
        """Post-commit accounting; runs on the (possibly recovered) engine."""
        affected = self.database.views_on(txn.relation)
        with self._state_lock:
            for name in self._degraded:
                if name in affected:
                    self._missed_updates[name] = self._missed_updates.get(name, 0) + 1
        self.metrics.counter("updates_total", client=client).inc()
        self.metrics.histogram("update_ms", relation=txn.relation).observe(box.ms)
        routed: list[str] = []
        for name in affected:
            entry = self._catalog.get(name)
            if entry is None:
                continue
            with self._state_lock:
                entry.updates_seen += 1
            if self.router is not None and entry.adaptive:
                self.router.observe_update(name, len(txn))
                routed.append(name)
        self._run_background_refreshes(txn.relation, affected)
        self._note_relation_health(txn.relation)
        return tuple(routed)

    def query(self, name: str, lo: Any = None, hi: Any = None, client: str = "anon") -> Any:
        """Answer a view query under the view's strategy and policy.

        A deferred view whose periodic policy says "not yet" serves the
        stale stored copy directly (staleness is tracked and exported);
        every other path goes through the strategy's own ``query``.

        With a resilience config installed, a failure of the normal
        path (checksum mismatch, exhausted retries, open breaker)
        degrades instead of raising: the answer is served via
        query-modification fallback or a bounded-staleness stale read,
        wrapped in a :class:`~repro.resilience.degradation.DegradedResult`
        naming the reason and the bound, and a background repair is
        queued.  Only when every rung fails does the query raise.

        When a :class:`~repro.service.cache.QueryResultCache` is
        installed, a fresh answer whose source relations' epochs are
        unchanged is served straight from the cache without touching
        the engine.
        """
        entry = self._entry(name)
        box = _CostBox()
        cached = self._cache_probe(name, entry, lo, hi, client)
        if cached is not None:
            self._post_request(observe_query=(name, lo, hi))
            return cached[0]
        with self._world.read(self._lock_timeout):
            answer, degraded, token = self._query_locked(
                name, entry, lo, hi, client, box
            )
        if self.cache is not None and degraded is None and token is not None:
            self.cache.put(name, lo, hi, token, answer)
        if degraded is None:
            self._post_request(observe_query=(name, lo, hi))
        else:
            self._post_request()
        return answer

    def _cache_probe(
        self, name: str, entry: ServedView, lo: Any, hi: Any, client: str
    ) -> tuple[Any] | None:
        """Serve from the cache when possible; ``None`` means miss."""
        cache = self.cache
        if cache is None:
            return None
        with self._state_lock:
            if name in self._degraded:
                return None
        impl = self.database.views.get(name)
        if impl is None:
            return None
        sources = self._sources_of(entry.definition)
        with self._world.read(self._lock_timeout):
            with self._locks.acquire(
                reads=self._rel_locks(sources), timeout=self._lock_timeout
            ):
                token = cache.epoch_token(sources)
                hit, answer = cache.get(name, lo, hi, token)
        if not hit:
            return None
        with self._state_lock:
            entry.queries += 1
        self.metrics.counter("queries_total", client=client).inc()
        self.metrics.counter("cache_hits_total", view=name).inc()
        self.metrics.histogram(
            "query_ms", view=name, strategy=impl.strategy.value
        ).observe(0.0)
        return (answer,)

    def _query_locked(
        self, name: str, entry: ServedView, lo: Any, hi: Any, client: str, box: _CostBox
    ) -> tuple[Any, DegradedResult | None, Any]:
        impl = self.database.views.get(name)
        with self._state_lock:
            known_degraded = name in self._degraded
            degraded_reason = self._degraded.get(name)
        if impl is None and (self.resilience is None or not known_degraded):
            # Only a degraded, repair-pending view may be missing
            # its engine-side impl (vanished mid-composite-op).
            raise CatalogError(f"unknown view {name!r}")
        strategy = impl.strategy if impl is not None else None
        strategy_label = strategy.value if strategy is not None else "unavailable"
        sources = self._sources_of(entry.definition)
        exclusive = self._rel_locks(sources) + self._view_locks([name])
        degraded: DegradedResult | None = None
        token = None
        try:
            if self.resilience is not None and known_degraded:
                # Known-bad view: don't poke the broken machinery
                # (and its breakers) again until repair clears it.
                with self._locks.acquire(
                    writes=exclusive, timeout=self._lock_timeout
                ):
                    degraded = self._serve_degraded(
                        name, entry, impl, lo, hi, degraded_reason, box
                    )
                answer = degraded
            else:
                assert impl is not None and strategy is not None
                try:
                    answer, token = self._query_normal(
                        name, entry, impl, strategy, lo, hi, sources, box
                    )
                except DEGRADABLE_ERRORS as exc:
                    if self.resilience is None:
                        raise
                    reason, file = describe_failure(exc)
                    self._degrade_with_siblings(name, reason, file)
                    with self._locks.acquire(
                        writes=exclusive, timeout=self._lock_timeout
                    ):
                        degraded = self._serve_degraded(
                            name, entry, impl, lo, hi, reason, box
                        )
                    answer = degraded
        finally:
            with self._state_lock:
                entry.queries += 1
            self.metrics.counter("queries_total", client=client).inc()
            self.metrics.histogram(
                "query_ms", view=name, strategy=strategy_label
            ).observe(box.ms)
        return answer, degraded, token

    def _query_normal(
        self,
        name: str,
        entry: ServedView,
        impl: Any,
        strategy: Strategy,
        lo: Any,
        hi: Any,
        sources: tuple[str, ...],
        box: _CostBox,
    ) -> tuple[Any, Any]:
        """The healthy serving path (strategy + refresh policy).

        Returns ``(answer, cache_token)``; the token is non-None only
        when the answer is *fresh* (reflects every update applied so
        far), which is the precondition for caching it.
        """
        refresh_now = self.scheduler.should_refresh_on_query(name)
        shared = self._rel_locks(sources) + self._view_locks([name])
        token = None
        if strategy is Strategy.DEFERRED:
            relation = sources[0]
            if refresh_now:
                # Fold first (one shared-delta epoch, coalesced with any
                # concurrent request on the same relation), then serve
                # the freshly-installed copy under read locks.
                self.planner.refresh(relation, run=self._refresh_runner(relation, box))
            with self._locks.acquire(reads=shared, timeout=self._lock_timeout):
                with self._engine(box):
                    answer = self._stale_read(impl, lo, hi)
                    # A join's inner backlog isn't visible through the
                    # outer HR, so only single-source views qualify.
                    fresh = len(sources) == 1 and impl.relation.ad_entry_count() == 0
                if fresh and self.cache is not None:
                    token = self.cache.epoch_token(sources)
            if refresh_now:
                self.scheduler.note_refreshed(name)
            else:
                self.scheduler.note_stale_answer(name)
        elif strategy.is_query_modification():
            # QM folds pending AD into the base before reading it, which
            # rewrites any deferred siblings too — exclusive locks over
            # the whole fold set.
            relations, views = self._fold_lock_sets(sources[0])
            relations = sorted(set(relations) | set(sources))
            views = sorted(set(views) | {name})
            with self._locks.acquire(
                writes=self._rel_locks(relations) + self._view_locks(views),
                timeout=self._lock_timeout,
            ):
                with self._engine(box):
                    self._settle_for_query_modification(entry.definition)
                    answer = self.database.query_view(name, lo, hi)
                if self.cache is not None:
                    token = self.cache.epoch_token(sources)
        else:
            with self._locks.acquire(reads=shared, timeout=self._lock_timeout):
                with self._engine(box):
                    answer = self.database.query_view(name, lo, hi)
                # Immediate maintenance keeps the copy always-fresh;
                # other materialized variants (snapshot, hybrid) may
                # serve stale and are never cached.
                if strategy is Strategy.IMMEDIATE and self.cache is not None:
                    token = self.cache.epoch_token(sources)
        return answer, token

    def refresh_all_stale(self) -> tuple[str, ...]:
        """One shared-delta epoch over every relation with a backlog.

        The entry point cluster-wide refresh coordination drives: each
        stale relation folds its net change exactly once (concurrent
        callers coalesce through the planner as usual), and the names
        of the relations actually refreshed are returned so the caller
        can account epochs.  Relations with an empty backlog cost
        nothing.
        """
        refreshed: list[str] = []
        with self._world.read(self._lock_timeout):
            for relation, views in sorted(self.planner.groups().items()):
                if self.planner.pending(relation) == 0:
                    continue
                box = _CostBox()
                if self.planner.refresh(
                    relation, run=self._refresh_runner(relation, box)
                ):
                    refreshed.append(relation)
                    self.metrics.histogram(
                        "refresh_epoch_ms", relation=relation
                    ).observe(box.ms)
                    for name in views:
                        self.scheduler.note_refreshed(name)
        return tuple(refreshed)

    def _serve_degraded(
        self,
        name: str,
        entry: ServedView,
        impl: Any,
        lo: Any,
        hi: Any,
        reason: str,
        box: _CostBox,
    ) -> DegradedResult:
        """Walk the degradation ladder for one query.

        Rung 1 — query-modification fallback: recompute from the
        logical base content (needs no materialized state; fresh, bound
        0).  Rung 2 — bounded-staleness stale read of the last good
        materialized copy.  Both rungs failing makes the query
        unavailable: the original failure is re-raised.
        """
        config = self.resilience
        assert config is not None
        try:
            with self._engine(box):
                answer = qm_fallback_answer(self.database, entry.definition, lo, hi)
            mode, bound = "qm_fallback", 0
        except DEGRADABLE_ERRORS as qm_exc:
            bound = self._staleness_bound(name, entry.definition)
            stale_ok = impl is not None and config.degraded_reads and (
                config.staleness_limit is None or bound <= config.staleness_limit
            )
            if not stale_ok:
                self.metrics.counter("unavailable_queries_total", view=name).inc()
                raise qm_exc
            try:
                with self._engine(box):
                    answer = self._stale_read(impl, lo, hi)
            except DEGRADABLE_ERRORS:
                self.metrics.counter("unavailable_queries_total", view=name).inc()
                raise qm_exc from None
            mode = "stale_read"
        self.metrics.counter("degraded_queries_total", view=name, mode=mode).inc()
        if impl is not None:
            strategy_label = impl.strategy.value
        else:  # vanished mid-composite-op; report the repair target
            with self._state_lock:
                target = self._pending_repairs.get(name, {}).get("strategy")
            strategy_label = target.value if target is not None else "unavailable"
        return DegradedResult(
            answer=answer,
            view=name,
            mode=mode,
            reason=reason,
            staleness_bound=bound,
            strategy=strategy_label,
        )

    def _staleness_bound(self, name: str, definition: ViewDefinition) -> int:
        """Updates a degraded view's stored copy may be missing.

        Pending AD entries (the copy's refresh backlog) plus every
        committed update the view has missed since degrading.
        """
        relation_name = (
            definition.outer if isinstance(definition, JoinView)
            else definition.relation
        )
        relation = self.database.relations.get(relation_name)
        pending = 0
        if isinstance(relation, HypotheticalRelation):
            try:
                pending = relation.ad_entry_count()
            except DEGRADABLE_ERRORS:
                # The AD file itself is unreadable; fall back to the
                # last exported health gauge.
                pending = int(
                    self.metrics.gauge("ad_entries", relation=relation_name).value
                )
        with self._state_lock:
            missed = self._missed_updates.get(name, 0)
        return pending + missed

    # ------------------------------------------------------------------
    # migration
    # ------------------------------------------------------------------
    def migrate(self, name: str, strategy: Strategy) -> None:
        """Move a view to another strategy, pricing the migration."""
        with self._world.write():
            old = self.strategy_of(name)
            if old is strategy:
                return
            meter = self.database.meter
            before = meter.snapshot()
            try:
                self.database.migrate_view(name, strategy)
            except DEGRADABLE_ERRORS as exc:
                if self.resilience is None:
                    raise
                reason, file = describe_failure(exc)
                self.metrics.counter("migration_failures_total", view=name).inc()
                if name not in self.database.views:
                    # The fault hit between the migration's drop and its
                    # re-define: the view vanished from the catalog.
                    # The composite "migrate" WAL record (journaled
                    # before the drop) replays the whole migration, so
                    # the live repair restores under the *target*
                    # strategy, unjournaled.
                    self._pending_repairs[name] = {
                        "kind": "redefine",
                        "definition": self._entry(name).definition,
                        "strategy": strategy,
                    }
                self._degrade_with_siblings(name, f"migrate:{reason}", file)
                self._run_repairs()
                return
            ms = meter.diff(before).milliseconds(self.params)
            self.metrics.counter(
                "strategy_switches_total",
                view=name, from_strategy=old.value, to_strategy=strategy.value,
            ).inc()
            self.metrics.histogram("migration_ms", view=name).observe(ms)
            self._set_strategy_gauge(name, strategy)

    # ------------------------------------------------------------------
    # observability surface
    # ------------------------------------------------------------------
    def staleness(self, name: str) -> StalenessReport:
        """How far behind the live relation a view's answers may be."""
        with self._world.read(self._lock_timeout):
            entry = self._entry(name)
            definition = entry.definition
            relation_name = (
                definition.outer if isinstance(definition, JoinView)
                else definition.relation
            )
            relation = self.database.relations[relation_name]
            pending = (
                relation.ad_entry_count()
                if isinstance(relation, HypotheticalRelation)
                else 0
            )
            if self.strategy_of(name).is_query_modification():
                pending = 0  # recomputation always sees the true relation
            return StalenessReport(
                view=name,
                policy=self.scheduler.policy_of(name).kind,
                pending_ad_entries=pending,
                queries_since_refresh=self.scheduler.queries_since_refresh(name),
            )

    def metrics_dict(self) -> dict[str, Any]:
        return self.metrics.to_dict()

    def metrics_json(self, indent: int | None = 2) -> str:
        return self.metrics.to_json(indent=indent)

    def dashboard(self) -> str:
        return self.metrics.render_dashboard()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _entry(self, name: str) -> ServedView:
        entry = self._catalog.get(name)
        if entry is None:
            raise CatalogError(f"view {name!r} is not registered with this server")
        return entry

    @staticmethod
    def _query_width(lo: Any, hi: Any) -> float | None:
        try:
            return float(hi - lo + 1) if lo is not None and hi is not None else None
        except TypeError:
            return None

    def _set_strategy_gauge(self, name: str, strategy: Strategy) -> None:
        # One-hot over the strategies this view has ever run under.
        for inst in self.metrics.series("view_strategy"):
            if dict(inst.labels).get("view") == name:
                inst.set(0.0)
        self.metrics.gauge("view_strategy", view=name, strategy=strategy.value).set(1.0)

    def _settle_for_query_modification(self, definition: ViewDefinition) -> None:
        """QM plans read base files — fold any pending AD first."""
        sources = (
            (definition.outer,) if isinstance(definition, JoinView)
            else (definition.relation,)
        )
        for source in sources:
            self.database.settle_relation(source)

    def _stale_read(self, impl: Any, lo: Any, hi: Any) -> Any:
        """Read a deferred view's stored copy without refreshing it."""
        meter = self.database.meter
        if self.database.cold_operations:
            self.database.pool.invalidate_all()
        store = getattr(impl, "store", None)
        if store is not None:  # aggregate: one state-page read
            answer = store.value()
        else:
            lo_b = float("-inf") if lo is None else lo
            hi_b = float("inf") if hi is None else hi
            answer = impl.matview.read_range(lo_b, hi_b)
            meter.record_screen(len(answer))
        self.database.pool.flush_all()
        self.database.queries_answered += 1
        return answer

    def _settle_if_no_deferred(self, relation_name: str) -> None:
        """Fold a hypothetical relation eagerly when nothing defers.

        Keeping relations hypothetical is what lets a view migrate back
        to deferred later, but someone must eventually fold the AD
        backlog.  The timing follows the strategies present:

        * a deferred view exists — its refresh folds (batched, the
          paper's scheme); leave the backlog alone.
        * only query-modification views — fold lazily at query time
          (:meth:`_settle_for_query_modification`), which batches the
          fold exactly like a deferred refresh would.
        * an immediate/snapshot-style materialized view exists (or no
          view at all) — fold now, per transaction: write-through
          semantics, the substrate the immediate cost model assumes.
        """
        relation = self.database.relations.get(relation_name)
        if not isinstance(relation, HypotheticalRelation):
            return
        strategies = set()
        for name in self.database.views_on(relation_name):
            impl = self.database.views.get(name)
            if impl is not None:
                strategies.add(impl.strategy)
        if Strategy.DEFERRED in strategies:
            return
        if strategies and all(s.is_query_modification() for s in strategies):
            return
        self.database.settle_relation(relation_name)

    def _run_background_refreshes(self, relation: str, affected: tuple[str, ...]) -> None:
        """Async-policy views fold their backlog right after the update.

        The work is real and metered (``background_refresh_ms``), but
        kept out of ``update_ms``/``query_ms`` — it models the idle-CPU
        refresh of the paper's Section 4.  Each relation folds once per
        update (the planner's shared-delta epoch covers every sibling).
        """
        refreshed_relations: set[str] = set()
        for name in affected:
            if not self.scheduler.wants_background_refresh(name):
                continue
            impl = self.database.views.get(name)
            if impl is None or impl.strategy is not Strategy.DEFERRED:
                continue
            rel = impl.relation.schema.name
            if rel in refreshed_relations:
                continue  # the shared epoch already refreshed the siblings
            bg_box = _CostBox()
            try:
                self.planner.refresh(rel, run=self._refresh_runner(rel, bg_box))
            except DEGRADABLE_ERRORS as exc:
                if self.resilience is None:
                    raise
                reason, file = describe_failure(exc)
                self._degrade_with_siblings(name, f"refresh:{reason}", file)
                continue
            self.metrics.histogram("background_refresh_ms", view=name).observe(
                bg_box.ms
            )
            self.scheduler.note_refreshed(name)
            refreshed_relations.add(rel)

    def _note_relation_health(self, relation_name: str) -> None:
        relation = self.database.relations.get(relation_name)
        if not isinstance(relation, HypotheticalRelation):
            return
        try:
            entries = relation.ad_entry_count()
            pages = relation.ad_page_count()
        except DEGRADABLE_ERRORS:
            if self.resilience is None:
                raise
            return  # keep the last good gauges
        self.metrics.gauge("ad_entries", relation=relation_name).set(entries)
        self.metrics.gauge("ad_pages", relation=relation_name).set(pages)
        bloom = relation.bloom
        self.metrics.gauge("bloom_fill_fraction", relation=relation_name).set(
            bloom.fill_fraction
        )
        self.metrics.gauge("bloom_negative_rate", relation=relation_name).set(
            bloom.negative_rate
        )

    def _post_request(
        self,
        routed_views: tuple[str, ...] = (),
        observe_query: tuple[str, Any, Any] | None = None,
    ) -> None:
        """Tail-of-request hooks, run after the world read lock drops.

        Router decisions, cadence checkpoints and queued repairs all
        mutate shared state, so they escalate to the world *write* lock
        — but only when actually due (``decision_due`` and the repair
        queue are checked first), so the hot path almost never pays the
        exclusive lock.
        """
        if self.router is not None:
            if observe_query is not None:
                name, lo, hi = observe_query
                entry = self._catalog.get(name)
                if entry is not None and entry.adaptive:
                    self.router.observe_query(name, self._query_width(lo, hi))
                    if self.router.decision_due(name):
                        with self._world.write():
                            self._maybe_route(name)
            for name in routed_views:
                if self.router.decision_due(name):
                    with self._world.write():
                        self._maybe_route(name)
        self._note_durability_op()
        self._note_resilience_gauges()
        self._tail_repairs()

    def _maybe_route(self, name: str) -> None:
        assert self.router is not None
        switch = self.router.maybe_switch(self, name)
        if switch is not None:
            self.metrics.gauge("router_estimated_p", view=name).set(switch.estimated_p)

    def _tail_repairs(self) -> None:
        """Run queued repairs at the tail of a request, exclusively."""
        if self.resilience is None or not self.resilience.repair:
            return
        with self._state_lock:
            due = bool(self._pending_repairs) or self._needs_recovery
        if not due:
            return
        with self._world.write():
            self._run_repairs()

    # ------------------------------------------------------------------
    # durability internals
    # ------------------------------------------------------------------
    def _require_durability(self) -> "DurabilityManager":
        if self.durability is None:
            raise RuntimeError(
                "no durability manager attached; use ViewServer.open() or "
                "attach_durability()"
            )
        return self.durability

    def _service_state(self) -> dict[str, Any]:
        """Serving-layer catalog carried inside each checkpoint."""
        views = {}
        # Checkpoints run under the world write lock, but list() keeps
        # this consistent for any caller outside it too.
        for name, entry in list(self._catalog.items()):
            policy = self.scheduler.policy_of(name)
            views[name] = {
                "adaptive": entry.adaptive,
                "policy": {"kind": policy.kind, "every": policy.every},
                "queries": entry.queries,
                "updates_seen": entry.updates_seen,
            }
        return {
            "views": views,
            "checkpoint_every": self.scheduler.checkpoint_every,
        }

    def _update_durability_gauges(self) -> None:
        if self.durability is None:
            return
        stats = self.durability.stats()
        self.metrics.gauge("wal_bytes").set(stats["wal_bytes"])
        self.metrics.gauge("wal_records").set(stats["wal_records"])
        self.metrics.gauge("wal_fsyncs").set(stats["wal_fsyncs"])

    def _note_durability_op(self) -> None:
        """Per-request durability tick: cadence checkpointing + gauges."""
        if self.durability is None:
            return
        self.scheduler.note_operation()
        if self.scheduler.should_checkpoint():
            try:
                self.checkpoint()
            except DEGRADABLE_ERRORS:
                if self.resilience is None:
                    raise
                # A checkpoint reads base and AD pages only (never the
                # matviews), so a failure here means damage local view
                # rebuilds cannot reach — escalate to WAL recovery.
                self.metrics.counter("checkpoint_failures_total").inc()
                with self._state_lock:
                    self._needs_recovery = True
        else:
            self._update_durability_gauges()

    # ------------------------------------------------------------------
    # resilience internals
    # ------------------------------------------------------------------
    def degraded_views(self) -> dict[str, str]:
        """Views currently serving degraded, with the triggering reason."""
        with self._state_lock:
            return dict(self._degraded)

    def scrub(self) -> ScrubReport:
        """Walk every disk file, verifying page checksums (metered).

        Any damaged view found is marked degraded (its repair is queued
        for the background loop); base-relation or differential damage
        flags the server for checkpoint+WAL recovery.
        """
        with self._world.write():
            report = scrub_database(self.database)
            self.metrics.counter("scrubs_total").inc()
            self.metrics.gauge("scrub_damaged_pages").set(len(report.damage))
            for view_name in report.damaged_views():
                if view_name in self._catalog:
                    self._mark_degraded(view_name, "scrub:checksum", None)
            if report.damaged_relations() and self.durability is not None:
                self._needs_recovery = True
            return report

    def repair(self) -> dict[str, Any]:
        """Run every queued repair now instead of waiting for traffic."""
        with self._world.write():
            restored = self._run_repairs()
            return {
                "restored": restored,
                "still_degraded": dict(self._degraded),
                "needs_recovery": self._needs_recovery,
            }

    def _mark_degraded(self, name: str, reason: str, file: str | None) -> None:
        """Flip a view to degraded service and queue its repair."""
        with self._state_lock:
            if name not in self._catalog:
                return
            if name not in self._degraded:
                self.metrics.counter("degradations_total", view=name).inc()
            self._degraded[name] = reason
            self._missed_updates.setdefault(name, 0)
            self.metrics.gauge("view_degraded", view=name).set(1.0)
            if name not in self._pending_repairs:
                # Snapshot definition + strategy now: if the repair itself
                # faults between its drop and re-define, the catalog entry
                # is gone and this is all that's left to restore from.
                info: dict[str, Any] = {
                    "kind": "rebuild",
                    "definition": self._entry(name).definition,
                }
                impl = self.database.views.get(name)
                if impl is not None:
                    info["strategy"] = impl.strategy
                self._pending_repairs[name] = info
            if file is not None and self.durability is not None:
                kind, _owner = classify_file(self.database, file)
                if kind in ("relation", "differential"):
                    # The damaged file is not the view's own storage; a
                    # local rebuild cannot reach it.
                    self._needs_recovery = True

    def _degrade_with_siblings(self, name: str, reason: str, file: str | None) -> None:
        """Degrade a view and, if it is deferred, its deferred siblings.

        Deferred views over one relation share a coordinator refresh:
        one AD read, one ``apply_net`` per sibling, one fold.  A fault
        mid-refresh can leave *any* sibling's stored copy partially
        updated — not just the queried view's — so every deferred view
        on the relation is suspect and must be rebuilt before its copy
        is trusted again.  (Marking only the queried view lets a
        half-applied sibling serve silently wrong answers forever.)
        """
        with self._state_lock:
            self._mark_degraded(name, reason, file)
            entry = self._catalog.get(name)
            if entry is None:
                return
            definition = entry.definition
            relation = (
                definition.outer if isinstance(definition, JoinView)
                else definition.relation
            )
            impl = self.database.views.get(name)
            if impl is not None and impl.strategy is not Strategy.DEFERRED:
                return
            for sibling in self.database.views_on(relation):
                if sibling == name:
                    continue
                sibling_impl = self.database.views.get(sibling)
                if (
                    sibling_impl is not None
                    and sibling_impl.strategy is Strategy.DEFERRED
                ):
                    self._mark_degraded(sibling, f"sibling:{reason}", file)

    def _clear_degraded(self, name: str) -> None:
        with self._state_lock:
            self._degraded.pop(name, None)
            self._missed_updates.pop(name, None)
            self._pending_repairs.pop(name, None)
        self.metrics.gauge("view_degraded", view=name).set(0.0)

    def _run_repairs(self) -> list[str]:
        """Drain the background repair queue; returns restored views.

        Runs under the exclusive world lock (called at the tail of a
        request or from :meth:`repair`) — repair work models the
        idle-time maintenance of the paper's deferred machinery, and is
        metered like any other work.  Recursion-guarded because repairs
        themselves tick the durability cadence.
        """
        if self.resilience is None or not self.resilience.repair or self._repairing:
            return []
        if not self._pending_repairs and not self._needs_recovery:
            return []
        self._repairing = True
        try:
            if self._needs_recovery:
                degraded = list(self._degraded) or list(self._pending_repairs)
                if self._recover_from_durability("repair"):
                    self._needs_recovery = False
                    return degraded
                return []
            return [
                name for name in list(self._pending_repairs)
                if self._attempt_repair(name)
            ]
        finally:
            self._repairing = False

    def _attempt_repair(self, name: str) -> bool:
        """One background repair: rebuild (or restore), verify, reopen.

        Open breakers on the view's files are probed to half-open first
        (a repair is deliberate, it does not wait out the cool-down);
        a verified rebuild snaps them closed — the breaker-close shows
        up in ``breaker_transitions_total`` like any other transition.
        """
        info = self._pending_repairs.get(name, {"kind": "rebuild"})
        db = self.database
        meter = db.meter
        before = meter.snapshot()
        resilient = db.resilient_disk
        if resilient is not None:
            resilient.probe_open_breakers(list(view_files(name)))
        try:
            if name in db.views:
                db.rebuild_view(name)
            else:
                # Vanished mid-composite-operation (a fault between a
                # migrate's or an earlier repair's drop and re-define).
                # The composite WAL record already covers the re-define
                # on replay, so the restore is unjournaled.
                strategy = info.get("strategy")
                if strategy is None:
                    # Nothing left to restore from locally; the WAL
                    # replay recreates the view if durability is armed.
                    self.metrics.counter("repair_failures_total", view=name).inc()
                    if self.durability is not None:
                        self._needs_recovery = True
                    return False
                db.restore_view(info["definition"], strategy)
            present = [f for f in view_files(name) if f in db.disk.files()]
            recheck = scrub_database(db, files=present)
        except DEGRADABLE_ERRORS:
            self.metrics.counter("repair_failures_total", view=name).inc()
            return False
        if not recheck.ok:
            self.metrics.counter("repair_failures_total", view=name).inc()
            return False
        if resilient is not None:
            for file in view_files(name):
                resilient.reset_file(file)
        ms = meter.diff(before).milliseconds(self.params)
        self._clear_degraded(name)
        if self.cache is not None:
            self.cache.drop_view(name)
        impl = db.views.get(name)
        if impl is not None:
            self._set_strategy_gauge(name, impl.strategy)
        self.metrics.counter("repairs_total", view=name).inc()
        self.metrics.histogram("repair_ms", view=name).observe(ms)
        return True

    def _recover_from_durability(self, trigger: str) -> bool:
        """Rebuild the whole engine from checkpoint + WAL, then swap it in.

        The repair of last resort, for damage local view rebuilds cannot
        reach (base relations, differential files).  The WAL journals
        every transaction *before* it touches a page, so the recovered
        twin holds every committed update — including one whose base
        apply failed halfway.  Returns False (leaving state untouched)
        when no durability manager is attached or recovery itself fails.
        """
        manager = self.durability
        if manager is None:
            return False
        old_faults = self.database.faults
        was_armed = old_faults is not None and old_faults.armed
        factory = self._database_factory
        if factory is None:
            profile = self.database.fault_profile
            config_obj = self.database.resilience_config

            def factory(config: dict[str, Any]) -> Database:
                return Database(
                    fault_profile=profile, resilience=config_obj, **config
                )

        start = time.perf_counter()
        try:
            db, report, _state = manager.open(
                self.database.engine_config(), database_factory=factory
            )
        except Exception:
            self.metrics.counter("recovery_failures_total", trigger=trigger).inc()
            return False
        self.database.attach_journal(None)
        self.database = db
        self.planner = SharedDeltaPlanner(db)
        if self.cache is not None:
            self.cache.clear()
        self._database_factory = factory
        self._hook_disk_events(db)
        new_faults = db.faults
        if was_armed and new_faults is not None:
            new_faults.arm()
        for name in list(self._degraded):
            self._clear_degraded(name)
        with self._state_lock:
            self._pending_repairs.clear()
            self._needs_recovery = False
        for name, impl in db.views.items():
            self._set_strategy_gauge(name, impl.strategy)
        self.metrics.counter("recoveries_total").inc()
        self.metrics.counter("fault_recoveries_total", trigger=trigger).inc()
        self.metrics.gauge("recovery_replay_records").set(report.replay_records)
        self.metrics.gauge("recovery_ms").set(report.milliseconds(self.params))
        self.metrics.gauge("recovery_wall_ms").set(
            (time.perf_counter() - start) * 1000.0
        )
        self._update_durability_gauges()
        return True

    def _note_resilience_gauges(self) -> None:
        """Export the fault-injection and retry/breaker counters."""
        faults = self.database.faults
        if faults is not None:
            for kind, count in faults.injected.items():
                self.metrics.gauge("faults_injected", kind=kind).set(count)
        resilient = self.database.resilient_disk
        if resilient is not None:
            self.metrics.gauge("disk_retries").set(resilient.retries)
            self.metrics.gauge("disk_giveups").set(resilient.gave_up)
            self.metrics.gauge("disk_backoff_ms").set(resilient.backoff_ms)
        if self.resilience is not None:
            self.metrics.gauge("degraded_views").set(len(self._degraded))
