"""The view server: many views, one database, live traffic.

:class:`ViewServer` is the serving layer over
:class:`~repro.engine.database.Database`.  It hosts any number of
named views (each under its own maintenance strategy), applies update
transactions from logical clients, answers view queries, and around
every request:

* attributes the request's :class:`~repro.storage.pager.CostMeter`
  delta to per-view / per-strategy / per-client metrics (in modelled
  milliseconds, so measurements line up with the paper's formulas),
* lets the :class:`~repro.service.scheduler.RefreshScheduler` decide
  whether a deferred view folds its backlog now, later, or in
  background "idle time",
* feeds the :class:`~repro.service.router.AdaptiveRouter`, which may
  migrate a view to a cheaper strategy as the observed workload
  drifts.

Deferred views over one relation share refresh work through the
engine's :class:`~repro.maintenance.deferred.DeferredCoordinator` (one
AD read refreshes all siblings).  A re-entrant lock serializes the
request surface, so concurrent client threads interleave at request
granularity — single-writer semantics, like the paper's one-user cost
model, but safe to drive from many threads.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.core.parameters import PAPER_DEFAULTS, Parameters
from repro.core.strategies import Strategy
from repro.engine.database import CatalogError, Database
from repro.engine.transaction import Transaction
from repro.hr.differential import HypotheticalRelation
from repro.views.definition import AggregateView, JoinView, SelectProjectView
from .metrics import MetricsRegistry
from .router import AdaptiveRouter
from .scheduler import RefreshPolicy, RefreshScheduler, StalenessReport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.durability.checkpoint import CheckpointInfo
    from repro.durability.manager import DurabilityManager

__all__ = ["ViewServer", "ServedView"]

ViewDefinition = SelectProjectView | JoinView | AggregateView


@dataclass
class ServedView:
    """Catalog entry the server keeps per hosted view."""

    definition: ViewDefinition
    #: Whether the adaptive router may migrate this view.
    adaptive: bool
    queries: int = 0
    updates_seen: int = 0


class ViewServer:
    """Serve interleaved update/query traffic over many views."""

    def __init__(
        self,
        database: Database,
        params: Parameters | None = None,
        router: AdaptiveRouter | None = None,
        scheduler: RefreshScheduler | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.database = database
        #: Cost constants used to convert meter deltas to milliseconds.
        self.params = params or PAPER_DEFAULTS
        self.router = router
        self.scheduler = scheduler or RefreshScheduler()
        self.metrics = registry or MetricsRegistry()
        self._catalog: dict[str, ServedView] = {}
        self._lock = threading.RLock()
        #: Durability manager (WAL + checkpoints), armed by
        #: :meth:`attach_durability` or :meth:`open`.
        self.durability: "DurabilityManager | None" = None

    @classmethod
    def open(
        cls,
        state_dir: Any,
        params: Parameters | None = None,
        router: AdaptiveRouter | None = None,
        scheduler: RefreshScheduler | None = None,
        registry: MetricsRegistry | None = None,
        default_config: dict[str, Any] | None = None,
        fsync_every: int = 1,
        checkpoint_every: int | None = None,
    ) -> "ViewServer":
        """Open a server over a durability state directory.

        Recovers whatever the directory holds (checkpoint restore + WAL
        replay), re-registers every recovered view with its saved policy
        and counters, arms write-ahead journaling, and exports recovery
        metrics (``recovery_replay_records``, ``recovery_ms``).  A fresh
        directory yields an empty server — register views as usual and
        they are journaled from the first operation.
        """
        from repro.durability.manager import DurabilityManager

        manager = DurabilityManager(state_dir, fsync_every=fsync_every)
        start = time.perf_counter()
        db, report, service_state = manager.open(default_config)
        wall_ms = (time.perf_counter() - start) * 1000.0
        server = cls(
            db, params=params, router=router, scheduler=scheduler, registry=registry
        )
        server.durability = manager
        saved = service_state or {}
        if checkpoint_every is None:
            checkpoint_every = saved.get("checkpoint_every")
        server.scheduler.set_checkpoint_every(checkpoint_every)
        view_state = saved.get("views", {})
        for name, impl in db.views.items():
            state = view_state.get(name, {})
            entry = ServedView(db.view_definition(name), state.get("adaptive", True))
            entry.queries = state.get("queries", 0)
            entry.updates_seen = state.get("updates_seen", 0)
            server._catalog[name] = entry
            policy_doc = state.get("policy")
            policy = (
                RefreshPolicy(policy_doc["kind"], every=policy_doc.get("every", 1))
                if policy_doc
                else RefreshPolicy.on_demand()
            )
            server.scheduler.set_policy(name, policy)
            server._set_strategy_gauge(name, impl.strategy)
        server.metrics.counter("recoveries_total").inc()
        server.metrics.gauge("recovery_replay_records").set(report.replay_records)
        server.metrics.gauge("recovery_ms").set(report.milliseconds(server.params))
        server.metrics.gauge("recovery_wall_ms").set(wall_ms)
        server.metrics.gauge("recovery_full_recomputes").set(
            report.full_recomputes_during_replay
        )
        server._update_durability_gauges()
        return server

    # ------------------------------------------------------------------
    # durability surface
    # ------------------------------------------------------------------
    def attach_durability(
        self, manager: "DurabilityManager", checkpoint_every: int | None = None
    ) -> None:
        """Arm write-ahead journaling on a live server.

        Operations from here on are journaled; take a :meth:`checkpoint`
        right after attaching so recovery never has to replay the
        pre-durability bootstrap (which is not in the log).
        """
        with self._lock:
            self.durability = manager
            manager.attach(self.database)
            self.scheduler.set_checkpoint_every(checkpoint_every)
            self._update_durability_gauges()

    def checkpoint(self) -> "CheckpointInfo":
        """Snapshot engine + serving state, truncating the WAL behind it."""
        with self._lock:
            manager = self._require_durability()
            start = time.perf_counter()
            info = manager.checkpoint(self.database, self._service_state())
            duration_ms = (time.perf_counter() - start) * 1000.0
            self.metrics.counter("checkpoints_total").inc()
            self.metrics.histogram("checkpoint_duration_ms").observe(duration_ms)
            self.metrics.gauge("checkpoint_bytes").set(info.bytes_written)
            self.scheduler.note_checkpoint()
            self._update_durability_gauges()
            return info

    def shutdown(self) -> None:
        """Graceful stop: final checkpoint, then seal the WAL."""
        with self._lock:
            if self.durability is None:
                return
            self.checkpoint()
            self.durability.close()

    # ------------------------------------------------------------------
    # catalog surface
    # ------------------------------------------------------------------
    def register_view(
        self,
        definition: ViewDefinition,
        strategy: Strategy,
        adaptive: bool = True,
        policy: RefreshPolicy | None = None,
        plan: str | None = None,
        index_field: str | None = None,
        refresh_every: int = 10,
        charge_setup: bool = False,
    ) -> None:
        """Host a view under a strategy and (optionally) a refresh policy.

        Setup I/O (materializing the initial copy) is reported in the
        ``view_setup_ms`` metric; unless ``charge_setup`` it is then
        cleared from the database meter, mirroring the paper's practice
        of excluding initial materialization from per-query costs.
        """
        with self._lock:
            meter = self.database.meter
            before = meter.snapshot()
            self.database.define_view(
                definition, strategy,
                plan=plan, index_field=index_field, refresh_every=refresh_every,
            )
            setup = meter.diff(before)
            self._catalog[definition.name] = ServedView(definition, adaptive)
            self.scheduler.set_policy(
                definition.name, policy or RefreshPolicy.on_demand()
            )
            # define_view charges materialization to the meter's setup
            # bucket, so the workload counters are already untouched.
            self.metrics.gauge("view_setup_ms", view=definition.name).set(
                setup.setup_milliseconds(self.params)
            )
            self._set_strategy_gauge(definition.name, strategy)
            if charge_setup:
                # Fold exactly this view's setup delta into the workload
                # counters (earlier bucket contents stay in the bucket).
                meter.page_reads += setup.setup_page_reads
                meter.page_writes += setup.setup_page_writes
                meter.screens += setup.setup_screens
                meter.ad_ops += setup.setup_ad_ops
                meter.setup_page_reads -= setup.setup_page_reads
                meter.setup_page_writes -= setup.setup_page_writes
                meter.setup_screens -= setup.setup_screens
                meter.setup_ad_ops -= setup.setup_ad_ops

    def views(self) -> tuple[str, ...]:
        return tuple(self._catalog)

    def definition_of(self, name: str) -> ViewDefinition:
        return self._entry(name).definition

    def strategy_of(self, name: str) -> Strategy:
        with self._lock:
            impl = self.database.views.get(name)
            if impl is None:
                raise CatalogError(f"unknown view {name!r}")
            return impl.strategy

    # ------------------------------------------------------------------
    # traffic surface
    # ------------------------------------------------------------------
    def apply_update(self, txn: Transaction, client: str = "anon") -> None:
        """Apply one update transaction and run the post-update hooks.

        The transaction's own cost lands in ``update_ms`` per affected
        view's strategy; background refreshes triggered by async
        policies are measured separately (``background_refresh_ms``) —
        they model idle-time work off the request's critical path.
        """
        with self._lock:
            meter = self.database.meter
            before = meter.snapshot()
            self.database.apply_transaction(txn)
            affected = self.database.views_on(txn.relation)
            self._settle_if_no_deferred(txn.relation)
            ms = meter.diff(before).milliseconds(self.params)
            self.metrics.counter("updates_total", client=client).inc()
            self.metrics.histogram("update_ms", relation=txn.relation).observe(ms)
            for name in affected:
                entry = self._catalog.get(name)
                if entry is None:
                    continue
                entry.updates_seen += 1
                if self.router is not None and entry.adaptive:
                    self.router.observe_update(name, len(txn))
            self._run_background_refreshes(txn.relation, affected)
            self._note_relation_health(txn.relation)
            if self.router is not None:
                for name in affected:
                    entry = self._catalog.get(name)
                    if entry is not None and entry.adaptive:
                        self._maybe_route(name)
            self._note_durability_op()

    def query(self, name: str, lo: Any = None, hi: Any = None, client: str = "anon") -> Any:
        """Answer a view query under the view's strategy and policy.

        A deferred view whose periodic policy says "not yet" serves the
        stale stored copy directly (staleness is tracked and exported);
        every other path goes through the strategy's own ``query``.
        """
        with self._lock:
            entry = self._entry(name)
            impl = self.database.views.get(name)
            if impl is None:
                raise CatalogError(f"unknown view {name!r}")
            meter = self.database.meter
            before = meter.snapshot()
            strategy = impl.strategy
            refresh_now = self.scheduler.should_refresh_on_query(name)
            if strategy is Strategy.DEFERRED and not refresh_now:
                answer = self._stale_read(impl, lo, hi)
                self.scheduler.note_stale_answer(name)
            else:
                if strategy.is_query_modification():
                    self._settle_for_query_modification(entry.definition)
                answer = self.database.query_view(name, lo, hi)
                if strategy is Strategy.DEFERRED:
                    self.scheduler.note_refreshed(name)
            ms = meter.diff(before).milliseconds(self.params)
            entry.queries += 1
            self.metrics.counter("queries_total", client=client).inc()
            self.metrics.histogram(
                "query_ms", view=name, strategy=strategy.value
            ).observe(ms)
            if self.router is not None and entry.adaptive:
                self.router.observe_query(name, self._query_width(lo, hi))
                self._maybe_route(name)
            self._note_durability_op()
            return answer

    # ------------------------------------------------------------------
    # migration
    # ------------------------------------------------------------------
    def migrate(self, name: str, strategy: Strategy) -> None:
        """Move a view to another strategy, pricing the migration."""
        with self._lock:
            old = self.strategy_of(name)
            if old is strategy:
                return
            meter = self.database.meter
            before = meter.snapshot()
            self.database.migrate_view(name, strategy)
            ms = meter.diff(before).milliseconds(self.params)
            self.metrics.counter(
                "strategy_switches_total",
                view=name, from_strategy=old.value, to_strategy=strategy.value,
            ).inc()
            self.metrics.histogram("migration_ms", view=name).observe(ms)
            self._set_strategy_gauge(name, strategy)

    # ------------------------------------------------------------------
    # observability surface
    # ------------------------------------------------------------------
    def staleness(self, name: str) -> StalenessReport:
        """How far behind the live relation a view's answers may be."""
        with self._lock:
            entry = self._entry(name)
            definition = entry.definition
            relation_name = (
                definition.outer if isinstance(definition, JoinView)
                else definition.relation
            )
            relation = self.database.relations[relation_name]
            pending = (
                relation.ad_entry_count()
                if isinstance(relation, HypotheticalRelation)
                else 0
            )
            if self.strategy_of(name).is_query_modification():
                pending = 0  # recomputation always sees the true relation
            return StalenessReport(
                view=name,
                policy=self.scheduler.policy_of(name).kind,
                pending_ad_entries=pending,
                queries_since_refresh=self.scheduler.queries_since_refresh(name),
            )

    def metrics_dict(self) -> dict[str, Any]:
        with self._lock:
            return self.metrics.to_dict()

    def metrics_json(self, indent: int | None = 2) -> str:
        with self._lock:
            return self.metrics.to_json(indent=indent)

    def dashboard(self) -> str:
        with self._lock:
            return self.metrics.render_dashboard()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _entry(self, name: str) -> ServedView:
        entry = self._catalog.get(name)
        if entry is None:
            raise CatalogError(f"view {name!r} is not registered with this server")
        return entry

    @staticmethod
    def _query_width(lo: Any, hi: Any) -> float | None:
        try:
            return float(hi - lo + 1) if lo is not None and hi is not None else None
        except TypeError:
            return None

    def _set_strategy_gauge(self, name: str, strategy: Strategy) -> None:
        # One-hot over the strategies this view has ever run under.
        for inst in self.metrics.series("view_strategy"):
            if dict(inst.labels).get("view") == name:
                inst.set(0.0)
        self.metrics.gauge("view_strategy", view=name, strategy=strategy.value).set(1.0)

    def _settle_for_query_modification(self, definition: ViewDefinition) -> None:
        """QM plans read base files — fold any pending AD first."""
        sources = (
            (definition.outer,) if isinstance(definition, JoinView)
            else (definition.relation,)
        )
        for source in sources:
            self.database.settle_relation(source)

    def _stale_read(self, impl: Any, lo: Any, hi: Any) -> Any:
        """Read a deferred view's stored copy without refreshing it."""
        meter = self.database.meter
        if self.database.cold_operations:
            self.database.pool.invalidate_all()
        store = getattr(impl, "store", None)
        if store is not None:  # aggregate: one state-page read
            answer = store.value()
        else:
            lo_b = float("-inf") if lo is None else lo
            hi_b = float("inf") if hi is None else hi
            answer = []
            for vt in impl.matview.scan_range(lo_b, hi_b):
                meter.record_screen()
                answer.append(vt)
        self.database.pool.flush_all()
        self.database.queries_answered += 1
        return answer

    def _settle_if_no_deferred(self, relation_name: str) -> None:
        """Fold a hypothetical relation eagerly when nothing defers.

        Keeping relations hypothetical is what lets a view migrate back
        to deferred later, but someone must eventually fold the AD
        backlog.  The timing follows the strategies present:

        * a deferred view exists — its refresh folds (batched, the
          paper's scheme); leave the backlog alone.
        * only query-modification views — fold lazily at query time
          (:meth:`_settle_for_query_modification`), which batches the
          fold exactly like a deferred refresh would.
        * an immediate/snapshot-style materialized view exists (or no
          view at all) — fold now, per transaction: write-through
          semantics, the substrate the immediate cost model assumes.
        """
        relation = self.database.relations.get(relation_name)
        if not isinstance(relation, HypotheticalRelation):
            return
        strategies = set()
        for name in self.database.views_on(relation_name):
            impl = self.database.views.get(name)
            if impl is not None:
                strategies.add(impl.strategy)
        if Strategy.DEFERRED in strategies:
            return
        if strategies and all(s.is_query_modification() for s in strategies):
            return
        self.database.settle_relation(relation_name)

    def _run_background_refreshes(self, relation: str, affected: tuple[str, ...]) -> None:
        """Async-policy views fold their backlog right after the update.

        The work is real and metered (``background_refresh_ms``), but
        kept out of ``update_ms``/``query_ms`` — it models the idle-CPU
        refresh of the paper's Section 4.
        """
        refreshed_relations: set[str] = set()
        for name in affected:
            if not self.scheduler.wants_background_refresh(name):
                continue
            impl = self.database.views.get(name)
            if impl is None or impl.strategy is not Strategy.DEFERRED:
                continue
            rel = impl.relation.schema.name
            if rel in refreshed_relations:
                continue  # the coordinator already refreshed the siblings
            meter = self.database.meter
            before = meter.snapshot()
            impl.refresh()
            self.database.pool.flush_all()
            ms = meter.diff(before).milliseconds(self.params)
            self.metrics.histogram("background_refresh_ms", view=name).observe(ms)
            self.scheduler.note_refreshed(name)
            refreshed_relations.add(rel)

    def _note_relation_health(self, relation_name: str) -> None:
        relation = self.database.relations.get(relation_name)
        if not isinstance(relation, HypotheticalRelation):
            return
        self.metrics.gauge("ad_entries", relation=relation_name).set(
            relation.ad_entry_count()
        )
        self.metrics.gauge("ad_pages", relation=relation_name).set(
            relation.ad_page_count()
        )
        bloom = relation.bloom
        self.metrics.gauge("bloom_fill_fraction", relation=relation_name).set(
            bloom.fill_fraction
        )
        self.metrics.gauge("bloom_negative_rate", relation=relation_name).set(
            bloom.negative_rate
        )

    def _maybe_route(self, name: str) -> None:
        assert self.router is not None
        switch = self.router.maybe_switch(self, name)
        if switch is not None:
            self.metrics.gauge("router_estimated_p", view=name).set(switch.estimated_p)

    # ------------------------------------------------------------------
    # durability internals
    # ------------------------------------------------------------------
    def _require_durability(self) -> "DurabilityManager":
        if self.durability is None:
            raise RuntimeError(
                "no durability manager attached; use ViewServer.open() or "
                "attach_durability()"
            )
        return self.durability

    def _service_state(self) -> dict[str, Any]:
        """Serving-layer catalog carried inside each checkpoint."""
        views = {}
        for name, entry in self._catalog.items():
            policy = self.scheduler.policy_of(name)
            views[name] = {
                "adaptive": entry.adaptive,
                "policy": {"kind": policy.kind, "every": policy.every},
                "queries": entry.queries,
                "updates_seen": entry.updates_seen,
            }
        return {
            "views": views,
            "checkpoint_every": self.scheduler.checkpoint_every,
        }

    def _update_durability_gauges(self) -> None:
        if self.durability is None:
            return
        stats = self.durability.stats()
        self.metrics.gauge("wal_bytes").set(stats["wal_bytes"])
        self.metrics.gauge("wal_records").set(stats["wal_records"])
        self.metrics.gauge("wal_fsyncs").set(stats["wal_fsyncs"])

    def _note_durability_op(self) -> None:
        """Per-request durability tick: cadence checkpointing + gauges."""
        if self.durability is None:
            return
        self.scheduler.note_operation()
        if self.scheduler.should_checkpoint():
            self.checkpoint()
        else:
            self._update_durability_gauges()
