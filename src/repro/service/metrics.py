"""Observability for the serving layer: counters, gauges, histograms.

The paper prices strategies analytically; the server *measures* them.
Every request through :class:`~repro.service.server.ViewServer` lands
in a :class:`MetricsRegistry` — per-view and per-strategy query
latency, refresh cost, AD-file depth, Bloom-filter screening
effectiveness and strategy-switch events — so an operator (or the
adaptive router's tests) can see the cost model playing out live.

Instruments are keyed by ``(name, labels)`` like Prometheus series.
The registry exports a versioned JSON document (schema tag
``repro.service.metrics/v1``, checked by :func:`validate_metrics`) and
renders a plain-ASCII dashboard for the ``repro-serve`` CLI.

Latency here is *modelled milliseconds*: the serving layer converts
:class:`~repro.storage.pager.CostMeter` deltas with the workload's
cost constants (``c1``/``c2``/``c3``), so one histogram observation is
directly comparable with the paper's ``TOTAL_*`` formulas.
"""

from __future__ import annotations

import json
import math
import threading
from typing import Any, Iterable, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSchemaError",
    "SCHEMA",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "validate_metrics",
]

#: Version tag stamped into every export; bump on breaking changes.
SCHEMA = "repro.service.metrics/v1"

#: Default histogram bucket upper bounds, in modelled milliseconds.
#: Spans one screen (c1=1) up to thousands of I/Os; +inf catches the rest.
DEFAULT_LATENCY_BUCKETS_MS: tuple[float, ...] = (
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1_000.0, 2_500.0, 5_000.0, 10_000.0, math.inf,
)

Labels = tuple[tuple[str, str], ...]


def _labels_of(labels: Mapping[str, Any]) -> Labels:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count (requests served, switches)."""

    kind = "counter"

    def __init__(self, name: str, labels: Labels) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0
        self._mutex = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {amount})")
        with self._mutex:
            self.value += amount

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "labels": dict(self.labels),
            "value": self.value,
        }


class Gauge:
    """A point-in-time level (AD depth, Bloom fill, staleness)."""

    kind = "gauge"

    def __init__(self, name: str, labels: Labels) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0
        self._mutex = threading.Lock()

    def set(self, value: float) -> None:
        with self._mutex:
            self.value = float(value)

    def add(self, amount: float) -> None:
        with self._mutex:
            self.value += amount

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "labels": dict(self.labels),
            "value": self.value,
        }


class Histogram:
    """A cumulative-bucket latency/cost distribution.

    Buckets are upper bounds (the last must be ``+inf``); ``observe``
    also tracks count/sum/min/max so mean latency needs no bucket math.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: Labels,
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_MS,
    ) -> None:
        if not buckets or buckets[-1] != math.inf:
            raise ValueError(f"histogram {name!r} buckets must end with +inf")
        if list(buckets) != sorted(buckets):
            raise ValueError(f"histogram {name!r} buckets must be sorted")
        self.name = name
        self.labels = labels
        self.buckets = buckets
        self.bucket_counts = [0] * len(buckets)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._mutex = threading.Lock()

    def observe(self, value: float) -> None:
        with self._mutex:
            self.count += 1
            self.sum += value
            self.min = min(self.min, value)
            self.max = max(self.max, value)
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self.bucket_counts[i] += 1
                    break

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float | None:
        """Estimate the ``q``-quantile from the cumulative buckets.

        Linear interpolation inside the bucket holding the target rank,
        clamped to the observed ``[min, max]`` (so the open-ended top
        bucket can never report +inf).  ``None`` when empty.  The
        estimate depends only on exported state (bucket counts, count,
        min, max), so a registry rebuilt via :meth:`MetricsRegistry.from_dict`
        reports identical quantiles.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._mutex:
            if not self.count:
                return None
            target = q * self.count
            cumulative = 0
            prev_bound = -math.inf
            for bound, n in zip(self.buckets, self.bucket_counts):
                if n and cumulative + n >= target:
                    lo = max(self.min, prev_bound)
                    hi = self.max if bound == math.inf else min(self.max, bound)
                    if hi < lo:
                        hi = lo
                    fraction = min(1.0, max(0.0, (target - cumulative) / n))
                    return lo + (hi - lo) * fraction
                cumulative += n
                prev_bound = bound
            return self.max

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "labels": dict(self.labels),
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
            # Summary quantiles are computed at export time from the
            # buckets, so dashboards and regression gates never have to
            # re-derive them — and round-tripping through from_dict
            # reproduces them exactly.
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "buckets": [
                {"le": "inf" if bound == math.inf else bound, "count": n}
                for bound, n in zip(self.buckets, self.bucket_counts)
            ],
        }


class MetricsRegistry:
    """Keyed store of instruments, exportable as JSON or a dashboard."""

    def __init__(self) -> None:
        self._instruments: dict[tuple[str, Labels], Counter | Gauge | Histogram] = {}
        #: Guards instrument creation and iteration; the instruments
        #: themselves carry their own mutation locks, so concurrent
        #: request threads never lose an increment or observation.
        self._mutex = threading.Lock()

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        buckets: Iterable[float] | None = None,
        **labels: Any,
    ) -> Histogram:
        """Histogram series; ``buckets`` overrides the default grid.

        The override only applies when the series is first created —
        later lookups return the existing instrument unchanged, so
        callers can pass the same buckets on every hot-path call.
        """
        return self._get(Histogram, name, labels, buckets=buckets)

    def _get(
        self,
        cls: type,
        name: str,
        labels: Mapping[str, Any],
        buckets: Iterable[float] | None = None,
    ) -> Any:
        key = (name, _labels_of(labels))
        with self._mutex:
            instrument = self._instruments.get(key)
            if instrument is None:
                if cls is Histogram and buckets is not None:
                    instrument = Histogram(name, key[1], buckets=tuple(buckets))
                else:
                    instrument = cls(name, key[1])
                self._instruments[key] = instrument
            elif not isinstance(instrument, cls):
                raise TypeError(
                    f"metric {name!r} already registered as {instrument.kind}, "
                    f"requested {cls.kind}"
                )
            return instrument

    def series(self, name: str | None = None) -> list[Counter | Gauge | Histogram]:
        """All instruments (optionally filtered by name), sorted by key."""
        with self._mutex:
            items = sorted(self._instruments.items())
        return [inst for (n, _), inst in items if name is None or n == name]

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Versioned export: the whole registry as plain data."""
        return {
            "schema": SCHEMA,
            "metrics": [inst.to_dict() for inst in self.series()],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "MetricsRegistry":
        """Rebuild a registry from a v1 export (inverse of :meth:`to_dict`).

        The document is schema-validated first, so a registry rebuilt
        from its own export round-trips exactly:
        ``from_dict(r.to_dict()).to_dict() == r.to_dict()``.  Used by
        the durability layer to restore serving metrics state.
        """
        validate_metrics(doc)
        registry = cls()
        for entry in doc["metrics"]:
            name = entry["name"]
            labels = _labels_of(entry["labels"])
            key = (name, labels)
            if entry["kind"] == "counter":
                counter = Counter(name, labels)
                counter.value = float(entry["value"])
                registry._instruments[key] = counter
            elif entry["kind"] == "gauge":
                gauge = Gauge(name, labels)
                gauge.value = float(entry["value"])
                registry._instruments[key] = gauge
            else:
                bounds = tuple(
                    math.inf if b["le"] == "inf" else float(b["le"])
                    for b in entry["buckets"]
                )
                hist = Histogram(name, labels, buckets=bounds)
                hist.bucket_counts = [b["count"] for b in entry["buckets"]]
                hist.count = int(entry["count"])
                hist.sum = float(entry["sum"])
                hist.min = math.inf if entry.get("min") is None else entry["min"]
                hist.max = -math.inf if entry.get("max") is None else entry["max"]
                registry._instruments[key] = hist
        return registry

    def render_dashboard(self, width: int = 72) -> str:
        """Plain-ASCII dashboard for terminals and logs."""
        lines = [f"{' metrics ':=^{width}}"]
        for inst in self.series():
            label_str = ",".join(f"{k}={v}" for k, v in inst.labels)
            head = f"{inst.name}{{{label_str}}}" if label_str else inst.name
            if isinstance(inst, Histogram):
                if inst.count:
                    lines.append(
                        f"{head:<52} n={inst.count:<6} mean={inst.mean:10.1f} ms"
                    )
                    lines.append(self._spark(inst, width))
                else:
                    lines.append(f"{head:<52} n=0")
            else:
                lines.append(f"{head:<52} {inst.value:14.1f}")
        lines.append("=" * width)
        return "\n".join(lines)

    @staticmethod
    def _spark(hist: Histogram, width: int) -> str:
        peak = max(hist.bucket_counts) or 1
        marks = "".join(
            " .:-=+*#"[min(7, (n * 7 + peak - 1) // peak)] for n in hist.bucket_counts
        )
        return f"    [{marks}] <= {hist.buckets[-2] if len(hist.buckets) > 1 else 'inf'} ms ... inf"


class MetricsSchemaError(ValueError):
    """A metrics export violates the ``repro.service.metrics/v1`` schema."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise MetricsSchemaError(message)


def validate_metrics(doc: Mapping[str, Any]) -> None:
    """Check an export against the v1 schema; raises on violations.

    The schema check is what tests (and downstream scrapers) rely on:
    top-level ``schema``/``metrics`` keys, per-series ``name``/``kind``/
    ``labels``, kind-appropriate fields, cumulative histogram buckets
    ending at ``inf`` with counts summing to ``count``.
    """
    _require(isinstance(doc, Mapping), "export must be a mapping")
    _require(doc.get("schema") == SCHEMA, f"schema tag must be {SCHEMA!r}")
    metrics = doc.get("metrics")
    _require(isinstance(metrics, list), "'metrics' must be a list")
    for entry in metrics:
        _require(isinstance(entry, Mapping), "each metric must be a mapping")
        name = entry.get("name")
        _require(isinstance(name, str) and bool(name), "metric name must be a non-empty string")
        kind = entry.get("kind")
        _require(kind in ("counter", "gauge", "histogram"), f"{name}: bad kind {kind!r}")
        labels = entry.get("labels")
        _require(isinstance(labels, Mapping), f"{name}: labels must be a mapping")
        _require(
            all(isinstance(k, str) and isinstance(v, str) for k, v in labels.items()),
            f"{name}: label keys and values must be strings",
        )
        if kind in ("counter", "gauge"):
            _require(
                isinstance(entry.get("value"), (int, float)),
                f"{name}: {kind} needs a numeric 'value'",
            )
            if kind == "counter":
                _require(entry["value"] >= 0, f"{name}: counter must be >= 0")
        else:
            _validate_histogram(name, entry)


def _validate_histogram(name: str, entry: Mapping[str, Any]) -> None:
    for field in ("count", "sum", "mean"):
        _require(
            isinstance(entry.get(field), (int, float)),
            f"{name}: histogram needs numeric {field!r}",
        )
    for field in ("p50", "p95", "p99"):
        _require(field in entry, f"{name}: histogram needs a {field!r} summary field")
        value = entry[field]
        if entry["count"]:
            _require(
                isinstance(value, (int, float)),
                f"{name}: {field!r} must be numeric on a non-empty histogram",
            )
        else:
            _require(value is None, f"{name}: {field!r} must be null when count is 0")
    buckets = entry.get("buckets")
    _require(isinstance(buckets, list) and bool(buckets), f"{name}: needs buckets")
    bounds: list[float] = []
    total = 0
    for bucket in buckets:
        _require(isinstance(bucket, Mapping), f"{name}: bucket must be a mapping")
        le = bucket.get("le")
        bounds.append(math.inf if le == "inf" else float(le))
        count = bucket.get("count")
        _require(isinstance(count, int) and count >= 0, f"{name}: bucket count must be >= 0")
        total += count
    _require(bounds == sorted(bounds), f"{name}: bucket bounds must be sorted")
    _require(bounds[-1] == math.inf, f"{name}: last bucket must be 'inf'")
    _require(total == entry["count"], f"{name}: bucket counts must sum to count")
