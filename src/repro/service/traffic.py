"""Multi-client traffic with a drifting workload mix, plus a demo server.

The experiments in :mod:`repro.workload` run one view under one
strategy with a fixed ``P``.  The serving layer's whole argument is
about what happens when ``P`` *drifts*: this module builds deterministic
multi-phase request streams (each phase its own update probability and
batch size, interleaved Bresenham-style so any mix spreads evenly) and
a small two-view demo database to serve them against.

Everything is seeded — replaying the same stream against servers with
different strategies is what makes the adaptive-vs-static comparison
(``ext-service`` experiment and benchmark) apples-to-apples.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

from repro.core.parameters import Parameters
from repro.core.strategies import Strategy
from repro.engine.database import Database
from repro.engine.transaction import Transaction, Update
from repro.resilience.degradation import DegradedResult
from repro.resilience.faults import FaultProfile
from repro.resilience.policy import ResilienceConfig
from repro.storage.tuples import Schema
from repro.views.definition import AggregateView, SelectProjectView
from repro.views.predicate import IntervalPredicate
from .router import AdaptiveRouter, RouterConfig
from .scheduler import RefreshPolicy
from .server import ViewServer

__all__ = [
    "PhaseSpec",
    "Request",
    "ServiceDemo",
    "demo_server",
    "drifting_traffic",
    "run_traffic",
]


@dataclass(frozen=True)
class PhaseSpec:
    """One segment of the drifting workload."""

    #: Requests in this phase (updates + queries).
    operations: int
    #: Fraction of requests that are update transactions (the paper's P).
    update_probability: float
    #: Tuples modified per update transaction (the paper's l).
    batch_size: int = 5

    def __post_init__(self) -> None:
        if self.operations < 1:
            raise ValueError(f"phase needs >= 1 operations, got {self.operations}")
        if not 0.0 <= self.update_probability < 1.0:
            raise ValueError(
                f"update probability must be in [0, 1), got {self.update_probability}"
            )
        if self.batch_size < 1:
            raise ValueError(f"batch size must be >= 1, got {self.batch_size}")


@dataclass(frozen=True)
class Request:
    """One client request: an update transaction or a view query."""

    client: str
    kind: str  # "update" | "query"
    view: str | None = None
    txn: Transaction | None = None
    lo: Any = None
    hi: Any = None


@dataclass
class ServiceDemo:
    """A ready-to-serve database: one relation, two views, known keys."""

    database: Database
    server: ViewServer
    relation: str
    view_names: tuple[str, ...]
    keys: list[int]
    domain: int
    view_bound: int

    def tuple_view(self) -> str:
        return self.view_names[0]

    def aggregate_view(self) -> str:
        return self.view_names[1]


def demo_server(
    n_tuples: int = 2000,
    domain: int = 1000,
    view_bound: int = 100,
    seed: int = 7,
    strategy: Strategy = Strategy.DEFERRED,
    adaptive: bool = True,
    router: AdaptiveRouter | None = None,
    router_config: RouterConfig | None = None,
    policy: RefreshPolicy | None = None,
    params: Parameters | None = None,
    block_bytes: int = 4000,
    tuple_bytes: int = 100,
    with_aggregate: bool = True,
    fault_profile: FaultProfile | None = None,
    resilience: ResilienceConfig | None = None,
    pacing: float = 0.0,
) -> ServiceDemo:
    """Build the standard serving-layer demo.

    One relation ``r`` (clustered on the predicate attribute ``a``,
    hypothetical so deferred maintenance — and migration back to it —
    stays available) carrying two views over ``a in [0, view_bound)``:
    ``v_tuples`` (Model 1 select-project) and ``v_total`` (Model 3
    sum).  ``strategy`` picks their initial strategy; ``adaptive``
    arms the router (pass ``adaptive=False`` for the static baselines).

    ``fault_profile`` injects storage faults (armed only *after* the
    clean bootstrap below) and ``resilience`` installs the
    checksum/retry/breaker/degradation stack over them.
    """
    rng = random.Random(seed)
    selectivity = view_bound / domain
    db = Database(
        block_bytes=block_bytes, cold_operations=True,
        fault_profile=fault_profile, resilience=resilience,
    )
    schema = Schema("r", ("id", "a", "v"), "id", tuple_bytes=tuple_bytes)
    records = [
        schema.new_record(id=i, a=rng.randrange(domain), v=rng.randrange(10_000))
        for i in range(n_tuples)
    ]
    db.create_relation(schema, "a", kind="hypothetical", records=records, ad_buckets=4)

    if router is None and adaptive:
        router = AdaptiveRouter(router_config)
    cost_params = params or Parameters(
        N=n_tuples, S=tuple_bytes, B=block_bytes, f=selectivity
    )
    server = ViewServer(
        db, params=cost_params, router=router if adaptive else None,
        resilience=resilience, pacing=pacing,
    )

    predicate = IntervalPredicate("a", 0, view_bound - 1, selectivity=selectivity)
    definitions: list[SelectProjectView | AggregateView] = [
        SelectProjectView(
            name="v_tuples", relation="r", predicate=predicate,
            projection=("id", "a"), view_key="a",
        )
    ]
    if with_aggregate:
        definitions.append(
            AggregateView(
                name="v_total", relation="r", predicate=predicate,
                aggregate="sum", field="v",
            )
        )
    for definition in definitions:
        server.register_view(definition, strategy, adaptive=adaptive, policy=policy)
    db.reset_meter()
    if db.faults is not None:
        db.faults.arm()  # bootstrap ran clean; the workload takes the risk
    return ServiceDemo(
        database=db,
        server=server,
        relation="r",
        view_names=tuple(d.name for d in definitions),
        keys=list(range(n_tuples)),
        domain=domain,
        view_bound=view_bound,
    )


def drifting_traffic(
    demo: ServiceDemo,
    phases: tuple[PhaseSpec, ...],
    seed: int = 11,
    clients: tuple[str, ...] = ("alice", "bob", "carol"),
    query_width: int | None = None,
) -> list[Request]:
    """A deterministic multi-phase request stream over the demo's views.

    Within each phase, updates are spread among queries with the same
    fractional-credit interleaving the workload generator uses, so a
    phase's realized mix matches its ``update_probability`` exactly
    (up to rounding).  Queries round-robin over the demo's views;
    clients round-robin over the whole stream.
    """
    rng = random.Random(seed)
    width = query_width or demo.view_bound
    requests: list[Request] = []
    view_cycle = 0
    client_cycle = 0

    def next_client() -> str:
        nonlocal client_cycle
        client = clients[client_cycle % len(clients)]
        client_cycle += 1
        return client

    def make_update(batch_size: int) -> Request:
        chosen = rng.sample(demo.keys, min(batch_size, len(demo.keys)))
        ops = [
            Update(key, {"a": rng.randrange(demo.domain), "v": rng.randrange(10_000)})
            for key in chosen
        ]
        return Request(
            client=next_client(), kind="update",
            txn=Transaction.of(demo.relation, ops),
        )

    def make_query() -> Request:
        nonlocal view_cycle
        view = demo.view_names[view_cycle % len(demo.view_names)]
        view_cycle += 1
        hi_start = max(0, demo.view_bound - width)
        lo = rng.randint(0, hi_start) if hi_start > 0 else 0
        return Request(
            client=next_client(), kind="query",
            view=view, lo=lo, hi=lo + width - 1,
        )

    for phase in phases:
        updates = round(phase.operations * phase.update_probability)
        queries = phase.operations - updates
        if queries == 0:
            requests.extend(make_update(phase.batch_size) for _ in range(updates))
            continue
        credit, issued = 0.0, 0
        per_query = updates / queries
        for _ in range(queries):
            credit += per_query
            while credit >= 1.0 and issued < updates:
                requests.append(make_update(phase.batch_size))
                issued += 1
                credit -= 1.0
            requests.append(make_query())
        while issued < updates:
            requests.append(make_update(phase.batch_size))
            issued += 1
    return requests


@dataclass
class TrafficSummary:
    """What one replay of a request stream did and cost."""

    queries: int = 0
    updates: int = 0
    #: Queries answered off the normal path (DegradedResult unwrapped).
    degraded: int = 0
    answers: list = field(default_factory=list)

    @property
    def operations(self) -> int:
        return self.queries + self.updates


def run_traffic(server: ViewServer, requests: list[Request]) -> TrafficSummary:
    """Replay a request stream through a server."""
    summary = TrafficSummary()
    for request in requests:
        if request.kind == "update":
            assert request.txn is not None
            server.apply_update(request.txn, client=request.client)
            summary.updates += 1
        else:
            assert request.view is not None
            answer = server.query(
                request.view, request.lo, request.hi, client=request.client
            )
            if isinstance(answer, DegradedResult):
                summary.degraded += 1
                answer = answer.unwrap()
            summary.answers.append(
                len(answer) if isinstance(answer, list) else answer
            )
            summary.queries += 1
    return summary
