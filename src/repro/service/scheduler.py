"""Refresh scheduling: when deferred views fold their backlog.

The paper's deferred strategy refreshes *on demand*, just before a
query reads the view.  Its Section 4 future work sketches two more
policies, which :mod:`repro.core.policies` prices analytically and
this scheduler executes:

* ``on_demand`` — the paper's policy: every query refreshes first.
* ``periodic(every=j)`` — refresh only every *j*-th query; the other
  queries serve the stale stored copy (Adiba & Lindsay snapshots'
  read side, staleness exposed per view).
* ``async_refresh`` — refresh in the background after updates, so
  query-time latency only pays the (usually empty) residual backlog.

Policies only change behaviour for views that *have* a refresh step
(deferred maintenance); other strategies ignore them.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.core.parameters import Parameters
from repro.core.policies import (
    AsyncRefreshPoint,
    SnapshotAnalysis,
    analyze_async_refresh,
    analyze_snapshot,
)

__all__ = ["RefreshPolicy", "RefreshScheduler", "StalenessReport"]


@dataclass(frozen=True)
class RefreshPolicy:
    """One view's refresh-timing policy."""

    kind: str  # "on_demand" | "periodic" | "async"
    #: Refresh every this-many queries (periodic only).
    every: int = 1

    def __post_init__(self) -> None:
        if self.kind not in ("on_demand", "periodic", "async"):
            raise ValueError(f"unknown refresh policy kind {self.kind!r}")
        if self.every < 1:
            raise ValueError(f"refresh period must be >= 1, got {self.every}")

    @classmethod
    def on_demand(cls) -> "RefreshPolicy":
        return cls("on_demand")

    @classmethod
    def periodic(cls, every: int) -> "RefreshPolicy":
        return cls("periodic", every=every)

    @classmethod
    def async_refresh(cls) -> "RefreshPolicy":
        return cls("async")


@dataclass(frozen=True)
class StalenessReport:
    """How far behind the true relation a view's stored copy may be."""

    view: str
    policy: str
    #: AD entries not yet folded into the base/view.
    pending_ad_entries: int
    #: Queries answered since the last refresh actually ran.
    queries_since_refresh: int

    @property
    def is_fresh(self) -> bool:
        return self.pending_ad_entries == 0


class RefreshScheduler:
    """Per-view refresh policies plus the bookkeeping to apply them."""

    def __init__(self) -> None:
        self._policies: dict[str, RefreshPolicy] = {}
        self._queries_seen: dict[str, int] = {}
        self._queries_since_refresh: dict[str, int] = {}
        self._checkpoint_every: int | None = None
        self._ops_since_checkpoint = 0
        #: Serializes the counting decisions so concurrent request
        #: threads never double-count a periodic cycle position.
        self._mutex = threading.RLock()

    def set_policy(self, view: str, policy: RefreshPolicy) -> None:
        with self._mutex:
            self._policies[view] = policy
            self._queries_seen.setdefault(view, 0)
            self._queries_since_refresh.setdefault(view, 0)

    def policy_of(self, view: str) -> RefreshPolicy:
        return self._policies.get(view, RefreshPolicy.on_demand())

    # ------------------------------------------------------------------
    # decision points (called by the server)
    # ------------------------------------------------------------------
    def should_refresh_on_query(self, view: str) -> bool:
        """Whether this query must fold the backlog before answering.

        Counts the query either way, so periodic views hit their cycle
        deterministically (query 1 refreshes, then every ``every``-th).
        """
        policy = self.policy_of(view)
        with self._mutex:
            seen = self._queries_seen.get(view, 0)
            self._queries_seen[view] = seen + 1
        if policy.kind == "periodic":
            return seen % policy.every == 0
        if policy.kind == "async":
            # Background refreshes keep the backlog near zero; a query
            # still folds any residue so answers stay correct.
            return True
        return True

    def wants_background_refresh(self, view: str) -> bool:
        """Whether updates to this view's relation trigger idle-time work."""
        return self.policy_of(view).kind == "async"

    def note_refreshed(self, view: str) -> None:
        with self._mutex:
            self._queries_since_refresh[view] = 0

    def note_stale_answer(self, view: str) -> None:
        with self._mutex:
            self._queries_since_refresh[view] = (
                self._queries_since_refresh.get(view, 0) + 1
            )

    def queries_since_refresh(self, view: str) -> int:
        return self._queries_since_refresh.get(view, 0)

    # ------------------------------------------------------------------
    # checkpoint cadence (repro.durability)
    # ------------------------------------------------------------------
    @property
    def checkpoint_every(self) -> int | None:
        return self._checkpoint_every

    def set_checkpoint_every(self, every: int | None) -> None:
        """Checkpoint after every ``every`` served requests (None = never)."""
        if every is not None and every < 1:
            raise ValueError(f"checkpoint period must be >= 1, got {every}")
        with self._mutex:
            self._checkpoint_every = every
            self._ops_since_checkpoint = 0

    def note_operation(self) -> None:
        """Count one served request toward the checkpoint cadence."""
        with self._mutex:
            self._ops_since_checkpoint += 1

    def should_checkpoint(self) -> bool:
        return (
            self._checkpoint_every is not None
            and self._ops_since_checkpoint >= self._checkpoint_every
        )

    def note_checkpoint(self) -> None:
        with self._mutex:
            self._ops_since_checkpoint = 0

    # ------------------------------------------------------------------
    # pricing (Section 4 analyses)
    # ------------------------------------------------------------------
    @staticmethod
    def price_policy(
        params: Parameters, policy: RefreshPolicy, extra_refreshes: int = 1
    ) -> AsyncRefreshPoint | SnapshotAnalysis | None:
        """Analytic cost profile of a policy under the given workload.

        ``on_demand`` is the paper's baseline (priced by the ``TOTAL_*``
        formulas themselves) so it returns ``None``; ``periodic`` maps
        to the snapshot analysis, ``async`` to the async-refresh trade.
        """
        if policy.kind == "periodic":
            return analyze_snapshot(params, policy.every)
        if policy.kind == "async":
            return analyze_async_refresh(params, extra_refreshes)
        return None
