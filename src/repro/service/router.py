"""Adaptive strategy routing: re-run the advisor on live statistics.

The paper's decision procedure (its conclusion, executable in
:mod:`repro.core.advisor`) assumes the workload parameters are known.
A server doesn't know them — it *observes* them.  The router keeps
exponentially decayed per-view statistics (update/query ratio ``P``,
batch size ``l``, query width ``f_v``, selectivity ``f`` via the
histogram estimator), periodically rebuilds a
:class:`~repro.core.parameters.Parameters` set from them, re-runs the
advisor, and — with hysteresis so estimation noise doesn't cause
thrash — migrates the view to the recommended strategy through
:meth:`ViewServer.migrate`.

Candidates are restricted to strategies the live catalog can actually
host: deferred needs a hypothetical relation, clustered query
modification needs the base clustered on the view key, joins use the
nested-loop plan instead of the Model 1 variants.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.core.advisor import evaluate
from repro.core.estimation import estimate_selectivity
from repro.core.parameters import PAPER_DEFAULTS, Parameters
from repro.core.strategies import Strategy, ViewModel
from repro.hr.differential import HypotheticalRelation
from repro.views.definition import AggregateView, JoinView, SelectProjectView

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .server import ViewServer

__all__ = ["AdaptiveRouter", "RouterConfig", "StrategySwitch", "WorkloadStats"]


@dataclass
class WorkloadStats:
    """Exponentially decayed view-workload statistics.

    Decay keeps the estimates tracking the *recent* mix: after a phase
    change, old observations fade with half-life ``ln 2 / (1 - decay)``
    operations (~34 ops at the default 0.98).
    """

    decay: float = 0.98
    update_weight: float = 0.0
    query_weight: float = 0.0
    #: EWMA of tuples modified per transaction (the paper's ``l``).
    avg_batch_size: float = 0.0
    #: EWMA of the query range width in key units.
    avg_query_width: float = 0.0
    operations: int = 0

    def observe_update(self, batch_size: int) -> None:
        self.update_weight = self.update_weight * self.decay + 1.0
        self.query_weight *= self.decay
        self.avg_batch_size = self._ewma(self.avg_batch_size, float(batch_size))
        self.operations += 1

    def observe_query(self, width: float | None) -> None:
        self.query_weight = self.query_weight * self.decay + 1.0
        self.update_weight *= self.decay
        if width is not None:
            self.avg_query_width = self._ewma(self.avg_query_width, width)
        self.operations += 1

    def _ewma(self, current: float, sample: float) -> float:
        if current == 0.0:
            return sample
        return current * self.decay + sample * (1.0 - self.decay)

    @property
    def P(self) -> float:
        """Estimated update probability ``k/(k+q)`` over the window."""
        total = self.update_weight + self.query_weight
        return self.update_weight / total if total > 0 else 0.0


@dataclass(frozen=True)
class RouterConfig:
    """Hysteresis and cadence knobs for the adaptive router."""

    #: Re-run the advisor every this-many operations per view.
    decision_every: int = 25
    #: Minimum operations between two migrations of the same view.
    min_dwell: int = 50
    #: The challenger must beat the incumbent's estimated cost by this
    #: relative margin before a migration is worth its rebuild cost.
    min_relative_margin: float = 0.15
    #: Statistics decay per operation (see :class:`WorkloadStats`).
    decay: float = 0.98
    #: Don't decide before both sides of the mix have been seen a bit.
    min_weight: float = 2.0


@dataclass(frozen=True)
class StrategySwitch:
    """One migration the router performed."""

    view: str
    from_strategy: Strategy
    to_strategy: Strategy
    at_operation: int
    estimated_p: float
    #: Challenger's relative advantage over the incumbent at decision time.
    relative_advantage: float


#: Strategies the router will consider per view model.  Model 1 and 3
#: use the clustered query-modification plan (the paper's cheapest QM
#: variant when the base is clustered on the predicate attribute);
#: Model 2 uses the nested-loop join.
_CANDIDATES: dict[ViewModel, tuple[Strategy, ...]] = {
    ViewModel.SELECT_PROJECT: (Strategy.DEFERRED, Strategy.IMMEDIATE, Strategy.QM_CLUSTERED),
    ViewModel.JOIN: (Strategy.DEFERRED, Strategy.IMMEDIATE, Strategy.QM_LOOPJOIN),
    ViewModel.AGGREGATE: (Strategy.DEFERRED, Strategy.IMMEDIATE, Strategy.QM_CLUSTERED),
}


def _model_of(definition: Any) -> ViewModel:
    if isinstance(definition, JoinView):
        return ViewModel.JOIN
    if isinstance(definition, AggregateView):
        return ViewModel.AGGREGATE
    if isinstance(definition, SelectProjectView):
        return ViewModel.SELECT_PROJECT
    raise TypeError(f"unknown view definition {type(definition).__name__}")


class AdaptiveRouter:
    """Per-view statistics plus the decide-and-migrate loop."""

    def __init__(self, config: RouterConfig | None = None) -> None:
        self.config = config or RouterConfig()
        self.stats: dict[str, WorkloadStats] = {}
        self.switches: list[StrategySwitch] = []
        self._last_switch_op: dict[str, int] = {}
        self._last_decision_op: dict[str, int] = {}
        #: Guards the decayed statistics: observation hooks run on hot
        #: request threads while decisions run under the server's
        #: admin (write) lock.
        self._mutex = threading.RLock()

    def stats_for(self, view: str) -> WorkloadStats:
        with self._mutex:
            stats = self.stats.get(view)
            if stats is None:
                stats = WorkloadStats(decay=self.config.decay)
                self.stats[view] = stats
            return stats

    # ------------------------------------------------------------------
    # observation hooks (called by the server)
    # ------------------------------------------------------------------
    def observe_update(self, view: str, batch_size: int) -> None:
        with self._mutex:
            self.stats_for(view).observe_update(batch_size)

    def observe_query(self, view: str, width: float | None) -> None:
        with self._mutex:
            self.stats_for(view).observe_query(width)

    def decision_due(self, view: str) -> bool:
        """Cheap hot-path pre-check: is a decision worth the admin lock?

        Mirrors :meth:`maybe_switch`'s cadence gate without taking it,
        so request threads only escalate to the server's exclusive
        (write) lock when the router would actually deliberate.
        """
        with self._mutex:
            stats = self.stats.get(view)
            if stats is None:
                return False
            last_decision = self._last_decision_op.get(view, 0)
            return stats.operations - last_decision >= self.config.decision_every

    # ------------------------------------------------------------------
    # estimation
    # ------------------------------------------------------------------
    def estimate_parameters(self, server: "ViewServer", view: str) -> Parameters | None:
        """Live :class:`Parameters` from the window statistics.

        ``N``/``S``/``B`` from the catalog, ``f`` from the histogram
        estimator over the predicate interval, the mix from the decayed
        weights.  Returns ``None`` while the window is too thin.
        """
        stats = self.stats_for(view)
        cfg = self.config
        if stats.query_weight < cfg.min_weight:
            return None
        definition = server.definition_of(view)
        db = server.database
        relation_name = (
            definition.outer if isinstance(definition, JoinView) else definition.relation
        )
        relation = db.relations[relation_name]
        base = relation.base if hasattr(relation, "base") else relation
        n_tuples = max(1, len(base))

        selectivity = definition.predicate.selectivity_hint() or PAPER_DEFAULTS.f
        intervals = definition.predicate.intervals()
        if intervals:
            iv = intervals[0]
            measured = estimate_selectivity(db, relation_name, iv.field, iv.lo, iv.hi)
            if measured > 0:
                selectivity = measured
        selectivity = min(1.0, max(1e-6, selectivity))

        f_v = PAPER_DEFAULTS.f_v
        view_width = None
        if intervals:
            try:
                view_width = float(intervals[0].hi - intervals[0].lo + 1)
            except TypeError:
                view_width = None
        if stats.avg_query_width > 0 and view_width:
            f_v = min(1.0, max(1e-6, stats.avg_query_width / view_width))

        f_r2 = PAPER_DEFAULTS.f_r2
        if isinstance(definition, JoinView):
            inner = db.relations[definition.inner]
            f_r2 = min(1.0, max(1e-9, len(inner) / n_tuples))

        return Parameters(
            N=n_tuples,
            S=base.schema.tuple_bytes,
            B=db.block_bytes,
            k=stats.update_weight,
            l=max(1.0, stats.avg_batch_size),
            q=stats.query_weight,
            f=selectivity,
            f_v=f_v,
            f_r2=f_r2,
            c1=server.params.c1,
            c2=server.params.c2,
            c3=server.params.c3,
        )

    def candidates(self, server: "ViewServer", view: str) -> tuple[Strategy, ...]:
        """Strategies the live catalog can host for this view.

        Deferred needs a hypothetical relation.  Conversely, while the
        relation *is* hypothetical, the immediate cost model doesn't
        apply: it assumes updates write the base in place, whereas an
        HR-backed immediate view pays the AD append *and* the fold —
        so immediate is only offered once the relation is plain.
        Clustered query modification needs the base clustered on the
        attribute the view selects on.
        """
        definition = server.definition_of(view)
        model = _model_of(definition)
        relation_name = (
            definition.outer if isinstance(definition, JoinView) else definition.relation
        )
        relation = server.database.relations[relation_name]
        hypothetical = isinstance(relation, HypotheticalRelation)
        allowed = []
        for strategy in _CANDIDATES[model]:
            if strategy is Strategy.DEFERRED and not hypothetical:
                continue
            if strategy is Strategy.IMMEDIATE and hypothetical:
                continue
            if strategy is Strategy.QM_CLUSTERED:
                base = relation.base if hasattr(relation, "base") else relation
                view_key = getattr(definition, "view_key", None)
                clustered_key = view_key is None or base.clustered_on == view_key
                if isinstance(definition, AggregateView):
                    intervals = definition.predicate.intervals()
                    clustered_key = bool(intervals) and base.clustered_on == intervals[0].field
                if not clustered_key:
                    continue
            allowed.append(strategy)
        return tuple(allowed)

    # ------------------------------------------------------------------
    # the decision loop
    # ------------------------------------------------------------------
    def maybe_switch(self, server: "ViewServer", view: str) -> StrategySwitch | None:
        """Re-run the advisor if due; migrate when a challenger wins big."""
        with self._mutex:
            return self._maybe_switch(server, view)

    def _maybe_switch(self, server: "ViewServer", view: str) -> StrategySwitch | None:
        stats = self.stats_for(view)
        cfg = self.config
        last_decision = self._last_decision_op.get(view, 0)
        if stats.operations - last_decision < cfg.decision_every:
            return None
        self._last_decision_op[view] = stats.operations
        if min(stats.update_weight, stats.query_weight) < cfg.min_weight:
            return None
        params = self.estimate_parameters(server, view)
        if params is None:
            return None
        candidates = self.candidates(server, view)
        current = server.strategy_of(view)
        if current not in candidates or len(candidates) < 2:
            return None
        model = _model_of(server.definition_of(view))
        breakdowns = evaluate(params, model, strategies=candidates)
        best = min(breakdowns.values(), key=lambda bd: bd.total)
        if best.strategy is current:
            return None
        incumbent = breakdowns[current].total
        if incumbent <= 0:
            return None
        advantage = (incumbent - best.total) / incumbent
        if advantage < cfg.min_relative_margin:
            return None
        last_switch = self._last_switch_op.get(view)
        if last_switch is not None and stats.operations - last_switch < cfg.min_dwell:
            return None
        server.migrate(view, best.strategy)
        switch = StrategySwitch(
            view=view,
            from_strategy=current,
            to_strategy=best.strategy,
            at_operation=stats.operations,
            estimated_p=stats.P,
            relative_advantage=advantage,
        )
        self.switches.append(switch)
        self._last_switch_op[view] = stats.operations
        return switch
