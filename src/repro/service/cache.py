"""A versioned query-result cache for the materialized-view read path.

Repeated queries over an unchanged view are common in the paper's
workloads (``q`` consecutive queries between update batches), yet each
one re-scans the stored copy.  :class:`QueryResultCache` short-circuits
them: answers are keyed by ``(view, lo, hi)`` and stamped with the
*update epochs* of every base relation the view draws from.  An update
to a relation bumps its epoch, so every cached answer that depended on
it silently misses from then on — no scanning, no invalidation lists.

The invalidation rule, precisely:

    a hit requires the stored epoch vector to equal the current one,
    and an entry is only ever stored for a *fresh* answer (one that
    reflects all updates applied so far).

Freshness is what makes a hit safe to serve without touching the
engine: epochs unchanged ⇒ no update since the answer was computed ⇒
the answer is still the view's current logical content (and a deferred
view's backlog is still empty, so the skipped refresh was a no-op).

The cache is **opt-in**: :class:`~repro.service.server.ViewServer`
only consults it when one is passed in, so the paper-faithful cost
accounting of the default configuration is untouched.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Iterable

__all__ = ["QueryResultCache"]

Key = tuple[str, Any, Any]
Token = tuple[tuple[str, int], ...]


class QueryResultCache:
    """LRU cache of fresh view answers, invalidated by relation epochs."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._mutex = threading.Lock()
        self._entries: "OrderedDict[Key, tuple[Token, Any]]" = OrderedDict()
        self._epochs: dict[str, int] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    # ------------------------------------------------------------------
    # epochs
    # ------------------------------------------------------------------
    def epoch_token(self, relations: Iterable[str]) -> Token:
        """The current epoch vector of a view's source relations.

        Sample it while holding the relations' striped locks (any
        mode): updates bump epochs under the write side, so the token
        is consistent with the answer read under the same locks.
        """
        with self._mutex:
            return tuple(
                (name, self._epochs.get(name, 0)) for name in sorted(set(relations))
            )

    def bump(self, relation: str) -> None:
        """Record one committed update batch against a relation."""
        with self._mutex:
            self._epochs[relation] = self._epochs.get(relation, 0) + 1

    # ------------------------------------------------------------------
    # lookup / store
    # ------------------------------------------------------------------
    def get(self, view: str, lo: Any, hi: Any, token: Token) -> tuple[bool, Any]:
        """``(hit, answer)``; a stale entry is dropped on the way out."""
        key = (view, lo, hi)
        with self._mutex:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return False, None
            stored_token, answer = entry
            if stored_token != token:
                del self._entries[key]
                self.invalidations += 1
                self.misses += 1
                return False, None
            self._entries.move_to_end(key)
            self.hits += 1
            return True, answer

    def put(self, view: str, lo: Any, hi: Any, token: Token, answer: Any) -> None:
        key = (view, lo, hi)
        with self._mutex:
            self._entries[key] = (token, answer)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def drop_view(self, view: str) -> None:
        """Forget every range cached for one view (repair/recovery)."""
        with self._mutex:
            for key in [k for k in self._entries if k[0] == view]:
                del self._entries[key]
                self.invalidations += 1

    def clear(self) -> None:
        with self._mutex:
            self.invalidations += len(self._entries)
            self._entries.clear()

    def __len__(self) -> int:
        with self._mutex:
            return len(self._entries)
