"""Framed JSON RPC between the front-end router and shard workers.

The wire protocol is deliberately small: every message is one JSON
document preceded by a 4-byte big-endian length.  Requests carry a
monotonically increasing per-connection ``id`` which the worker echoes
back, so a response can never be credited to the wrong call even after
a timeout left a late reply in the pipe — the client discards frames
whose id is not the one it is waiting for.

Failure classes the router distinguishes:

* :class:`ShardTimeout` — the worker did not answer within the
  per-call deadline.  The connection is *poisoned* (a late reply would
  desynchronize framing), so subsequent calls fail fast with
  :class:`ShardUnavailable` until the cluster is rebuilt.
* :class:`ShardUnavailable` — the worker is gone (EOF, broken pipe, or
  a previously poisoned connection).
* :class:`RemoteOpError` — the worker executed the call and raised;
  the exception class name and message come back in the error frame.
"""

from __future__ import annotations

import json
import socket
import struct
import threading
from typing import Any, Mapping

__all__ = [
    "RpcError",
    "ShardTimeout",
    "ShardUnavailable",
    "RemoteOpError",
    "FrameError",
    "ShardClient",
    "send_frame",
    "recv_frame",
]

_LENGTH = struct.Struct("!I")

#: Upper bound on one frame; a corrupt length prefix fails loudly
#: instead of attempting a multi-gigabyte read.
MAX_FRAME_BYTES = 64 * 1024 * 1024


class RpcError(Exception):
    """Base class for shard RPC failures."""


class FrameError(RpcError):
    """The byte stream does not parse as the framed protocol."""


class ShardTimeout(RpcError):
    """A shard missed its per-call deadline."""

    def __init__(self, shard_id: int, op: str, timeout: float) -> None:
        super().__init__(
            f"shard {shard_id} did not answer {op!r} within {timeout:.3f}s"
        )
        self.shard_id = shard_id
        self.op = op
        self.timeout = timeout


class ShardUnavailable(RpcError):
    """A shard's connection is closed, broken, or poisoned."""

    def __init__(self, shard_id: int, reason: str) -> None:
        super().__init__(f"shard {shard_id} unavailable: {reason}")
        self.shard_id = shard_id
        self.reason = reason


class RemoteOpError(RpcError):
    """The worker ran the operation and it raised."""

    def __init__(self, shard_id: int, kind: str, message: str) -> None:
        super().__init__(f"shard {shard_id} {kind}: {message}")
        self.shard_id = shard_id
        self.kind = kind
        self.message = message


def send_frame(sock: socket.socket, doc: Mapping[str, Any]) -> None:
    """Write one length-prefixed JSON frame."""
    payload = json.dumps(doc, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(f"frame of {len(payload)} bytes exceeds the protocol cap")
    sock.sendall(_LENGTH.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    """Read exactly ``n`` bytes; ``None`` on clean EOF at a boundary."""
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if chunks:
                raise FrameError("connection closed mid-frame")
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> dict[str, Any] | None:
    """Read one frame; ``None`` means the peer closed cleanly."""
    header = _recv_exact(sock, _LENGTH.size)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"frame length {length} exceeds the protocol cap")
    payload = _recv_exact(sock, length)
    if payload is None:
        raise FrameError("connection closed between header and payload")
    try:
        doc = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"frame payload is not JSON: {exc}") from exc
    if not isinstance(doc, dict):
        raise FrameError(f"frame must be a JSON object, got {type(doc).__name__}")
    return doc


class ShardClient:
    """The router's handle on one shard worker connection.

    Calls are serialized per shard (one outstanding request per
    connection); cross-shard parallelism comes from the router issuing
    calls on *different* clients concurrently.  A timeout or transport
    error poisons the connection: in-order framing cannot be trusted
    after an abandoned request, so every later call fails fast with
    :class:`ShardUnavailable` instead of reading a stale frame.
    """

    def __init__(
        self, sock: socket.socket, shard_id: int, timeout: float = 10.0
    ) -> None:
        self.sock = sock
        self.shard_id = shard_id
        self.timeout = timeout
        self._mutex = threading.Lock()
        self._next_id = 0
        self._broken: str | None = None
        self._closed = False

    @property
    def broken(self) -> str | None:
        """Why the connection is poisoned, or ``None`` if healthy."""
        return self._broken

    def call(self, op: str, timeout: float | None = None, **params: Any) -> Any:
        """One request/response round trip; returns the result payload."""
        deadline = self.timeout if timeout is None else timeout
        with self._mutex:
            if self._closed:
                raise ShardUnavailable(self.shard_id, "client closed")
            if self._broken is not None:
                raise ShardUnavailable(self.shard_id, self._broken)
            self._next_id += 1
            request_id = self._next_id
            request = {"id": request_id, "op": op}
            request.update(params)
            try:
                self.sock.settimeout(deadline)
                send_frame(self.sock, request)
                while True:
                    response = recv_frame(self.sock)
                    if response is None:
                        self._broken = "worker closed the connection"
                        raise ShardUnavailable(self.shard_id, self._broken)
                    if response.get("id") == request_id:
                        break
                    # A frame from an earlier abandoned request would
                    # have poisoned the connection already; an unknown
                    # id here is a protocol violation.
                    self._broken = f"out-of-order response id {response.get('id')!r}"
                    raise ShardUnavailable(self.shard_id, self._broken)
            except socket.timeout:
                self._broken = f"timed out waiting for {op!r}"
                raise ShardTimeout(self.shard_id, op, deadline) from None
            except (OSError, FrameError) as exc:
                if self._broken is None:
                    self._broken = f"transport error: {exc}"
                raise ShardUnavailable(self.shard_id, self._broken) from exc
        if response.get("ok"):
            return response.get("result")
        raise RemoteOpError(
            self.shard_id,
            str(response.get("kind", "Exception")),
            str(response.get("error", "unknown remote failure")),
        )

    def close(self) -> None:
        with self._mutex:
            if self._closed:
                return
            self._closed = True
            try:
                self.sock.close()
            except OSError:
                pass
