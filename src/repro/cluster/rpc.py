"""Framed JSON RPC between the front-end router and shard workers.

The wire protocol is deliberately small: every message is one JSON
document preceded by a 4-byte big-endian length.  Requests carry a
monotonically increasing per-connection ``id`` which the worker echoes
back, so a response can never be credited to the wrong call even after
a timeout left a late reply in the pipe — the client discards frames
whose id is not the one it is waiting for.

Failure classes the router distinguishes:

* :class:`ShardTimeout` — the worker did not answer within the
  per-call deadline.  The call is abandoned but the connection
  *recovers*: the client keeps a persistent receive buffer (a partial
  frame stays buffered across the timeout, so framing never
  desynchronizes) and ids are monotonic, so the next call simply
  drains and discards any late replies to abandoned requests.  One
  slow call — e.g. a request whose remaining gateway deadline was fed
  in as the RPC timeout — therefore degrades that call only, it does
  not remove the shard from service.
* :class:`ShardUnavailable` — the worker is gone (EOF, broken pipe) or
  the connection is poisoned.  Poisoning is reserved for genuinely
  unrecoverable desynchronization: a send that timed out mid-frame
  (the worker's inbound framing is now ahead of ours), a transport
  error, or a response id from the future.
* :class:`RemoteOpError` — the worker executed the call and raised;
  the exception class name and message come back in the error frame.
"""

from __future__ import annotations

import json
import socket
import struct
import threading
import time
from typing import Any, Mapping

__all__ = [
    "RpcError",
    "ShardTimeout",
    "ShardUnavailable",
    "RemoteOpError",
    "FrameError",
    "ShardClient",
    "send_frame",
    "recv_frame",
]

_LENGTH = struct.Struct("!I")

#: Upper bound on one frame; a corrupt length prefix fails loudly
#: instead of attempting a multi-gigabyte read.
MAX_FRAME_BYTES = 64 * 1024 * 1024


class RpcError(Exception):
    """Base class for shard RPC failures."""


class FrameError(RpcError):
    """The byte stream does not parse as the framed protocol."""


class ShardTimeout(RpcError):
    """A shard missed its per-call deadline."""

    def __init__(self, shard_id: int, op: str, timeout: float) -> None:
        super().__init__(
            f"shard {shard_id} did not answer {op!r} within {timeout:.3f}s"
        )
        self.shard_id = shard_id
        self.op = op
        self.timeout = timeout


class ShardUnavailable(RpcError):
    """A shard's connection is closed, broken, or poisoned."""

    def __init__(self, shard_id: int, reason: str) -> None:
        super().__init__(f"shard {shard_id} unavailable: {reason}")
        self.shard_id = shard_id
        self.reason = reason


class RemoteOpError(RpcError):
    """The worker ran the operation and it raised."""

    def __init__(self, shard_id: int, kind: str, message: str) -> None:
        super().__init__(f"shard {shard_id} {kind}: {message}")
        self.shard_id = shard_id
        self.kind = kind
        self.message = message


def send_frame(sock: socket.socket, doc: Mapping[str, Any]) -> None:
    """Write one length-prefixed JSON frame."""
    payload = json.dumps(doc, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(f"frame of {len(payload)} bytes exceeds the protocol cap")
    sock.sendall(_LENGTH.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    """Read exactly ``n`` bytes; ``None`` on clean EOF at a boundary."""
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if chunks:
                raise FrameError("connection closed mid-frame")
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> dict[str, Any] | None:
    """Read one frame; ``None`` means the peer closed cleanly."""
    header = _recv_exact(sock, _LENGTH.size)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"frame length {length} exceeds the protocol cap")
    payload = _recv_exact(sock, length)
    if payload is None:
        raise FrameError("connection closed between header and payload")
    try:
        doc = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"frame payload is not JSON: {exc}") from exc
    if not isinstance(doc, dict):
        raise FrameError(f"frame must be a JSON object, got {type(doc).__name__}")
    return doc


class ShardClient:
    """The router's handle on one shard worker connection.

    Calls are serialized per shard (one outstanding request per
    connection); cross-shard parallelism comes from the router issuing
    calls on *different* clients concurrently.  A per-call timeout
    abandons that call but keeps the connection serviceable: received
    bytes persist in :attr:`_rxbuf` (so a partial frame resumes where
    it stopped) and later calls discard stale replies by id.  Only
    unrecoverable desynchronization — a send timing out mid-frame, a
    transport error, a response id from the future — poisons the
    connection, after which every call fails fast with
    :class:`ShardUnavailable`.
    """

    def __init__(
        self,
        sock: socket.socket,
        shard_id: int,
        timeout: float = 10.0,
        address: tuple[str, int] | None = None,
    ) -> None:
        self.sock = sock
        self.shard_id = shard_id
        self.timeout = timeout
        #: Where the worker listens, when known.  A client with an
        #: address is *repairable*: :meth:`reconnect` can replace a
        #: poisoned transport with a fresh connection to the same
        #: worker instead of removing the shard from service forever.
        self.address = address
        #: Successful :meth:`reconnect` repairs on this client.
        self.reconnects_total = 0
        self._mutex = threading.Lock()
        self._next_id = 0
        self._broken: str | None = None
        self._closed = False
        #: Bytes received but not yet consumed as a whole frame.  This
        #: is what makes a recv timeout recoverable: the next call
        #: resumes at the exact framing position instead of treating
        #: mid-frame bytes as a fresh header.
        self._rxbuf = bytearray()

    @property
    def broken(self) -> str | None:
        """Why the connection is poisoned, or ``None`` if healthy."""
        return self._broken

    def reconnect(
        self,
        attempts: int = 4,
        base_delay: float = 0.05,
        max_delay: float = 1.0,
        connect_timeout: float = 2.0,
    ) -> None:
        """Replace a poisoned transport with a fresh connection.

        Retries with capped exponential backoff (``base_delay * 2**i``
        capped at ``max_delay``); on success the framing state is reset
        — receive buffer cleared, request ids restarted — because the
        new connection shares no history with the old one.  Raises
        :class:`ShardUnavailable` when no address is known or every
        attempt fails; the client stays poisoned in that case so callers
        keep failing fast.
        """
        with self._mutex:
            if self._closed:
                raise ShardUnavailable(self.shard_id, "client closed")
            if self.address is None:
                raise ShardUnavailable(
                    self.shard_id, "no worker address to reconnect to"
                )
            last_error: Exception | None = None
            for attempt in range(max(1, attempts)):
                if attempt:
                    time.sleep(min(max_delay, base_delay * 2 ** (attempt - 1)))
                try:
                    sock = socket.create_connection(
                        self.address, timeout=connect_timeout
                    )
                except OSError as exc:
                    last_error = exc
                    continue
                try:
                    # shutdown(), not just close(): workers forked after
                    # this connection was established inherited a
                    # duplicate of its descriptor, so close() alone
                    # would never deliver EOF — the worker would stay
                    # blocked on the old connection instead of
                    # accepting the replacement.  shutdown() sends FIN
                    # at the connection level regardless of how many
                    # processes still hold the descriptor.
                    self.sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                try:
                    self.sock.close()
                except OSError:
                    pass
                sock.settimeout(self.timeout)
                self.sock = sock
                self._rxbuf.clear()
                self._next_id = 0
                self._broken = None
                self.reconnects_total += 1
                return
            raise ShardUnavailable(
                self.shard_id,
                f"reconnect to {self.address} failed after {attempts} "
                f"attempts: {last_error}",
            )

    def _read_frame(self) -> dict[str, Any] | None:
        """One frame via the persistent receive buffer."""
        while True:
            if len(self._rxbuf) >= _LENGTH.size:
                (length,) = _LENGTH.unpack(bytes(self._rxbuf[:_LENGTH.size]))
                if length > MAX_FRAME_BYTES:
                    raise FrameError(
                        f"frame length {length} exceeds the protocol cap"
                    )
                end = _LENGTH.size + length
                if len(self._rxbuf) >= end:
                    payload = bytes(self._rxbuf[_LENGTH.size:end])
                    del self._rxbuf[:end]
                    try:
                        doc = json.loads(payload.decode("utf-8"))
                    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                        raise FrameError(
                            f"frame payload is not JSON: {exc}"
                        ) from exc
                    if not isinstance(doc, dict):
                        raise FrameError(
                            f"frame must be a JSON object, "
                            f"got {type(doc).__name__}"
                        )
                    return doc
            chunk = self.sock.recv(65536)
            if not chunk:
                if self._rxbuf:
                    raise FrameError("connection closed mid-frame")
                return None
            self._rxbuf += chunk

    def call(self, op: str, timeout: float | None = None, **params: Any) -> Any:
        """One request/response round trip; returns the result payload."""
        deadline = self.timeout if timeout is None else timeout
        with self._mutex:
            if self._closed:
                raise ShardUnavailable(self.shard_id, "client closed")
            if self._broken is not None:
                raise ShardUnavailable(self.shard_id, self._broken)
            self._next_id += 1
            request_id = self._next_id
            request = {"id": request_id, "op": op}
            request.update(params)
            try:
                self.sock.settimeout(deadline)
                send_frame(self.sock, request)
            except socket.timeout:
                # A partial outbound frame cannot be resumed — the
                # worker's inbound framing is now ahead of ours.
                self._broken = f"send of {op!r} timed out mid-frame"
                raise ShardTimeout(self.shard_id, op, deadline) from None
            except OSError as exc:
                self._broken = f"transport error: {exc}"
                raise ShardUnavailable(self.shard_id, self._broken) from exc
            try:
                while True:
                    response = self._read_frame()
                    if response is None:
                        self._broken = "worker closed the connection"
                        raise ShardUnavailable(self.shard_id, self._broken)
                    rid = response.get("id")
                    if rid == request_id:
                        break
                    if isinstance(rid, int) and 0 < rid < request_id:
                        # A late reply to a call an earlier timeout
                        # abandoned: discard it and keep reading — this
                        # is how the connection resynchronizes instead
                        # of staying poisoned.
                        continue
                    self._broken = f"out-of-order response id {rid!r}"
                    raise ShardUnavailable(self.shard_id, self._broken)
            except socket.timeout:
                # The call is abandoned; its reply, if one ever comes,
                # is drained by a later call.  Framing stays intact
                # (partial frames persist in the receive buffer), so
                # the connection itself remains usable.
                raise ShardTimeout(self.shard_id, op, deadline) from None
            except (OSError, FrameError) as exc:
                if self._broken is None:
                    self._broken = f"transport error: {exc}"
                raise ShardUnavailable(self.shard_id, self._broken) from exc
        if response.get("ok"):
            return response.get("result")
        raise RemoteOpError(
            self.shard_id,
            str(response.get("kind", "Exception")),
            str(response.get("error", "unknown remote failure")),
        )

    def close(self) -> None:
        with self._mutex:
            if self._closed:
                return
            self._closed = True
            try:
                self.sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self.sock.close()
            except OSError:
                pass
