"""Process-level fault injection for the replicated cluster.

The :class:`ChaosInjector` attacks a live router's worker processes
with real signals — no mocks, no cooperative flags:

* ``kill``/``kill_primary``/``kill_random_replica`` — SIGKILL, the
  crash the failover machinery exists for;
* ``pause``/``resume`` — SIGSTOP/SIGCONT, a *black-holed* worker: the
  process is alive (its listener even accepts connections at the
  kernel level) but answers nothing, which is exactly the failure mode
  heartbeat timeouts and suspect/dead thresholds must catch;
* ``delay`` — SIGSTOP now, SIGCONT after a timer: a worker that stalls
  long enough to miss deadlines, then comes back and must be
  re-integrated (or stay demoted) without corrupting anything.

Every injection is appended to :attr:`events` with a monotonic offset,
so an experiment can reconstruct the exact fault schedule it ran and
measure failover latency against the recorded kill instants.
Randomized choices draw from a seeded generator — the same seed
replays the same schedule.
"""

from __future__ import annotations

import os
import random
import signal
import threading
import time
from typing import Any

from .replication import Member

__all__ = ["ChaosError", "ChaosInjector"]


class ChaosError(RuntimeError):
    """The requested fault has no valid target."""


class ChaosInjector:
    """Seeded signal-level fault injection against one router."""

    def __init__(self, router: Any, seed: int = 0) -> None:
        self.router = router
        self.random = random.Random(seed)
        #: Injection log: ``{"t", "action", "shard", "member", "pid"}``
        #: with ``t`` seconds since this injector was created.
        self.events: list[dict[str, Any]] = []
        self._t0 = time.monotonic()
        self._lock = threading.Lock()
        self._timers: list[threading.Timer] = []

    def _log(self, action: str, member: Member, shard_id: int) -> dict[str, Any]:
        event = {
            "t": round(time.monotonic() - self._t0, 6),
            "action": action,
            "shard": shard_id,
            "member": member.member_id,
            "pid": member.process.pid,
        }
        with self._lock:
            self.events.append(event)
        return event

    def _shard_of(self, member: Member) -> int:
        for replica_set in self.router.shards:
            if member in replica_set.members:
                return replica_set.shard_id
        return -1

    def _signal(self, member: Member, signum: int) -> None:
        pid = member.process.pid
        if pid is None:
            raise ChaosError(f"member m{member.member_id} has no pid")
        try:
            os.kill(pid, signum)
        except ProcessLookupError as exc:
            raise ChaosError(
                f"member m{member.member_id} (pid {pid}) is already gone"
            ) from exc

    # ------------------------------------------------------------------
    # crashes
    # ------------------------------------------------------------------
    def kill(self, member: Member) -> dict[str, Any]:
        """SIGKILL one worker — no drain, no goodbye frame."""
        self._signal(member, signal.SIGKILL)
        return self._log("kill", member, self._shard_of(member))

    def kill_primary(self, shard: int) -> dict[str, Any]:
        member = self.router.shards[shard].primary
        if member is None or not member.process.is_alive():
            raise ChaosError(f"shard {shard} has no live primary to kill")
        return self.kill(member)

    def kill_random_replica(self, shard: int | None = None) -> dict[str, Any]:
        sets = (
            self.router.shards if shard is None
            else [self.router.shards[shard]]
        )
        candidates = [m for rs in sets for m in rs.live_replicas()]
        if not candidates:
            raise ChaosError("no live replica to kill")
        return self.kill(self.random.choice(candidates))

    # ------------------------------------------------------------------
    # black holes and delays
    # ------------------------------------------------------------------
    def pause(self, member: Member) -> dict[str, Any]:
        """SIGSTOP: the worker black-holes every RPC but stays alive."""
        self._signal(member, signal.SIGSTOP)
        return self._log("pause", member, self._shard_of(member))

    def resume(self, member: Member) -> dict[str, Any]:
        self._signal(member, signal.SIGCONT)
        return self._log("resume", member, self._shard_of(member))

    def delay(self, member: Member, seconds: float) -> dict[str, Any]:
        """Stall the worker for ``seconds``, then let it continue."""
        event = self.pause(member)
        timer = threading.Timer(seconds, self._safe_resume, args=(member,))
        timer.daemon = True
        timer.start()
        with self._lock:
            self._timers.append(timer)
        return event

    def _safe_resume(self, member: Member) -> None:
        try:
            self.resume(member)
        except ChaosError:
            pass  # killed or reaped while stopped; nothing to resume

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def at(self, delay_s: float, action: Any, *args: Any) -> threading.Timer:
        """Run one injection (or any callable) after ``delay_s``.

        Exceptions from the scheduled action are swallowed after being
        logged as ``failed:<action>`` events — a fault that lost its
        race (the target died first) must not take the experiment down.
        """
        def fire() -> None:
            try:
                action(*args)
            except ChaosError:
                with self._lock:
                    self.events.append({
                        "t": round(time.monotonic() - self._t0, 6),
                        "action": f"failed:{getattr(action, '__name__', action)}",
                        "shard": args[0] if args else None,
                        "member": None,
                        "pid": None,
                    })

        timer = threading.Timer(delay_s, fire)
        timer.daemon = True
        timer.start()
        with self._lock:
            self._timers.append(timer)
        return timer

    def close(self) -> None:
        """Cancel pending timers and resume anything still stopped."""
        with self._lock:
            timers = list(self._timers)
            self._timers.clear()
        for timer in timers:
            timer.cancel()
        for replica_set in self.router.shards:
            for member in replica_set.members:
                if member.process.is_alive():
                    try:
                        os.kill(member.process.pid, signal.SIGCONT)
                    except (ProcessLookupError, TypeError):
                        pass

    def __enter__(self) -> "ChaosInjector":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
