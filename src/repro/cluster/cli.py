"""``repro-cluster``: drive a sharded cluster from the command line.

Forks N shard workers over the demo data set, runs paced concurrent
traffic through the scatter–gather router, and reports aggregate
throughput plus the per-shard epoch accounting::

    repro-cluster --shards 4                       # 4-way range-sharded demo
    repro-cluster --shards 8 --scheme hash         # consistent-hash placement
    repro-cluster --shards 2 --strategy immediate  # strategy twin
    repro-cluster --shards 2 --replicas 1          # replicated + supervised
    repro-cluster --shards 4 --json                # aggregated metrics export
    repro-cluster --shards 2 --state-dir st        # per-shard WAL + checkpoints
    repro-cluster --shards 4 --shard-map-out map.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .harness import DOMAIN, launch_demo, run_cluster_traffic

__all__ = ["main"]

_STRATEGIES = ("deferred", "immediate", "qm_clustered")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cluster",
        description="Serve a sharded multi-process materialized-view cluster "
        "behind a scatter-gather router (Hanson, SIGMOD 1987).",
    )
    parser.add_argument("--shards", type=int, default=2, metavar="N",
                        help="shard worker processes (default 2)")
    parser.add_argument("--scheme", choices=("range", "hash"), default="range",
                        help="tuple placement: key range (prunable routing) "
                        "or consistent hash (default range)")
    parser.add_argument("--strategy", choices=_STRATEGIES, default="deferred",
                        help="maintenance strategy on every shard "
                        "(default deferred)")
    parser.add_argument("--records", type=int, default=480,
                        help="tuples in the demo relation (default 480)")
    parser.add_argument("--threads", type=int, default=4,
                        help="concurrent client threads (default 4)")
    parser.add_argument("--ops", type=int, default=60, metavar="N",
                        help="operations per client thread (default 60)")
    parser.add_argument("--pacing", type=float, default=0.0, metavar="S",
                        help="wall seconds per modelled ms inside each worker "
                        "(default 0: as fast as possible)")
    parser.add_argument("--seed", type=int, default=17,
                        help="seed for data and traffic (default 17)")
    parser.add_argument("--replicas", type=int, default=0, metavar="N",
                        help="replica workers per shard beyond the primary "
                        "(default 0: unreplicated)")
    parser.add_argument("--supervise", action="store_true",
                        help="attach the health-checking supervisor "
                        "(heartbeats, failover promotion, replica respawn); "
                        "implied by --replicas > 0")
    parser.add_argument("--router-cache", action="store_true",
                        help="cache merged cross-shard results at the router")
    parser.add_argument("--state-dir", default=None, metavar="DIR",
                        help="per-shard durability directories under DIR "
                        "(DIR/shard-000, DIR/shard-001, ...)")
    parser.add_argument("--json", action="store_true",
                        help="print the aggregated cluster metrics export "
                        "(schema v1) instead of the summary")
    parser.add_argument("--shard-map-out", type=Path, default=None,
                        metavar="FILE",
                        help="also write the versioned shard map JSON to FILE")
    parser.add_argument("--listen", default=None, metavar="HOST:PORT",
                        help="serve the cluster over TCP via the repro.gateway "
                        "front door instead of running local traffic "
                        "(admission knobs: repro-gateway serve)")
    parser.add_argument("--listen-duration", type=float, default=None,
                        metavar="S", help="with --listen: serve for S seconds "
                        "then exit (default: until ^C)")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.shards < 1:
        print(f"--shards must be >= 1, got {args.shards}", file=sys.stderr)
        return 2
    if args.threads < 1:
        print(f"--threads must be >= 1, got {args.threads}", file=sys.stderr)
        return 2
    if args.replicas < 0:
        print(f"--replicas must be >= 0, got {args.replicas}", file=sys.stderr)
        return 2

    router = launch_demo(
        args.shards,
        strategy=args.strategy,
        scheme=args.scheme,
        pacing=args.pacing,
        router_cache=args.router_cache,
        n_records=args.records,
        seed=args.seed,
        state_dir=args.state_dir,
        replicas=args.replicas,
        supervise=args.supervise or args.replicas > 0,
    )
    try:
        if args.shard_map_out is not None:
            args.shard_map_out.parent.mkdir(parents=True, exist_ok=True)
            args.shard_map_out.write_text(router.shard_map.to_json(indent=2) + "\n")
        if args.listen is not None:
            # Thin shim: one network entry point — the gateway fronts
            # the scatter-gather router.
            from repro.gateway.cli import parse_listen, serve_until_interrupted
            from repro.gateway.server import ClusterBackend

            try:
                host, port = parse_listen(args.listen)
            except ValueError as exc:
                print(f"invalid --listen: {exc}", file=sys.stderr)
                return 2
            return serve_until_interrupted(
                ClusterBackend(router), host, port,
                duration=args.listen_duration,
            )
        summary = run_cluster_traffic(
            router, args.threads, args.ops, args.records
        )
        router.refresh_epoch()
        stats = router.stats()
        if args.json:
            print(json.dumps(router.cluster_metrics(), indent=2, sort_keys=True))
            return 0
        replication = (
            f", {args.replicas} replica(s)/shard (supervised)"
            if args.replicas else ""
        )
        print(
            f"cluster: {args.shards} shard(s), {args.scheme} placement over "
            f"'a' in [0, {DOMAIN}), strategy {args.strategy}, "
            f"map v{router.shard_map.version}{replication}"
        )
        print(
            f"served {summary['ops']} requests ({summary['queries']} queries, "
            f"{summary['updates']} updates) from {args.threads} threads "
            f"in {summary['wall_seconds']:.2f}s -> {summary['qps']:.0f} qps "
            f"aggregate"
        )
        print(
            f"cluster refresh epochs: {stats['epochs']} "
            f"(+{stats['coalesced_waits']} coalesced waits)"
        )
        for shard, shard_stats in sorted(stats["shards"].items()):
            relations = shard_stats.get("relations", {})
            nets = ", ".join(
                f"{rel}: net_reads={info['net_reads']} pending={info['pending']}"
                for rel, info in sorted(relations.items())
            )
            print(
                f"  shard {shard}: epochs={shard_stats.get('epochs', 0)} "
                f"coalesced={shard_stats.get('coalesced_waits', 0)}"
                + (f" [{nets}]" if nets else "")
            )
        if args.state_dir is not None:
            print(f"  durability: per-shard WAL + checkpoints under "
                  f"{args.state_dir}/shard-NNN")
        return 0
    finally:
        router.close()


if __name__ == "__main__":
    raise SystemExit(main())
