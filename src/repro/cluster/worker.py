"""Shard workers: one process, one partition, one full serving stack.

A worker hosts a complete :class:`~repro.service.server.ViewServer`
(engine + maintenance + optional durability and resilience) over its
slice of every base relation, and speaks the framed RPC protocol of
:mod:`repro.cluster.rpc` over a socket inherited from the router.

Everything a worker needs is described by a plain-dict *worker spec*
(picklable, JSON-able), so the same spec document drives the in-process
test harness, the forked benchmark workers and the ``repro-cluster``
CLI.  Views are registered with ``adaptive=False`` inside workers: a
strategy migration must be a cluster-wide decision (all shards answer
under the same strategy or the equivalence guarantee means nothing),
so per-shard routers stay off.
"""

from __future__ import annotations

import signal
import socket
from pathlib import Path
from typing import Any, Mapping

from repro.core.strategies import Strategy
from repro.engine.database import Database
from repro.engine.transaction import Delete, Insert, Operation, Transaction, Update
from repro.hr.differential import HypotheticalRelation
from repro.resilience.degradation import DegradedResult
from repro.service.cache import QueryResultCache
from repro.service.scheduler import RefreshPolicy
from repro.service.server import ViewServer
from repro.storage.tuples import Schema
from repro.views.definition import (
    AggregateView,
    JoinView,
    SelectProjectView,
    ViewTuple,
)
from repro.views.predicate import IntervalPredicate, TruePredicate
from .rpc import recv_frame, send_frame

__all__ = [
    "WorkerSpecError",
    "DeltaGapError",
    "WorkerState",
    "build_server",
    "worker_main",
    "encode_operation",
    "decode_operation",
    "encode_answer",
    "decode_answer",
]


class WorkerSpecError(ValueError):
    """A worker spec document is malformed or unsupported."""


class DeltaGapError(RuntimeError):
    """A shipped delta skipped an epoch: the replica must re-bootstrap."""


class WorkerState:
    """Per-process replication state the serve loop threads through.

    ``applied_epoch`` counts the committed update batches this worker
    has absorbed — via epoch-tagged ``update`` calls on a primary or
    ``apply_delta`` shipments on a replica — so any member can report
    how caught-up it is and serve a consistent ``snapshot`` for a
    replacement worker's bootstrap.
    """

    __slots__ = ("applied_epoch",)

    def __init__(self, applied_epoch: int = 0) -> None:
        self.applied_epoch = applied_epoch


# ----------------------------------------------------------------------
# wire encoding of transactions and answers
# ----------------------------------------------------------------------
def encode_operation(op: Operation) -> dict[str, Any]:
    if isinstance(op, Insert):
        return {"kind": "insert", "values": dict(op.record.values)}
    if isinstance(op, Delete):
        return {"kind": "delete", "key": op.key}
    return {"kind": "update", "key": op.key, "changes": dict(op.changes)}


def decode_operation(schema: Schema, doc: Mapping[str, Any]) -> Operation:
    kind = doc.get("kind")
    if kind == "insert":
        return Insert(schema.new_record(**doc["values"]))
    if kind == "delete":
        return Delete(doc["key"])
    if kind == "update":
        return Update(doc["key"], dict(doc["changes"]))
    raise WorkerSpecError(f"unknown operation kind {kind!r}")


def encode_answer(answer: Any) -> dict[str, Any]:
    """Flatten a ViewServer answer (tuples, scalar, or degraded) to JSON."""
    degraded = None
    payload = answer
    if isinstance(answer, DegradedResult):
        degraded = {
            "view": answer.view,
            "mode": answer.mode,
            "reason": answer.reason,
            "staleness_bound": answer.staleness_bound,
            "strategy": answer.strategy,
        }
        payload = answer.unwrap()
    if isinstance(payload, list):
        body = {"kind": "tuples", "items": [dict(vt.values) for vt in payload]}
    else:
        body = {"kind": "scalar", "value": payload}
    body["degraded"] = degraded
    return body


def decode_answer(doc: Mapping[str, Any]) -> tuple[Any, dict[str, Any] | None]:
    """``(payload, degraded_info)`` — the router re-wraps degraded merges."""
    if doc.get("kind") == "tuples":
        payload: Any = [ViewTuple(values) for values in doc["items"]]
    else:
        payload = doc.get("value")
    return payload, doc.get("degraded")


# ----------------------------------------------------------------------
# spec -> server
# ----------------------------------------------------------------------
def _predicate_of(doc: Mapping[str, Any] | None) -> Any:
    if doc is None:
        return TruePredicate()
    return IntervalPredicate(
        doc["field"], doc["lo"], doc["hi"], doc.get("selectivity")
    )


def _definition_of(doc: Mapping[str, Any]) -> Any:
    kind = doc.get("type")
    if kind == "select_project":
        return SelectProjectView(
            doc["name"], doc["relation"], _predicate_of(doc.get("predicate")),
            tuple(doc["projection"]), doc["view_key"],
        )
    if kind == "aggregate":
        return AggregateView(
            doc["name"], doc["relation"], _predicate_of(doc.get("predicate")),
            doc["aggregate"], doc["field"],
        )
    if kind == "join":
        return JoinView(
            doc["name"], doc["outer"], doc["inner"], doc["join_field"],
            _predicate_of(doc.get("predicate")),
            tuple(doc["outer_projection"]), tuple(doc["inner_projection"]),
            doc["view_key"],
        )
    raise WorkerSpecError(f"unknown view type {kind!r}")


def build_server(spec: Mapping[str, Any]) -> ViewServer:
    """Materialize one shard's serving stack from a worker spec.

    The spec's ``records`` lists hold only this shard's partition —
    the router does the partitioning before forking workers.
    """
    database = Database(buffer_pages=int(spec.get("buffer_pages", 256)))
    for rel in spec.get("relations", ()):
        schema = Schema(
            rel["name"], tuple(rel["fields"]), rel["key_field"],
            tuple_bytes=int(rel.get("tuple_bytes", 100)),
        )
        records = [schema.new_record(**values) for values in rel.get("records", ())]
        database.create_relation(
            schema, rel["clustered_on"], kind=rel.get("kind", "hypothetical"),
            records=records, ad_buckets=int(rel.get("ad_buckets", 2)),
        )
    server = ViewServer(
        database,
        cache=QueryResultCache() if spec.get("cache") else None,
        pacing=float(spec.get("pacing", 0.0)),
        lock_timeout=spec.get("lock_timeout", 30.0),
    )
    for view in spec.get("views", ()):
        policy_doc = view.get("policy")
        policy = (
            RefreshPolicy(policy_doc["kind"], every=policy_doc.get("every", 1))
            if policy_doc else None
        )
        server.register_view(
            _definition_of(view), Strategy(view["strategy"]),
            adaptive=False, policy=policy,
        )
    state_dir = spec.get("state_dir")
    if state_dir is not None:
        from repro.durability.manager import DurabilityManager

        manager = DurabilityManager(Path(state_dir))
        server.attach_durability(
            manager, checkpoint_every=spec.get("checkpoint_every")
        )
        server.checkpoint()
    return server


# ----------------------------------------------------------------------
# the serve loop
# ----------------------------------------------------------------------
def _logical_records(database: Database, relation_name: str) -> list[Any]:
    relation = database.relations[relation_name]
    if hasattr(relation, "scan_logical"):
        return list(relation.scan_logical())
    return list(relation.records_snapshot())


def _apply_ops(
    server: ViewServer, relation: str, ops: Any, client: str
) -> int:
    schema = server.database.relations[relation].schema
    txn = Transaction.of(
        relation, [decode_operation(schema, doc) for doc in ops]
    )
    server.apply_update(txn, client=client)
    return len(txn)


def _handle(
    server: ViewServer,
    op: str,
    request: Mapping[str, Any],
    state: WorkerState,
) -> Any:
    if op == "ping":
        return {"views": list(server.views()), "epoch": state.applied_epoch}
    if op == "update":
        # A replicated primary tags each batch with the epoch the
        # router assigned it, so a snapshot taken from this worker
        # carries an exact catch-up position — and a retried write
        # whose first attempt committed before the connection broke
        # is recognized and skipped instead of double-applied.
        epoch = request.get("epoch")
        if isinstance(epoch, int) and epoch <= state.applied_epoch:
            return {"applied": 0, "epoch": state.applied_epoch,
                    "duplicate": True}
        applied = _apply_ops(
            server, request["relation"], request["ops"],
            request.get("client", "router"),
        )
        if isinstance(epoch, int):
            state.applied_epoch = epoch
        return {"applied": applied}
    if op == "apply_delta":
        epoch = int(request["epoch"])
        if epoch <= state.applied_epoch:
            # A re-shipped batch this replica already holds (catch-up
            # after a repair overlaps the live stream): idempotent skip.
            return {"applied": 0, "epoch": state.applied_epoch,
                    "duplicate": True}
        if epoch != state.applied_epoch + 1:
            raise DeltaGapError(
                f"delta epoch {epoch} skips ahead of applied "
                f"{state.applied_epoch}; replica needs a snapshot bootstrap"
            )
        applied = _apply_ops(
            server, request["relation"], request["ops"],
            request.get("client", "replication"),
        )
        state.applied_epoch = epoch
        return {"applied": applied, "epoch": state.applied_epoch}
    if op == "snapshot":
        # The router holds the shard's write lock while fetching, so
        # the records and the epoch cut the same consistent state.
        relations = {
            name: [
                dict(record.values)
                for record in _logical_records(server.database, name)
            ]
            for name in sorted(server.database.relations)
        }
        return {"epoch": state.applied_epoch, "relations": relations}
    if op == "fetch":
        for record in _logical_records(server.database, request["relation"]):
            if record.key == request["key"]:
                return {"values": dict(record.values)}
        return {"values": None}
    if op == "query":
        answer = server.query(
            request["view"], request.get("lo"), request.get("hi"),
            client=request.get("client", "router"),
        )
        return encode_answer(answer)
    if op == "refresh":
        return {"refreshed": list(server.refresh_all_stale())}
    if op == "stats":
        relations = {}
        for name, relation in sorted(server.database.relations.items()):
            if isinstance(relation, HypotheticalRelation):
                coordinator = server.database.deferred_coordinator(name)
                relations[name] = {
                    "net_reads": relation.net_reads,
                    "pending": relation.ad_entry_count(),
                    "net_computes": (
                        coordinator.net_computes if coordinator is not None else 0
                    ),
                }
        return {
            "epochs": server.planner.epochs,
            "coalesced_waits": server.planner.coalesced_waits,
            "relations": relations,
            "degraded_views": server.degraded_views(),
        }
    if op == "metrics":
        return server.metrics_dict()
    if op == "checkpoint":
        info = server.checkpoint()
        return {"bytes_written": info.bytes_written}
    raise WorkerSpecError(f"unknown op {op!r}")


def serve(
    sock: socket.socket,
    server: ViewServer,
    shard_id: int,
    state: WorkerState | None = None,
) -> str:
    """Answer framed requests until a ``shutdown`` op or peer EOF.

    Returns ``"shutdown"`` when the router asked the worker to exit and
    ``"eof"`` when the connection merely closed — the accept loop in
    :func:`worker_main` uses the distinction to keep the process alive
    across a router-side reconnect.

    Requests on one connection are handled strictly in order, so by the
    time ``shutdown`` is read every earlier request has been fully
    answered — the drain the router's close() relies on.  The reply is
    sent *before* the durability seal so the router is never left
    waiting on a final checkpoint.
    """
    if state is None:
        state = WorkerState()
    while True:
        try:
            request = recv_frame(sock)
        except OSError:
            return "eof"
        if request is None:
            return "eof"
        request_id = request.get("id")
        op = str(request.get("op", ""))
        if op == "shutdown":
            send_frame(sock, {"id": request_id, "ok": True,
                              "result": {"shard": shard_id}})
            return "shutdown"
        try:
            result = _handle(server, op, request, state)
        except Exception as exc:  # surfaced to the router as an error frame
            response = {
                "id": request_id,
                "ok": False,
                "kind": type(exc).__name__,
                "error": str(exc),
            }
        else:
            response = {"id": request_id, "ok": True, "result": result}
        try:
            send_frame(sock, response)
        except OSError:
            return "eof"


def worker_main(
    listener: socket.socket, spec: Mapping[str, Any], shard_id: int
) -> None:
    """Process entry point for one shard worker.

    ``listener`` is a *listening* TCP socket inherited from the router.
    The worker accepts one connection at a time and serves it to EOF,
    then loops back to ``accept`` — this is what lets the router repair
    a poisoned :class:`~repro.cluster.rpc.ShardClient` with
    ``reconnect()`` instead of declaring the shard dead: the worker
    process (and all its state) outlives any single connection.  Only
    an explicit ``shutdown`` op ends the process.

    SIGINT is ignored: a Ctrl-C at the terminal reaches the whole
    process group, and the worker must stay alive long enough for the
    router's drain-then-shutdown path to run — otherwise pipes break
    mid-request and the router would have to treat its own shutdown as
    a partial failure.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    server = build_server(spec)
    state = WorkerState(int(spec.get("replica_epoch", 0)))
    try:
        while True:
            try:
                conn, _ = listener.accept()
            except OSError:
                break  # listener torn down under us: exit cleanly
            try:
                reason = serve(conn, server, shard_id, state)
            finally:
                try:
                    conn.close()
                except OSError:
                    pass
            if reason == "shutdown":
                break
    finally:
        try:
            server.shutdown()
        finally:
            listener.close()
