"""The front-end router: one address for an N-shard cluster.

:class:`ClusterRouter` owns the shard worker processes and presents
the same traffic surface as a single :class:`ViewServer` — ``query``,
``apply_update``, ``refresh_epoch``, metrics — while underneath:

* **routing** — a query whose range lies inside one shard's partition
  (range scheme, view keyed on the partition field) goes straight to
  that worker; everything else scatters to the owning shards and the
  answers are gathered and merged (tuples concatenated in view-key
  order, ``sum``/``count`` aggregates summed, ``min``/``max`` folded);
* **keys** — updates address tuples by primary key, but placement is
  by partition field, so the router keeps a key directory
  ``(relation, key) -> shard``.  An update that moves a tuple across
  the partition boundary becomes an explicit cross-shard *move*
  (insert on the new owner first, then delete on the old — a failure
  mid-move can duplicate a tuple transiently but never lose one), each
  half a normal maintained transaction on its shard; directory entries
  commit only after the owning shard acknowledges the write;
* **partial failure** — scatter legs run under per-shard deadlines; a
  missing or degraded leg turns the merged answer into a
  :class:`~repro.resilience.degradation.DegradedResult` whose mode,
  reason and staleness bound *compose* the per-shard labels (the
  worst rung wins, bounds add across failed legs) instead of hiding
  them;
* **cluster refresh epochs** — concurrent ``refresh_epoch`` callers
  coalesce onto one in-flight cluster-wide scatter, mirroring the
  per-shard SharedDeltaPlanner: each shard still computes its
  partition's net change exactly once per epoch, now cluster-wide;
* **merged-result caching** — an optional
  :class:`~repro.service.cache.QueryResultCache` holds merged
  cross-shard answers under relation epoch tokens bumped *after*
  updates commit; a merge is only cached if the token is unchanged
  across the whole scatter, so a concurrent update can waste a cache
  fill but never poison it.
"""

from __future__ import annotations

import threading
from typing import Any, Iterable, Mapping

from repro.resilience.degradation import DegradedResult
from repro.service.cache import QueryResultCache
from repro.service.metrics import MetricsRegistry
from .metrics import aggregate_metrics
from .replication import ReplicaSet, ReplicationConfig, ReplicationError
from .rpc import RpcError, ShardTimeout
from .shardmap import ShardMap
from .worker import decode_answer, encode_operation

__all__ = ["ClusterRouter", "ClusterError", "ClusterClosedError"]

#: Aggregate merge functions the scatter layer knows how to fold.
_SCALAR_MERGES = {
    "sum": sum,
    "count": sum,
    "min": min,
    "max": max,
}


class ClusterError(RuntimeError):
    """A cluster-level routing or configuration failure."""


class ClusterClosedError(ClusterError):
    """The router was shut down; no further requests are accepted."""


class _ViewMeta:
    """What the router must know about a view to route and merge it."""

    __slots__ = ("name", "kind", "relations", "view_key", "merge", "prunable")

    def __init__(
        self,
        name: str,
        kind: str,
        relations: tuple[str, ...],
        view_key: str | None,
        merge: Any,
        prunable: bool,
    ) -> None:
        self.name = name
        self.kind = kind
        self.relations = relations
        self.view_key = view_key
        self.merge = merge
        self.prunable = prunable


def _view_meta(doc: Mapping[str, Any], shard_map: ShardMap) -> _ViewMeta:
    kind = doc["type"]
    if kind == "aggregate":
        merge = _SCALAR_MERGES.get(doc["aggregate"])
        if merge is None:
            raise ClusterError(
                f"view {doc['name']!r}: aggregate {doc['aggregate']!r} does "
                f"not merge across shards (supported: "
                f"{', '.join(sorted(_SCALAR_MERGES))})"
            )
        return _ViewMeta(
            doc["name"], "scalar", (doc["relation"],), None, merge, False
        )
    if kind == "join":
        return _ViewMeta(
            doc["name"], "tuples", (doc["outer"], doc["inner"]),
            doc["view_key"], None, False,
        )
    prunable = (
        shard_map.scheme == "range"
        and doc["view_key"] == shard_map.partition_field
    )
    return _ViewMeta(
        doc["name"], "tuples", (doc["relation"],), doc["view_key"], None, prunable
    )


class ClusterRouter:
    """Scatter–gather front end over N forked shard workers."""

    def __init__(
        self,
        shard_map: ShardMap,
        shards: list[ReplicaSet],
        views: dict[str, _ViewMeta],
        directory: dict[tuple[str, Any], int],
        cache: QueryResultCache | None = None,
        rpc_timeout: float = 30.0,
    ) -> None:
        self.shard_map = shard_map
        #: One :class:`ReplicaSet` per shard id, in shard order.
        self.shards = shards
        #: Set by the harness when a ClusterSupervisor watches this
        #: router; close() stops it before reaping workers.
        self.supervisor: Any = None
        self.metrics = MetricsRegistry()
        self.cache = cache
        self.rpc_timeout = rpc_timeout
        self._views = views
        #: (relation, primary key) -> owning shard.  Guarded by
        #: ``_directory_lock``; cross-shard moves mutate it.
        self._directory = directory
        self._directory_lock = threading.Lock()
        #: Cluster refresh-epoch coalescing (the planner's leader /
        #: follower pattern lifted one level up).
        self._epoch_lock = threading.Lock()
        self._epoch_inflight: threading.Event | None = None
        self.epochs = 0
        self.coalesced_waits = 0
        #: In-flight request accounting for drain-before-close.
        self._flight_lock = threading.Lock()
        self._flight_cond = threading.Condition(self._flight_lock)
        self._inflight = 0
        self._closing = False
        self._closed = False
        #: Per-caller-thread flag: the last query on this thread was
        #: answered by a replica retry.  The gateway pops it to label
        #: the outcome ``ok_retry`` in its per-outcome histograms.
        self._retry_local = threading.local()

    def views(self) -> tuple[str, ...]:
        """Names of the views this router can answer, sorted."""
        return tuple(sorted(self._views))

    @property
    def clients(self) -> list[Any]:
        """The current primary client per shard (failover-aware)."""
        return [
            (rs.primary or rs.members[0]).client for rs in self.shards
        ]

    @property
    def processes(self) -> list[Any]:
        """Every worker process ever spawned, in shard-major order.

        With no replicas this is exactly the one-process-per-shard list
        the original launch produced; with replicas and respawns it is
        the full reap list — dead and replaced members included — so
        nothing the cluster forked can be orphaned.
        """
        return [
            member.process for rs in self.shards for member in rs.members
        ]

    def pop_retried(self) -> bool:
        """Consume this thread's replica-retry flag (set by query())."""
        flag = getattr(self._retry_local, "flag", False)
        self._retry_local.flag = False
        return bool(flag)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def launch(
        cls,
        spec: Mapping[str, Any],
        shard_map: ShardMap,
        cache: QueryResultCache | None = None,
        rpc_timeout: float = 30.0,
        replication: ReplicationConfig | None = None,
    ) -> "ClusterRouter":
        """Partition a cluster spec and launch one replica set per shard.

        ``spec`` is a worker spec (see :mod:`repro.cluster.worker`)
        whose relation ``records`` hold the *whole* data set; this
        splits every relation by the shard map's partition field,
        builds per-shard specs (with per-shard ``state_dir``
        subdirectories when durability is requested) and launches each
        shard's 1+N workers over TCP listeners on the loopback
        interface — a listening socket per worker is what lets a
        poisoned client reconnect to the *same living process* instead
        of writing the shard off.
        """
        replication = replication or ReplicationConfig()
        field = shard_map.partition_field
        views = {}
        for view_doc in spec.get("views", ()):
            meta = _view_meta(view_doc, shard_map)
            views[meta.name] = meta

        directory: dict[tuple[str, Any], int] = {}
        shard_records: dict[str, list[list[dict[str, Any]]]] = {}
        for rel in spec.get("relations", ()):
            if field not in rel["fields"]:
                raise ClusterError(
                    f"relation {rel['name']!r} has no partition field {field!r}"
                )
            buckets: list[list[dict[str, Any]]] = [
                [] for _ in range(shard_map.n_shards)
            ]
            for values in rel.get("records", ()):
                shard = shard_map.shard_of(values[field])
                buckets[shard].append(values)
                directory[(rel["name"], values[rel["key_field"]])] = shard
            shard_records[rel["name"]] = buckets

        router = cls(
            shard_map, [], views, directory,
            cache=cache, rpc_timeout=rpc_timeout,
        )
        try:
            for shard in range(shard_map.n_shards):
                shard_spec = dict(spec)
                shard_spec["shard_id"] = shard
                shard_spec["relations"] = [
                    {**rel, "records": shard_records[rel["name"]][shard]}
                    for rel in spec.get("relations", ())
                ]
                state_dir = None
                if spec.get("state_dir") is not None:
                    state_dir = f"{spec['state_dir']}/shard-{shard:03d}"
                router.shards.append(ReplicaSet.launch(
                    shard, shard_spec, replication,
                    rpc_timeout=rpc_timeout, state_dir=state_dir,
                    metrics=router.metrics,
                ))
        except BaseException:
            for replica_set in router.shards:
                replica_set.close(rpc_timeout=2.0)
            raise
        return router

    # ------------------------------------------------------------------
    # request accounting (drain-before-close)
    # ------------------------------------------------------------------
    def _enter(self) -> None:
        with self._flight_lock:
            if self._closing or self._closed:
                raise ClusterClosedError("router is shut down")
            self._inflight += 1

    def _exit(self) -> None:
        with self._flight_cond:
            self._inflight -= 1
            if self._inflight == 0:
                self._flight_cond.notify_all()

    # ------------------------------------------------------------------
    # scatter plumbing
    # ------------------------------------------------------------------
    def _scatter(
        self,
        shards: Iterable[int],
        op: str,
        timeout: float | None = None,
        **params: Any,
    ) -> tuple[dict[int, Any], dict[int, Exception]]:
        """Issue one op to many shards concurrently.

        Each leg runs on its own thread against its own connection
        under its own deadline; returns ``(results, failures)`` keyed
        by shard id.
        """
        shard_list = list(shards)
        results: dict[int, Any] = {}
        failures: dict[int, Exception] = {}
        if len(shard_list) == 1:
            shard = shard_list[0]
            try:
                results[shard] = self.clients[shard].call(
                    op, timeout=timeout, **params
                )
            except RpcError as exc:
                failures[shard] = exc
            return results, failures

        def leg(shard: int) -> None:
            try:
                results[shard] = self.clients[shard].call(
                    op, timeout=timeout, **params
                )
            except RpcError as exc:
                failures[shard] = exc

        threads = [
            threading.Thread(target=leg, args=(shard,), daemon=True)
            for shard in shard_list
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return results, failures

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query(
        self,
        name: str,
        lo: Any = None,
        hi: Any = None,
        client: str = "anon",
        timeout: float | None = None,
        allow_partial: bool = True,
    ) -> Any:
        """Answer a view query across the cluster.

        Single-shard ranges are routed directly; everything else
        scatters to the owning shards under per-shard deadlines.  With
        ``allow_partial`` (the default), missing or degraded legs
        produce a labelled :class:`DegradedResult` instead of an
        exception; only a query with *no* surviving leg raises.
        """
        meta = self._views.get(name)
        if meta is None:
            raise ClusterError(f"view {name!r} is not served by this cluster")
        self._enter()
        try:
            if meta.prunable and (lo is not None or hi is not None):
                shards = self.shard_map.shards_for_range(lo, hi)
            else:
                shards = self.shard_map.all_shards()
            self.metrics.counter("router_queries_total", view=name).inc()
            token = self._cache_token(meta)
            if token is not None:
                hit, answer = self.cache.get(name, lo, hi, token)
                if hit:
                    self.metrics.counter("router_cache_hits_total", view=name).inc()
                    return answer
            if len(shards) == 1:
                self.metrics.counter("single_shard_queries_total", view=name).inc()
            else:
                self.metrics.counter("scatter_queries_total", view=name).inc()
            results, failures, retried = self._scatter_query(
                shards, name, lo, hi, client, timeout
            )
            if retried:
                self._retry_local.flag = True
            answer = self._merge(meta, shards, results, failures, allow_partial)
            if (
                token is not None
                and not failures
                and not isinstance(answer, DegradedResult)
                and self._cache_token(meta) == token
            ):
                # The epoch vector is unchanged across the whole
                # scatter: no update committed meanwhile, so the merge
                # is fresh and safe to serve from cache.
                self.cache.put(name, lo, hi, token, answer)
            return answer
        finally:
            self._exit()

    def _scatter_query(
        self,
        shards: Iterable[int],
        name: str,
        lo: Any,
        hi: Any,
        client: str,
        timeout: float | None,
    ) -> tuple[dict[int, Any], dict[int, Exception], bool]:
        """Scatter one query, retrying each leg on replicas.

        Each leg goes through its shard's :meth:`ReplicaSet.query`:
        primary first, then the most-caught-up live replicas within
        the remaining deadline.  A leg served by a *lagging* replica is
        labelled ``stale_read`` with the replica's lag in operations as
        the staleness bound — a caught-up replica's answer is simply
        correct and carries no label.  Degraded labels only appear when
        every member of a shard is unreachable, the honest last resort.
        """
        shard_list = list(shards)
        results: dict[int, Any] = {}
        failures: dict[int, Exception] = {}
        retried_legs: dict[int, bool] = {}

        def leg(shard: int) -> None:
            try:
                doc, info = self.shards[shard].query(
                    timeout=timeout, view=name, lo=lo, hi=hi, client=client,
                )
            except (RpcError, ReplicationError) as exc:
                failures[shard] = exc
                return
            if info.get("retried"):
                retried_legs[shard] = True
                self.metrics.counter(
                    "replica_served_total", shard=str(shard)
                ).inc()
                lag = int(info.get("lag", 0))
                if lag > 0 and doc.get("degraded") is None:
                    doc = dict(doc)
                    doc["degraded"] = {
                        "view": name,
                        "mode": "stale_read",
                        "reason": (
                            f"served by shard {shard} replica "
                            f"m{info.get('member')} lagging {lag} ops"
                        ),
                        "staleness_bound": lag,
                        "strategy": "replica",
                    }
            results[shard] = doc

        if len(shard_list) == 1:
            leg(shard_list[0])
        else:
            threads = [
                threading.Thread(target=leg, args=(shard,), daemon=True)
                for shard in shard_list
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        return results, failures, any(retried_legs.values())

    def _cache_token(self, meta: _ViewMeta) -> Any:
        if self.cache is None:
            return None
        return self.cache.epoch_token(meta.relations)

    def _merge(
        self,
        meta: _ViewMeta,
        shards: Iterable[int],
        results: Mapping[int, Any],
        failures: Mapping[int, Exception],
        allow_partial: bool,
    ) -> Any:
        if failures:
            for shard in failures:
                self.metrics.counter(
                    "scatter_leg_failures_total", view=meta.name,
                    shard=str(shard),
                ).inc()
            if not allow_partial or not results:
                shard, exc = next(iter(failures.items()))
                raise exc
        payloads: dict[int, Any] = {}
        degraded_legs: dict[int, dict[str, Any]] = {}
        for shard, doc in results.items():
            payload, degraded = decode_answer(doc)
            payloads[shard] = payload
            if degraded is not None:
                degraded_legs[shard] = degraded
        if meta.kind == "scalar":
            merged: Any = meta.merge(payloads[s] for s in sorted(payloads))
        else:
            tuples = [vt for s in sorted(payloads) for vt in payloads[s]]
            tuples.sort(key=lambda vt: (vt[meta.view_key], vt.identity()))
            merged = tuples
        if not failures and not degraded_legs:
            return merged
        return self._compose_degraded(meta, merged, degraded_legs, failures)

    def _compose_degraded(
        self,
        meta: _ViewMeta,
        merged: Any,
        degraded_legs: Mapping[int, Mapping[str, Any]],
        failures: Mapping[int, Exception],
    ) -> DegradedResult:
        """Fold per-shard degraded labels into one honest cluster label.

        Mode severity: a lost leg (``partial_scatter``) outranks a
        stale leg, which outranks a fresh QM fallback.  The staleness
        bound is the max over degraded legs plus, for each lost leg,
        every update ever routed to it — the merge is missing that
        partition outright, so nothing tighter is defensible.
        """
        reasons = []
        bound = max(
            (int(leg.get("staleness_bound", 0)) for leg in degraded_legs.values()),
            default=0,
        )
        mode = "qm_fallback"
        for shard in sorted(degraded_legs):
            leg = degraded_legs[shard]
            reasons.append(f"shard {shard}: {leg.get('reason', 'degraded')}")
            if leg.get("mode") == "stale_read":
                mode = "stale_read"
        for shard in sorted(failures):
            exc = failures[shard]
            kind = "timeout" if isinstance(exc, ShardTimeout) else "unavailable"
            reasons.append(f"shard {shard}: {kind}")
            mode = "partial_scatter"
            bound += int(
                self.metrics.counter(
                    "shard_updates_total", shard=str(shard)
                ).value
            )
        self.metrics.counter("degraded_merges_total", view=meta.name).inc()
        strategies = {
            str(leg.get("strategy")) for leg in degraded_legs.values()
        } or {"unavailable"}
        return DegradedResult(
            answer=merged,
            view=meta.name,
            mode=mode,
            reason="; ".join(reasons),
            staleness_bound=bound,
            strategy=sorted(strategies)[0],
        )

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def apply_update(
        self, txn: Any, client: str = "anon", timeout: float | None = None,
    ) -> None:
        """Route one transaction's operations to their owning shards.

        Operations that stay within a shard are batched per shard and
        applied as one transaction there (concurrently across shards).
        An update that changes the partition field across a boundary is
        executed as a fetch + insert + delete move; pending batches for
        the involved shards are flushed first so per-key operation
        order is preserved.

        ``timeout`` is the caller's remaining deadline budget (the
        gateway passes what is left of ``deadline_ms``); it bounds
        every shard RPC the transaction fans out into.  ``None`` falls
        back to each shard client's construction-time default.
        """
        field = self.shard_map.partition_field
        relation = txn.relation
        self._enter()
        try:
            pending: dict[int, list[dict[str, Any]]] = {}
            # Directory mutations are *staged*, not applied: the
            # overlay answers ownership questions for later operations
            # in this transaction, and ``staged`` commits to the real
            # directory per shard only once that shard has acknowledged
            # its batch (in _flush).  A failed flush therefore cannot
            # leave phantom entries that misroute later updates.
            staged: dict[int, list[tuple[Any, int | None]]] = {}
            overlay: dict[tuple[str, Any], int | None] = {}
            for op in txn.operations:
                doc = encode_operation(op)
                if doc["kind"] == "insert":
                    shard = self.shard_map.shard_of(doc["values"][field])
                    key = op.record.key
                    overlay[(relation, key)] = shard
                    staged.setdefault(shard, []).append((key, shard))
                    pending.setdefault(shard, []).append(doc)
                elif doc["kind"] == "delete":
                    shard = self._owner(relation, doc["key"], overlay)
                    overlay[(relation, doc["key"])] = None
                    staged.setdefault(shard, []).append((doc["key"], None))
                    pending.setdefault(shard, []).append(doc)
                else:
                    shard = self._owner(relation, doc["key"], overlay)
                    changes = doc["changes"]
                    if field in changes:
                        target = self.shard_map.shard_of(changes[field])
                        if target != shard:
                            self._flush(relation, pending, staged, client,
                                        only={shard, target},
                                        timeout=timeout)
                            self._move(relation, doc["key"], changes,
                                       shard, target, client,
                                       timeout=timeout)
                            overlay[(relation, doc["key"])] = target
                            continue
                    pending.setdefault(shard, []).append(doc)
            self._flush(relation, pending, staged, client, timeout=timeout)
            if self.cache is not None:
                # Bump *after* every shard committed: a reader that
                # sampled the old token mid-update re-validates before
                # caching, so the old answer can be served (that read
                # serializes before the update) but never re-cached
                # under the new epoch.
                self.cache.bump(relation)
            self.metrics.counter("router_updates_total", client=client).inc()
        finally:
            self._exit()

    def _owner(
        self,
        relation: str,
        key: Any,
        overlay: Mapping[tuple[str, Any], int | None] | None = None,
    ) -> int:
        shard: int | None
        if overlay is not None and (relation, key) in overlay:
            shard = overlay[(relation, key)]
        else:
            with self._directory_lock:
                shard = self._directory.get((relation, key))
        if shard is None:
            raise ClusterError(
                f"no shard owns {relation!r} key {key!r} "
                f"(unknown key, or insert never routed through this router)"
            )
        return shard

    def _flush(
        self,
        relation: str,
        pending: dict[int, list[dict[str, Any]]],
        staged: dict[int, list[tuple[Any, int | None]]],
        client: str,
        only: set[int] | None = None,
        timeout: float | None = None,
    ) -> None:
        shards = [
            shard for shard in pending
            if pending[shard] and (only is None or shard in only)
        ]
        if not shards:
            return
        results, failures = self._scatter_updates(
            shards, relation, pending, client, timeout
        )
        for shard in shards:
            if shard in results:
                self.metrics.counter(
                    "shard_updates_total", shard=str(shard)
                ).inc(len(pending[shard]))
                # The shard acknowledged its batch: its staged
                # directory entries are now true and safe to commit
                # (in operation order — an insert/delete pair on one
                # key nets out correctly).
                entries = staged.pop(shard, ())
                if entries:
                    with self._directory_lock:
                        for key, owner in entries:
                            if owner is None:
                                self._directory.pop((relation, key), None)
                            else:
                                self._directory[(relation, key)] = owner
            else:
                staged.pop(shard, None)
            pending[shard] = []
        if failures:
            shard, exc = next(iter(failures.items()))
            raise exc

    def _scatter_updates(
        self,
        shards: list[int],
        relation: str,
        pending: Mapping[int, list[dict[str, Any]]],
        client: str,
        timeout: float | None = None,
    ) -> tuple[dict[int, Any], dict[int, Exception]]:
        results: dict[int, Any] = {}
        failures: dict[int, Exception] = {}

        def leg(shard: int) -> None:
            try:
                # Through the replica set: the batch gets its epoch,
                # lands on the (possibly just-promoted) primary, and is
                # shipped to replicas before the ack comes back.
                results[shard] = self.shards[shard].apply_update(
                    relation, pending[shard], client=client, timeout=timeout,
                )
            except (RpcError, ReplicationError) as exc:
                failures[shard] = exc

        if len(shards) == 1:
            leg(shards[0])
            return results, failures
        threads = [
            threading.Thread(target=leg, args=(shard,), daemon=True)
            for shard in shards
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return results, failures

    def _move(
        self,
        relation: str,
        key: Any,
        changes: Mapping[str, Any],
        source: int,
        target: int,
        client: str,
        timeout: float | None = None,
    ) -> None:
        """Move one tuple across a partition boundary.

        Fetch the current values from the owner, insert the changed
        tuple on the new owner, then delete the original — each half a
        normal maintained transaction on its shard, so both shards'
        views see the move as the insert/delete pair it logically is.
        Insert-first ordering is deliberate: if the target insert fails
        the tuple is still intact on the source and the directory is
        untouched; a failure *after* the insert leaves a transient
        duplicate (recoverable — the directory already points at the
        authoritative new copy) rather than a lost tuple.
        """
        fetched = self.shards[source].call_primary(
            "fetch", relation=relation, key=key, timeout=timeout,
        )
        values = fetched.get("values")
        if values is None:
            raise ClusterError(
                f"move of {relation!r} key {key!r}: tuple missing on shard "
                f"{source} (directory out of sync)"
            )
        values = dict(values)
        values.update(changes)
        # Both halves go through the replica sets so the move is
        # shipped to replicas like any other committed batch.
        self.shards[target].apply_update(
            relation, [{"kind": "insert", "values": values}], client=client,
            timeout=timeout,
        )
        with self._directory_lock:
            self._directory[(relation, key)] = target
        self.shards[source].apply_update(
            relation, [{"kind": "delete", "key": key}], client=client,
            timeout=timeout,
        )
        self.metrics.counter("cross_shard_moves_total", relation=relation).inc()
        self.metrics.counter("shard_updates_total", shard=str(source)).inc()
        self.metrics.counter("shard_updates_total", shard=str(target)).inc()

    # ------------------------------------------------------------------
    # cluster refresh epochs
    # ------------------------------------------------------------------
    def refresh_epoch(self, timeout: float | None = None) -> bool:
        """One cluster-wide deferred-refresh epoch, coalesced.

        The leader scatters ``refresh`` to every shard's replica set
        (each shard's SharedDeltaPlanner folds its partition's net
        change exactly once; a dead primary is failed over first);
        concurrent callers wait on the in-flight epoch instead of
        stacking duplicate scatters, then return ``False``.

        Two failure rules keep the epoch honest under crashes:

        * a shard whose *every* member is gone does not veto the
          epoch — the survivors converge and the lost legs are counted
          in ``refresh_leg_failures_total``; only a scatter with *no*
          surviving leg raises;
        * a follower that wakes to find the epoch count unchanged knows
          its leader died mid-epoch and loops back to take over the
          leadership instead of reporting an epoch that never happened.
        """
        self._enter()
        try:
            while True:
                with self._epoch_lock:
                    epochs_seen = self.epochs
                    event = self._epoch_inflight
                    if event is None:
                        event = threading.Event()
                        self._epoch_inflight = event
                        leading = True
                    else:
                        leading = False
                if leading:
                    try:
                        results, failures = self._scatter_refresh(timeout)
                        if not results:
                            shard, exc = next(iter(failures.items()))
                            raise exc
                        for shard in failures:
                            self.metrics.counter(
                                "refresh_leg_failures_total", shard=str(shard)
                            ).inc()
                        with self._epoch_lock:
                            self.epochs += 1
                        self.metrics.counter("cluster_refresh_epochs_total").inc()
                    finally:
                        with self._epoch_lock:
                            self._epoch_inflight = None
                        event.set()
                    return True
                with self._epoch_lock:
                    self.coalesced_waits += 1
                self.metrics.counter("cluster_refresh_coalesced_total").inc()
                event.wait()
                with self._epoch_lock:
                    advanced = self.epochs > epochs_seen
                if advanced:
                    return False
                # The leader failed without completing the epoch; take
                # over rather than pretending a refresh happened.

        finally:
            self._exit()

    def _scatter_refresh(
        self, timeout: float | None
    ) -> tuple[dict[int, Any], dict[int, Exception]]:
        results: dict[int, Any] = {}
        failures: dict[int, Exception] = {}

        def leg(shard: int) -> None:
            try:
                results[shard] = self.shards[shard].refresh(timeout=timeout)
            except (RpcError, ReplicationError) as exc:
                failures[shard] = exc

        threads = [
            threading.Thread(target=leg, args=(shard,), daemon=True)
            for shard in self.shard_map.all_shards()
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return results, failures

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Cluster + per-shard planner counters (epoch accounting)."""
        self._enter()
        try:
            results, failures = self._scatter(self.shard_map.all_shards(), "stats")
            return {
                "epochs": self.epochs,
                "coalesced_waits": self.coalesced_waits,
                "shards": {
                    shard: results.get(shard, {"error": str(failures.get(shard))})
                    for shard in self.shard_map.all_shards()
                },
            }
        finally:
            self._exit()

    def cluster_metrics(self) -> dict[str, Any]:
        """One v1 export: every shard registry merged, plus the router's.

        Counters sum, gauges report their worst shard, histograms merge
        bucket-by-bucket — see :func:`repro.cluster.metrics
        .aggregate_metrics`.
        """
        self._enter()
        try:
            results, failures = self._scatter(self.shard_map.all_shards(), "metrics")
            if failures:
                shard, exc = next(iter(failures.items()))
                raise exc
            exports = [results[shard] for shard in sorted(results)]
            exports.append(self.metrics.to_dict())
            return aggregate_metrics(exports)
        finally:
            self._exit()

    def shard_metrics(self) -> dict[int, dict[str, Any]]:
        """The raw per-shard exports, keyed by shard id."""
        self._enter()
        try:
            results, failures = self._scatter(self.shard_map.all_shards(), "metrics")
            if failures:
                shard, exc = next(iter(failures.items()))
                raise exc
            return dict(sorted(results.items()))
        finally:
            self._exit()

    # ------------------------------------------------------------------
    # shutdown
    # ------------------------------------------------------------------
    def close(self, drain_timeout: float = 30.0) -> None:
        """Drain, stop every worker, reap the processes.  Idempotent.

        New requests are refused immediately; in-flight requests get
        ``drain_timeout`` seconds to finish before the shutdown frames
        go out, so a worker is never killed mid-request.  Workers that
        ignore the protocol (wedged, already broken pipe) are
        terminated — nothing is left orphaned for the shell to reap.
        """
        with self._flight_cond:
            if self._closed:
                return
            self._closing = True
            self._flight_cond.wait_for(
                lambda: self._inflight == 0, timeout=drain_timeout
            )
            self._closed = True
        # The supervisor stops first so no respawn can race the reap:
        # after stop() returns, the member lists are final and every
        # process ever forked — original, promoted, respawned — is in
        # them.
        if self.supervisor is not None:
            self.supervisor.stop()
        for replica_set in self.shards:
            replica_set.close(rpc_timeout=min(self.rpc_timeout, 10.0))

    def __enter__(self) -> "ClusterRouter":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
