"""Demo clusters and paced traffic for the CLI, tests and benchmarks.

The canonical demo data set is one relation ``r(id, a, v)`` whose
partition field ``a`` is spread uniformly over ``[0, DOMAIN)``, with a
select-project view keyed on ``a`` (single-shard routable under a
range shard map) and a ``sum(v)`` aggregate (always scatter–gather).

The query workload is **chunk-aligned**: the domain is divided into
``CHUNKS`` equal chunks, and each query asks for exactly one chunk.
Chunk boundaries coincide with shard boundaries for every power-of-two
shard count up to ``CHUNKS``, so a chunk query routes to exactly one
shard and the per-query result width is *independent of the shard
count* — aggregate qps scaling then measures process parallelism, not
shrinking answers.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Any

from repro.engine.transaction import Transaction, Update
from repro.service.cache import QueryResultCache
from .replication import ReplicationConfig
from .router import ClusterRouter
from .shardmap import ShardMap
from .supervisor import ClusterSupervisor

__all__ = [
    "DOMAIN",
    "CHUNKS",
    "demo_spec",
    "demo_shard_map",
    "launch_demo",
    "live_worker_pids",
    "chunk_bounds",
    "partitioned_cluster_stream",
    "run_cluster_traffic",
]

#: Partition-field domain of the demo relation.
DOMAIN = 1600
#: Chunk-aligned query granularity; shard counts 1/2/4/8/16 all align.
CHUNKS = 16


def demo_spec(
    n_records: int = 480,
    strategy: str = "deferred",
    pacing: float = 0.0,
    cache: bool = False,
    seed: int = 17,
    state_dir: str | None = None,
    refresh_policy: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """A cluster worker spec holding the full demo data set."""
    rng = random.Random(seed)
    records = [
        {"id": i, "a": rng.randrange(DOMAIN), "v": rng.randrange(100)}
        for i in range(n_records)
    ]
    return {
        "buffer_pages": 256,
        "cache": cache,
        "pacing": pacing,
        "lock_timeout": 30.0,
        "state_dir": state_dir,
        "relations": [
            {
                "name": "r",
                "fields": ["id", "a", "v"],
                "key_field": "id",
                "tuple_bytes": 100,
                "clustered_on": "a",
                "kind": "hypothetical",
                "ad_buckets": 2,
                "records": records,
            }
        ],
        "views": [
            {
                "type": "select_project",
                "name": "by_a",
                "relation": "r",
                "predicate": {"field": "a", "lo": 0, "hi": DOMAIN - 1,
                              "selectivity": 1.0},
                "projection": ["id", "a", "v"],
                "view_key": "a",
                "strategy": strategy,
                "policy": refresh_policy,
            },
            {
                "type": "aggregate",
                "name": "total",
                "relation": "r",
                "predicate": {"field": "a", "lo": 0, "hi": DOMAIN - 1,
                              "selectivity": 1.0},
                "aggregate": "sum",
                "field": "v",
                "strategy": strategy,
                "policy": refresh_policy,
            },
        ],
    }


def demo_shard_map(n_shards: int, scheme: str = "range") -> ShardMap:
    if scheme == "hash":
        return ShardMap.hashed("a", n_shards)
    return ShardMap.ranged("a", 0, DOMAIN, n_shards)


def launch_demo(
    n_shards: int,
    strategy: str = "deferred",
    scheme: str = "range",
    pacing: float = 0.0,
    cache: bool = False,
    router_cache: bool = False,
    n_records: int = 480,
    seed: int = 17,
    state_dir: str | None = None,
    rpc_timeout: float = 30.0,
    replicas: int = 0,
    supervise: bool = False,
    replication: ReplicationConfig | None = None,
) -> ClusterRouter:
    """Fork a demo cluster and return its router.

    ``replicas`` workers per shard beyond the primary; ``supervise``
    attaches a started :class:`ClusterSupervisor` (heartbeats, failover
    promotion, respawn) that ``router.close()`` stops automatically.
    """
    spec = demo_spec(
        n_records=n_records, strategy=strategy, pacing=pacing,
        cache=cache, seed=seed, state_dir=state_dir,
    )
    if replication is None:
        replication = ReplicationConfig(replicas=replicas)
    router = ClusterRouter.launch(
        spec,
        demo_shard_map(n_shards, scheme),
        cache=QueryResultCache() if router_cache else None,
        rpc_timeout=rpc_timeout,
        replication=replication,
    )
    if supervise:
        ClusterSupervisor(router).start()
    return router


def live_worker_pids(router: ClusterRouter) -> list[int]:
    """Pids of every worker process currently alive under the router.

    Includes supervisor-respawned members, so a test can assert that
    ``close()`` leaves no orphans no matter how much churn the chaos
    harness caused: after close, none of these pids may be running.
    """
    return [
        member.process.pid
        for replica_set in router.shards
        for member in replica_set.members
        if member.process.is_alive()
    ]


def chunk_bounds(chunk: int) -> tuple[int, int]:
    """Inclusive ``[lo, hi]`` bounds of one chunk-aligned query."""
    width = DOMAIN // CHUNKS
    lo = (chunk % CHUNKS) * width
    return lo, lo + width - 1


def partitioned_cluster_stream(
    thread_index: int, n_threads: int, length: int, n_records: int,
    query_every: int = 3,
) -> list[tuple[str, Any]]:
    """A deterministic per-thread op stream over disjoint key sets.

    Thread ``i`` touches only keys ``i, i + n, i + 2n, ...``, so the
    streams commute across threads: every strategy twin converges to
    the same final state whatever the interleaving — the property the
    cross-shard equivalence check rests on.  Updates never touch the
    partition field, keeping placement stable under load (cross-shard
    moves are exercised separately).
    """
    rng = random.Random(1000 + thread_index)
    ops: list[tuple[str, Any]] = []
    for step in range(length):
        if step % query_every == query_every - 1:
            ops.append(("query", rng.randrange(CHUNKS)))
        else:
            key = thread_index + n_threads * rng.randrange(
                max(1, n_records // n_threads)
            )
            ops.append(("update", (key, rng.randrange(1000))))
    return ops


def run_cluster_traffic(
    router: ClusterRouter,
    n_threads: int,
    ops_per_thread: int,
    n_records: int,
    join_timeout: float = 300.0,
) -> dict[str, Any]:
    """Drive paced concurrent traffic; returns wall time and op counts.

    Mirrors the single-process benchmark harness: each thread runs its
    own commuting partitioned stream of chunk queries and point
    updates, and the wall clock covers the whole convoy.
    """
    errors: list[Exception] = []
    counts = {"queries": 0, "updates": 0}
    counts_lock = threading.Lock()

    def worker(index: int) -> None:
        queries = updates = 0
        try:
            stream = partitioned_cluster_stream(
                index, n_threads, ops_per_thread, n_records
            )
            for op, payload in stream:
                if op == "query":
                    lo, hi = chunk_bounds(payload)
                    router.query("by_a", lo, hi, client=f"t{index}")
                    queries += 1
                else:
                    key, value = payload
                    router.apply_update(
                        Transaction.of("r", [Update(key, {"v": value})]),
                        client=f"t{index}",
                    )
                    updates += 1
        except Exception as exc:  # surfaced after the join
            errors.append(exc)
        with counts_lock:
            counts["queries"] += queries
            counts["updates"] += updates

    threads = [
        threading.Thread(target=worker, args=(i,), daemon=True)
        for i in range(n_threads)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(join_timeout)
        if thread.is_alive():
            raise RuntimeError("cluster traffic thread wedged: likely deadlock")
    wall = time.perf_counter() - start
    if errors:
        raise errors[0]
    total = counts["queries"] + counts["updates"]
    return {
        "wall_seconds": wall,
        "queries": counts["queries"],
        "updates": counts["updates"],
        "ops": total,
        "qps": total / wall if wall > 0 else 0.0,
    }
