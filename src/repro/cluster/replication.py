"""Shard replication: write fan-out, delta shipping, and failover.

Each shard is served by a :class:`ReplicaSet` of 1+N worker processes:
one *primary* that takes every write, and N *replicas* that receive
committed update batches as epoch-tagged deltas (the same net-change
records the WAL codec frames) immediately after the primary
acknowledges them.  The set tracks each replica's applied epoch, so at
any moment it knows exactly how far behind a replica is — in epochs
and, via the retained delta log, in *operations*, which is the honest
staleness bound a replica-served read carries.

Failover is a pure function of observable state:
:func:`select_promotion_candidate` picks the most-caught-up live
replica (ties broken toward the oldest member), the set replays any
retained deltas the candidate is missing, and flips roles.  Because
every client-acknowledged write was appended to the delta log *before*
the ack path returned, promotion plus catch-up preserves acked writes
even when the primary dies mid-stream; whatever unacked partial state
died with the old primary was never promised to anyone.

Replacement workers bootstrap from a surviving member's ``snapshot``
(logical records plus the epoch they are consistent with) and then
replay shipped deltas past that epoch — a lagging or new replica
resyncs by replaying net changes, not by restarting the cluster.
"""

from __future__ import annotations

import multiprocessing
import socket
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Mapping

from .rpc import (
    RemoteOpError,
    RpcError,
    ShardClient,
    ShardTimeout,
    ShardUnavailable,
)
from .worker import worker_main

__all__ = [
    "ReplicationConfig",
    "ReplicationError",
    "Member",
    "ReplicaSet",
    "select_promotion_candidate",
]


class ReplicationError(RuntimeError):
    """A replication invariant failed (catch-up gap, no candidate)."""


@dataclass(frozen=True)
class ReplicationConfig:
    """Tunables for one shard's replica set and its supervision.

    ``suspect_after`` / ``dead_after`` are *consecutive* heartbeat
    failures: one missed ping marks nothing, repeated misses walk the
    member healthy → suspect → dead.  ``delta_log_cap`` bounds the
    retained catch-up window in update batches; a replica that falls
    behind the window can no longer catch up by replay and must
    re-bootstrap from a snapshot.
    """

    replicas: int = 0
    heartbeat_interval_s: float = 0.15
    heartbeat_timeout_s: float = 0.5
    suspect_after: int = 2
    dead_after: int = 3
    respawn: bool = True
    delta_log_cap: int = 4096


class Member:
    """One worker process in a replica set, with its health record."""

    __slots__ = (
        "member_id", "role", "client", "process", "address",
        "applied_epoch", "health", "failures",
    )

    def __init__(
        self,
        member_id: int,
        role: str,
        client: ShardClient,
        process: Any,
        address: tuple[str, int],
    ) -> None:
        self.member_id = member_id
        self.role = role  # "primary" | "replica"
        self.client = client
        self.process = process
        self.address = address
        self.applied_epoch = 0
        self.health = "healthy"  # "healthy" | "suspect" | "dead"
        self.failures = 0

    @property
    def is_live(self) -> bool:
        return self.health != "dead" and self.process.is_alive()

    def note_ok(self) -> None:
        self.failures = 0
        if self.health != "dead":
            self.health = "healthy"

    def note_failure(self, suspect_after: int, dead_after: int) -> str:
        self.failures += 1
        if self.failures >= dead_after:
            self.health = "dead"
        elif self.failures >= suspect_after:
            self.health = "suspect"
        return self.health

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Member(m{self.member_id} {self.role} {self.health} "
            f"epoch={self.applied_epoch} pid={self.process.pid})"
        )


def select_promotion_candidate(members: list[Member]) -> Member | None:
    """The most-caught-up live replica, or ``None`` if there is none.

    Ties on applied epoch break toward the *oldest* member id: member
    age is a proxy for how long its health record has been observed, so
    the tiebreak is deterministic and never prefers a just-respawned
    worker over an equally caught-up veteran.
    """
    live = [
        m for m in members
        if m.role == "replica" and m.health != "dead" and m.process.is_alive()
    ]
    if not live:
        return None
    return max(live, key=lambda m: (m.applied_epoch, -m.member_id))


class ReplicaSet:
    """1 primary + N replicas behind one shard id.

    Writes are serialized per shard under ``_lock`` so every committed
    batch gets a unique, contiguous epoch; the epoch tag also makes a
    retried write idempotent on a worker that already applied it.
    Reads never take the write lock — they go primary-first and fall
    back to the most-caught-up replica within the caller's deadline.
    """

    def __init__(
        self,
        shard_id: int,
        spec: Mapping[str, Any],
        config: ReplicationConfig,
        rpc_timeout: float = 30.0,
        state_dir: str | None = None,
        metrics: Any = None,
    ) -> None:
        self.shard_id = shard_id
        self.spec = {k: v for k, v in dict(spec).items() if k != "state_dir"}
        self.config = config
        self.rpc_timeout = rpc_timeout
        self.state_dir = state_dir
        self.metrics = metrics
        self.members: list[Member] = []
        self.write_epoch = 0
        #: Retained committed batches ``(epoch, relation, ops, n_ops)``
        #: — the catch-up window for lagging replicas and promotions.
        self.delta_log: deque = deque(maxlen=config.delta_log_cap)
        self.shipped_ops_total = 0
        self.promotions_total = 0
        self.respawns_total = 0
        self.repairs_total = 0
        #: A batch whose write timed out *after* the request was sent:
        #: the primary may or may not have committed it.  Resolved (by
        #: asking the primary for its epoch) before the next write is
        #: assigned an epoch, so an epoch number is never reused for
        #: different operations — the dedup on the worker side depends
        #: on that.
        self._in_doubt: tuple[int, str, list[dict[str, Any]], int] | None = None
        self._lock = threading.RLock()
        self._next_member_id = 0
        self._context = multiprocessing.get_context("fork")

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def launch(
        cls,
        shard_id: int,
        spec: Mapping[str, Any],
        config: ReplicationConfig,
        rpc_timeout: float = 30.0,
        state_dir: str | None = None,
        metrics: Any = None,
    ) -> "ReplicaSet":
        rs = cls(
            shard_id, spec, config,
            rpc_timeout=rpc_timeout, state_dir=state_dir, metrics=metrics,
        )
        try:
            rs._spawn("primary")
            for _ in range(config.replicas):
                rs._spawn("replica")
        except BaseException:
            rs.close(rpc_timeout=2.0)
            raise
        return rs

    def _member_state_dir(self, member_id: int) -> str | None:
        if self.state_dir is None:
            return None
        # Member 0 keeps the bare per-shard directory so single-member
        # clusters lay out durability state exactly as before.
        if member_id == 0:
            return self.state_dir
        return f"{self.state_dir}.m{member_id}"

    def _spawn(
        self,
        role: str,
        records: Mapping[str, list[dict[str, Any]]] | None = None,
        replica_epoch: int = 0,
    ) -> Member:
        member_id = self._next_member_id
        self._next_member_id += 1
        spec = dict(self.spec)
        if records is not None:
            spec["relations"] = [
                {**rel, "records": list(records.get(rel["name"], ()))}
                for rel in self.spec.get("relations", ())
            ]
        spec["replica_epoch"] = int(replica_epoch)
        member_dir = self._member_state_dir(member_id)
        if member_dir is not None:
            spec["state_dir"] = member_dir
        # The listener is created before the fork so the child inherits
        # it; the kernel queues the router's connect even if the child
        # has not reached accept() yet.  The parent's copy is closed —
        # the child's inherited descriptor keeps the socket listening.
        listener = socket.create_server(("127.0.0.1", 0))
        address = listener.getsockname()
        process = self._context.Process(
            target=worker_main,
            args=(listener, spec, self.shard_id),
            name=f"repro-shard-{self.shard_id}-m{member_id}",
            daemon=True,
        )
        process.start()
        listener.close()
        try:
            sock = socket.create_connection(address, timeout=5.0)
        except OSError as exc:
            process.terminate()
            raise ShardUnavailable(
                self.shard_id, f"worker m{member_id} never came up: {exc}"
            ) from exc
        sock.settimeout(self.rpc_timeout)
        client = ShardClient(
            sock, self.shard_id, timeout=self.rpc_timeout,
            address=(address[0], address[1]),
        )
        member = Member(member_id, role, client, process, address)
        member.applied_epoch = int(replica_epoch)
        self.members.append(member)
        return member

    # ------------------------------------------------------------------
    # membership views
    # ------------------------------------------------------------------
    # The membership views below are read by router query threads and
    # the supervisor's heartbeat thread while _spawn (under self._lock)
    # appends replacements; list() snapshots the membership atomically
    # so an iteration never observes a half-grown list.
    @property
    def primary(self) -> Member | None:
        for member in list(self.members):
            if member.role == "primary":
                return member
        return None

    def live_members(self) -> list[Member]:
        return [m for m in list(self.members) if m.is_live]

    def live_replicas(self) -> list[Member]:
        return [
            m for m in list(self.members)
            if m.role == "replica" and m.is_live
        ]

    @property
    def processes(self) -> list[Any]:
        return [m.process for m in list(self.members)]

    def _count(self, name: str, **labels: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(
                name, shard=str(self.shard_id), **labels
            ).inc()

    def note_failure(self, member: Member) -> str:
        health = member.note_failure(
            self.config.suspect_after, self.config.dead_after
        )
        self._count("member_failures_total", member=str(member.member_id))
        return health

    # ------------------------------------------------------------------
    # writes: primary fan-in, delta fan-out
    # ------------------------------------------------------------------
    def apply_update(
        self,
        relation: str,
        ops: list[dict[str, Any]],
        client: str = "router",
        timeout: float | None = None,
    ) -> Any:
        """Commit one batch on the primary, then ship it to replicas.

        The batch is acknowledged to the caller only after the primary
        applied it *and* it was appended to the retained delta log, so
        a later promotion can always replay every acked write.  A
        replica that misses its shipment is merely marked lagging — it
        catches up later by replay; replica failures never fail an
        acked write.

        :class:`ShardTimeout` is re-raised without failover: a timed
        out write is *ambiguous* (the primary may have committed it),
        and retrying elsewhere could double-apply.  The epoch tag makes
        a retry on the *same* primary idempotent, so only the
        connection-level ``ShardUnavailable`` path retries.
        """
        with self._lock:
            self._resolve_in_doubt()
            epoch = self.write_epoch + 1
            try:
                result = self._write_primary(relation, ops, client, epoch, timeout)
            except ShardTimeout:
                self._in_doubt = (epoch, relation, list(ops), len(ops))
                raise
            self.write_epoch = epoch
            if self.config.replicas or len(self.members) > 1:
                self.delta_log.append((epoch, relation, list(ops), len(ops)))
                self.shipped_ops_total += len(ops)
                self._ship(relation, ops, epoch)
            return result

    def _resolve_in_doubt(self) -> None:
        """Settle whether a timed-out batch committed before reusing its epoch.

        The primary's reported epoch is the ground truth: at or past the
        in-doubt epoch means the batch committed (so it is logged and
        shipped like any acked write); behind it means the batch never
        applied and its epoch number is free again.  If the old primary
        died, promotion already installed a primary whose epoch predates
        the in-doubt batch — the ambiguous write is gone with the crash,
        which is exactly what :class:`ShardTimeout` promised the caller.
        """
        if self._in_doubt is None:
            return
        epoch, relation, ops, n_ops = self._in_doubt
        primary = self._usable_primary()
        pong = primary.client.call("ping", timeout=self.rpc_timeout)
        if int(pong.get("epoch", 0)) >= epoch:
            self.write_epoch = epoch
            if self.config.replicas or len(self.members) > 1:
                self.delta_log.append((epoch, relation, ops, n_ops))
                self.shipped_ops_total += n_ops
                self._ship(relation, ops, epoch)
        self._in_doubt = None

    def _write_primary(
        self,
        relation: str,
        ops: list[dict[str, Any]],
        client: str,
        epoch: int,
        timeout: float | None,
    ) -> Any:
        last: Exception | None = None
        for _ in range(len(self.members) + 2):
            primary = self._usable_primary()
            try:
                return primary.client.call(
                    "update", relation=relation, ops=ops,
                    client=client, epoch=epoch, timeout=timeout,
                )
            except (RemoteOpError, ShardTimeout):
                raise
            except ShardUnavailable as exc:
                last = exc
                if primary.process.is_alive():
                    try:
                        primary.client.reconnect(attempts=2)
                        self.repairs_total += 1
                        self._count("reconnect_repairs_total")
                        continue  # retry the same primary; epoch dedups
                    except ShardUnavailable:
                        pass
                primary.health = "dead"
        raise last if last is not None else ShardUnavailable(
            self.shard_id, "no usable primary"
        )

    def _usable_primary(self) -> Member:
        """The current primary, promoting or repairing as needed."""
        for _ in range(len(self.members) + 2):
            primary = self.primary
            if primary is None or not primary.is_live:
                self.promote()
                continue
            if primary.client.broken is not None:
                if primary.process.is_alive():
                    try:
                        primary.client.reconnect(attempts=2)
                        self.repairs_total += 1
                        self._count("reconnect_repairs_total")
                    except ShardUnavailable:
                        primary.health = "dead"
                        continue
                else:
                    primary.health = "dead"
                    continue
            return primary
        raise ShardUnavailable(self.shard_id, "no usable primary")

    def _ship(self, relation: str, ops: list[dict[str, Any]], epoch: int) -> None:
        # Shipments run on the ack path (under the write lock), so a
        # black-holed replica must not be allowed to stall acked writes
        # for a full rpc_timeout: shipment calls get the much shorter
        # heartbeat budget, and a replica that misses one is merely
        # marked lagging — it catches up by replay later.
        budget = self.config.heartbeat_timeout_s
        for member in list(self.members):
            if member.role != "replica" or not member.is_live:
                continue
            try:
                if member.applied_epoch < epoch - 1:
                    # The member missed earlier shipments; replay the
                    # whole gap (which includes this batch) in order.
                    self._catch_up(member, timeout=budget)
                else:
                    result = member.client.call(
                        "apply_delta", relation=relation, ops=ops,
                        epoch=epoch, client="replication", timeout=budget,
                    )
                    member.applied_epoch = int(result.get("epoch", epoch))
            except (RpcError, ReplicationError):
                self.note_failure(member)

    def _catch_up(self, member: Member, timeout: float | None = None) -> None:
        """Replay retained deltas the member has not applied yet."""
        entries = [e for e in list(self.delta_log) if e[0] > member.applied_epoch]
        if entries and entries[0][0] != member.applied_epoch + 1:
            raise ReplicationError(
                f"shard {self.shard_id} member m{member.member_id} is behind "
                f"the retained delta window (applied {member.applied_epoch}, "
                f"oldest retained {entries[0][0]}): snapshot bootstrap required"
            )
        for epoch, relation, ops, _n_ops in entries:
            result = member.client.call(
                "apply_delta", relation=relation, ops=ops,
                epoch=epoch, client="replication", timeout=timeout,
            )
            member.applied_epoch = int(result.get("epoch", epoch))

    def lag_ops(self, member: Member) -> int:
        """How many committed operations the member has not applied.

        Exact while the gap is inside the retained delta window; once
        the window has rolled past the member's position the only
        defensible bound is every operation ever shipped.
        """
        if self.write_epoch <= member.applied_epoch:
            return 0
        # The supervisor reads lag from its heartbeat thread while
        # apply_update appends on a router thread; iterating the live
        # deque dies with "deque mutated during iteration".
        entries = [e for e in list(self.delta_log) if e[0] > member.applied_epoch]
        if entries and entries[0][0] == member.applied_epoch + 1:
            return sum(e[3] for e in entries)
        return max(self.shipped_ops_total, self.write_epoch - member.applied_epoch)

    # ------------------------------------------------------------------
    # failover
    # ------------------------------------------------------------------
    def promote(self) -> Member:
        """Flip the most-caught-up live replica to primary.

        The candidate is caught up from the retained delta log *before*
        the role flip, so the new primary starts with every acked write
        applied.  Raises :class:`ShardUnavailable` when no live replica
        exists — single-member shards keep their old "shard is gone"
        failure mode.
        """
        with self._lock:
            candidate = select_promotion_candidate(self.members)
            if candidate is None:
                raise ShardUnavailable(
                    self.shard_id, "primary lost and no live replica to promote"
                )
            old = self.primary
            if old is not None and old is not candidate:
                old.role = "replica"
                old.health = "dead"
            self._catch_up(candidate)
            candidate.role = "primary"
            candidate.note_ok()
            self.promotions_total += 1
            self._count("promotions_total")
            return candidate

    def respawn_replica(self) -> Member:
        """Fork a replacement replica from a healthy member's snapshot.

        Runs under the write lock: no batch can commit between the
        snapshot cut and the new member joining the shipment list, so
        the snapshot epoch plus replayed deltas is a complete history.
        """
        with self._lock:
            source = self._usable_primary()
            snap = source.client.call("snapshot", timeout=self.rpc_timeout)
            member = self._spawn(
                "replica",
                records=snap.get("relations", {}),
                replica_epoch=int(snap.get("epoch", 0)),
            )
            try:
                self._catch_up(member)
            except (RpcError, ReplicationError):
                self.note_failure(member)
            self.respawns_total += 1
            self._count("respawns_total")
            return member

    def resync(self, member: Member) -> None:
        """Repair a poisoned connection and replay any missed deltas."""
        with self._lock:
            if member.client.broken is not None:
                member.client.reconnect()
                self.repairs_total += 1
                self._count("reconnect_repairs_total")
            pong = member.client.call(
                "ping", timeout=self.config.heartbeat_timeout_s
            )
            member.applied_epoch = int(
                pong.get("epoch", member.applied_epoch)
            )
            if member.role == "replica":
                self._catch_up(member)
            member.note_ok()

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def query(
        self, timeout: float | None = None, **params: Any
    ) -> tuple[dict[str, Any], dict[str, Any]]:
        """Primary-first read with replica retry inside the deadline.

        Returns ``(answer_doc, leg_info)`` where ``leg_info`` records
        who served the read (``served_by``/``member``), whether a
        retry happened, and the serving replica's lag in operations.
        A worker that *executed* the query and raised re-raises here —
        that is an application error, not a transport failure, and a
        replica would fail identically.
        """
        budget = self.rpc_timeout if timeout is None else timeout
        deadline = time.monotonic() + budget
        errors: list[Exception] = []
        # Two passes: a concurrent inline promotion can move the only
        # survivor from the replica list to the primary slot *between*
        # this thread's primary attempt and its replica scan, leaving
        # the first pass empty-handed; the second pass sees the new
        # membership.
        for _ in range(2):
            served = self._query_once(deadline, budget, timeout, params, errors)
            if served is not None:
                return served
            if time.monotonic() >= deadline:
                break
        if errors:
            raise errors[-1]
        raise ShardUnavailable(self.shard_id, "no live member to serve the query")

    def _query_once(
        self,
        deadline: float,
        budget: float,
        timeout: float | None,
        params: dict[str, Any],
        errors: list[Exception],
    ) -> tuple[dict[str, Any], dict[str, Any]] | None:
        primary = self.primary
        if primary is not None and primary.health != "dead" and primary.process.is_alive():
            if primary.client.broken is not None:
                try:
                    primary.client.reconnect(attempts=1)
                    self.repairs_total += 1
                    self._count("reconnect_repairs_total")
                except ShardUnavailable as exc:
                    errors.append(exc)
            if primary.client.broken is None:
                try:
                    doc = primary.client.call("query", timeout=timeout, **params)
                    primary.note_ok()
                    return doc, {
                        "served_by": "primary",
                        "member": primary.member_id,
                        "retried": False,
                        "lag": 0,
                    }
                except RemoteOpError:
                    raise
                except RpcError as exc:
                    errors.append(exc)
        replicas = sorted(
            self.live_replicas(),
            key=lambda m: (-m.applied_epoch, m.member_id),
        )
        for member in replicas:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            if member.client.broken is not None:
                try:
                    member.client.reconnect(attempts=1)
                    self.repairs_total += 1
                    self._count("reconnect_repairs_total")
                except ShardUnavailable as exc:
                    errors.append(exc)
                    continue
            try:
                doc = member.client.call(
                    "query", timeout=min(remaining, budget), **params
                )
            except RemoteOpError:
                raise
            except RpcError as exc:
                errors.append(exc)
                self.note_failure(member)
                continue
            member.note_ok()
            return doc, {
                "served_by": "replica",
                "member": member.member_id,
                "retried": True,
                "lag": self.lag_ops(member),
            }
        return None

    # ------------------------------------------------------------------
    # other primary ops and refresh
    # ------------------------------------------------------------------
    def call_primary(self, op: str, timeout: float | None = None, **params: Any) -> Any:
        """One non-replicated op (fetch/stats/metrics/…) on the primary."""
        primary = self._usable_primary()
        return primary.client.call(op, timeout=timeout, **params)

    def refresh(self, timeout: float | None = None) -> Any:
        """Refresh every live member's views; failover on a dead primary.

        Replica refresh failures only mark the member lagging: the
        primary's answer is the epoch's result, and a replica that
        missed a refresh recomputes on its next query anyway.
        """
        primary = self._usable_primary()
        try:
            result = primary.client.call("refresh", timeout=timeout)
        except (RemoteOpError, ShardTimeout):
            raise
        except ShardUnavailable:
            if primary.process.is_alive():
                raise
            primary.health = "dead"
            self.promote()
            result = self._usable_primary().client.call("refresh", timeout=timeout)
        for member in self.live_replicas():
            try:
                member.client.call("refresh", timeout=timeout)
            except RpcError:
                self.note_failure(member)
        return result

    # ------------------------------------------------------------------
    # shutdown
    # ------------------------------------------------------------------
    def close(self, rpc_timeout: float = 10.0) -> None:
        """Shut every member down and reap every process ever spawned.

        Dead and replaced members stay in ``members``, so the reap loop
        covers supervisor-respawned workers too — nothing this set ever
        forked can outlive it.
        """
        with self._lock:
            members = list(self.members)
        for member in members:
            if member.process.is_alive() and member.client.broken is None:
                try:
                    member.client.call("shutdown", timeout=rpc_timeout)
                except RpcError:
                    pass  # already gone; terminated below
            member.client.close()
        for member in members:
            member.process.join(timeout=10.0)
            if member.process.is_alive():
                member.process.terminate()
                member.process.join(timeout=5.0)
