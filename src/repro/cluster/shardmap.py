"""The partitioning layer: which shard owns which tuples.

A :class:`ShardMap` assigns base-relation tuples to ``n_shards`` shard
workers by the value of one *partition field*.  Two schemes:

* ``"range"`` — explicit sorted cut points over the partition field's
  domain; shard ``i`` owns ``[bounds[i-1], bounds[i])``.  Range
  queries on the partition field prune to the shards whose interval
  they intersect, which is what makes single-shard routing possible.
* ``"hash"`` — a consistent-hash ring with ``replicas`` virtual nodes
  per shard (stable MD5 hashing, so placement is identical across
  processes and Python hash seeds).  Point lookups route to one shard;
  range queries always scatter.

The map is **versioned and serializable**: routers and workers agree on
a placement by exchanging ``to_dict()`` documents, and any rebalance
produces a *new* map with ``version + 1`` (placement never mutates in
place — a request carries the version it routed under, so a stale
router is detectable rather than silently wrong).
"""

from __future__ import annotations

import hashlib
import json
from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field, replace
from typing import Any, Mapping

__all__ = ["ShardMap", "ShardMapError"]


class ShardMapError(ValueError):
    """An invalid shard map (bad scheme, bounds, or document)."""


def _stable_hash(value: Any) -> int:
    """A process-stable 64-bit hash of a partition value."""
    digest = hashlib.md5(repr(value).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass(frozen=True)
class ShardMap:
    """Versioned assignment of partition-field values to shards."""

    scheme: str  # "range" | "hash"
    n_shards: int
    #: The base-relation field whose value places a tuple.
    partition_field: str
    #: Range scheme only: sorted cut points, ``len == n_shards - 1``.
    bounds: tuple[Any, ...] = ()
    #: Hash scheme only: virtual nodes per shard on the ring.
    replicas: int = 64
    version: int = 1
    #: Hash scheme only: the sorted ring, derived deterministically.
    _ring: tuple[tuple[int, int], ...] = field(default=(), repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.scheme not in ("range", "hash"):
            raise ShardMapError(f"unknown scheme {self.scheme!r}")
        if self.n_shards < 1:
            raise ShardMapError(f"need >= 1 shard, got {self.n_shards}")
        if self.version < 1:
            raise ShardMapError(f"version must be >= 1, got {self.version}")
        if self.scheme == "range":
            if len(self.bounds) != self.n_shards - 1:
                raise ShardMapError(
                    f"range map over {self.n_shards} shards needs "
                    f"{self.n_shards - 1} cut points, got {len(self.bounds)}"
                )
            if list(self.bounds) != sorted(self.bounds):
                raise ShardMapError(f"cut points must be sorted: {self.bounds!r}")
        else:
            if self.replicas < 1:
                raise ShardMapError(f"replicas must be >= 1, got {self.replicas}")
            ring = sorted(
                (_stable_hash(f"{shard}:{replica}"), shard)
                for shard in range(self.n_shards)
                for replica in range(self.replicas)
            )
            object.__setattr__(self, "_ring", tuple(ring))

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def ranged(
        cls, partition_field: str, lo: float, hi: float, n_shards: int
    ) -> "ShardMap":
        """Even cut points over ``[lo, hi)`` (numeric domains)."""
        if hi <= lo:
            raise ShardMapError(f"empty domain [{lo}, {hi})")
        width = (hi - lo) / n_shards
        bounds = tuple(
            int(lo + width * i) if float(lo + width * i).is_integer()
            else lo + width * i
            for i in range(1, n_shards)
        )
        return cls("range", n_shards, partition_field, bounds=bounds)

    @classmethod
    def hashed(
        cls, partition_field: str, n_shards: int, replicas: int = 64
    ) -> "ShardMap":
        return cls("hash", n_shards, partition_field, replicas=replicas)

    def rebalanced(self, bounds: tuple[Any, ...]) -> "ShardMap":
        """A new range placement at ``version + 1`` (same shard count)."""
        if self.scheme != "range":
            raise ShardMapError("only range maps can move cut points")
        return replace(self, bounds=tuple(bounds), version=self.version + 1)

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    def shard_of(self, value: Any) -> int:
        """The shard owning one partition-field value."""
        if self.scheme == "range":
            return bisect_right(self.bounds, value)
        target = _stable_hash(value)
        index = bisect_left(self._ring, (target, -1))
        if index == len(self._ring):
            index = 0
        return self._ring[index][1]

    def shards_for_range(self, lo: Any = None, hi: Any = None) -> tuple[int, ...]:
        """Shards that may hold values in ``[lo, hi]`` (both inclusive;
        ``None`` bounds are unbounded).  Hash placement cannot prune, so
        it returns every shard."""
        if self.scheme != "range":
            return self.all_shards()
        first = 0 if lo is None else bisect_right(self.bounds, lo)
        last = self.n_shards - 1 if hi is None else bisect_right(self.bounds, hi)
        if hi is not None and lo is not None and hi < lo:
            return ()
        return tuple(range(first, last + 1))

    def all_shards(self) -> tuple[int, ...]:
        return tuple(range(self.n_shards))

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        doc: dict[str, Any] = {
            "scheme": self.scheme,
            "n_shards": self.n_shards,
            "partition_field": self.partition_field,
            "version": self.version,
        }
        if self.scheme == "range":
            doc["bounds"] = list(self.bounds)
        else:
            doc["replicas"] = self.replicas
        return doc

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "ShardMap":
        try:
            scheme = doc["scheme"]
            return cls(
                scheme=scheme,
                n_shards=int(doc["n_shards"]),
                partition_field=doc["partition_field"],
                bounds=tuple(doc.get("bounds", ())),
                replicas=int(doc.get("replicas", 64)),
                version=int(doc.get("version", 1)),
            )
        except (KeyError, TypeError) as exc:
            raise ShardMapError(f"bad shard map document: {exc}") from exc

    @classmethod
    def from_json(cls, text: str) -> "ShardMap":
        return cls.from_dict(json.loads(text))
