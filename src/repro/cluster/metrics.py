"""Cluster-wide metrics: N per-shard registries, one v1 export.

Each shard worker keeps its own :class:`~repro.service.metrics
.MetricsRegistry`; the router gathers their exports and merges them
into a single document that still satisfies the
``repro.service.metrics/v1`` schema (so every existing consumer —
``validate_metrics``, ``MetricsRegistry.from_dict``, the dashboard —
works on the cluster export unchanged).

Merge rules per instrument kind:

* **counters** — summed (total requests served by the cluster);
* **gauges** — maximum (a level like AD depth or breaker state is
  reported at its worst shard, never averaged away);
* **histograms** — merged per bucket (bounds must agree), with
  ``count``/``sum`` summed and ``min``/``max`` taken across shards, so
  cluster latency distributions are exact, not approximated.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Mapping

from repro.service.metrics import (
    SCHEMA,
    Histogram,
    MetricsRegistry,
    validate_metrics,
)

__all__ = ["MetricsMergeError", "aggregate_metrics", "cluster_registry"]


class MetricsMergeError(ValueError):
    """Per-shard exports disagree in a way the merge cannot reconcile."""


def _series_key(entry: Mapping[str, Any]) -> tuple[str, tuple[tuple[str, str], ...]]:
    return entry["name"], tuple(sorted(entry["labels"].items()))


def _merge_scalar(merged: dict[str, Any], entry: Mapping[str, Any]) -> None:
    if entry["kind"] == "counter":
        merged["value"] += entry["value"]
    else:
        merged["value"] = max(merged["value"], entry["value"])


def _merge_histogram(merged: dict[str, Any], entry: Mapping[str, Any]) -> None:
    bounds = [b["le"] for b in merged["buckets"]]
    if [b["le"] for b in entry["buckets"]] != bounds:
        raise MetricsMergeError(
            f"{entry['name']}: shards exported different bucket bounds"
        )
    for target, source in zip(merged["buckets"], entry["buckets"]):
        target["count"] += source["count"]
    merged["count"] += entry["count"]
    merged["sum"] += entry["sum"]
    for field, pick in (("min", min), ("max", max)):
        if entry.get(field) is not None:
            current = merged.get(field)
            merged[field] = (
                entry[field] if current is None else pick(current, entry[field])
            )
    merged["mean"] = merged["sum"] / merged["count"] if merged["count"] else 0.0
    _refresh_summaries(merged)


def _refresh_summaries(merged: dict[str, Any]) -> None:
    """Recompute p50/p95/p99 from the merged bucket state — the
    per-shard summaries are stale once counts are combined."""
    bounds = tuple(
        math.inf if b["le"] == "inf" else float(b["le"])
        for b in merged["buckets"]
    )
    hist = Histogram(merged["name"], (), buckets=bounds)
    hist.bucket_counts = [b["count"] for b in merged["buckets"]]
    hist.count = int(merged["count"])
    hist.sum = float(merged["sum"])
    if merged.get("min") is not None:
        hist.min = float(merged["min"])
    if merged.get("max") is not None:
        hist.max = float(merged["max"])
    merged["p50"] = hist.quantile(0.50)
    merged["p95"] = hist.quantile(0.95)
    merged["p99"] = hist.quantile(0.99)


def aggregate_metrics(exports: Iterable[Mapping[str, Any]]) -> dict[str, Any]:
    """Merge per-shard v1 exports into one v1 export.

    Every input is schema-validated first and the output is validated
    before returning, so the aggregate round-trips through
    :meth:`MetricsRegistry.from_dict` exactly like a single-server
    export would.
    """
    merged: dict[tuple[str, tuple[tuple[str, str], ...]], dict[str, Any]] = {}
    for export in exports:
        validate_metrics(export)
        for entry in export["metrics"]:
            key = _series_key(entry)
            existing = merged.get(key)
            if existing is None:
                copy = dict(entry)
                if entry["kind"] == "histogram":
                    copy["buckets"] = [dict(b) for b in entry["buckets"]]
                merged[key] = copy
                continue
            if existing["kind"] != entry["kind"]:
                raise MetricsMergeError(
                    f"{entry['name']}: kind mismatch across shards "
                    f"({existing['kind']} vs {entry['kind']})"
                )
            if entry["kind"] == "histogram":
                _merge_histogram(existing, entry)
            else:
                _merge_scalar(existing, entry)
    doc = {
        "schema": SCHEMA,
        "metrics": [merged[key] for key in sorted(merged)],
    }
    validate_metrics(doc)
    return doc


def cluster_registry(exports: Iterable[Mapping[str, Any]]) -> MetricsRegistry:
    """The aggregate as a live registry (dashboard rendering, tests)."""
    return MetricsRegistry.from_dict(aggregate_metrics(exports))
