"""Sharded multi-process serving: partitioning, workers, router.

The cluster subsystem scales the single-process serving stack of
:mod:`repro.service` past the GIL by partitioning base relations (and
the views over them) across N shard worker processes behind one
scatter–gather front-end router:

* :mod:`repro.cluster.shardmap` — versioned, serializable assignment
  of tuples to shards (key range or consistent hash);
* :mod:`repro.cluster.rpc` — framed JSON RPC with per-request ids,
  per-call deadlines and timeout recovery (stale replies drained);
* :mod:`repro.cluster.worker` — one process per shard, each hosting a
  full :class:`~repro.service.server.ViewServer` over its partition;
* :mod:`repro.cluster.router` — single-shard routing, scatter–gather
  with partial-failure composition, cross-shard tuple moves,
  cluster-wide coalesced refresh epochs, merged-result caching;
* :mod:`repro.cluster.metrics` — per-shard registries merged into one
  schema-valid cluster export;
* :mod:`repro.cluster.harness` — demo cluster specs and paced traffic
  for the CLI, tests and benchmarks.

See ``docs/cluster.md`` for topology and failure-mode semantics.
"""

from .chaos import ChaosError, ChaosInjector
from .metrics import MetricsMergeError, aggregate_metrics, cluster_registry
from .replication import (
    Member,
    ReplicaSet,
    ReplicationConfig,
    ReplicationError,
    select_promotion_candidate,
)
from .router import ClusterClosedError, ClusterError, ClusterRouter
from .rpc import (
    RemoteOpError,
    RpcError,
    ShardClient,
    ShardTimeout,
    ShardUnavailable,
)
from .shardmap import ShardMap, ShardMapError
from .supervisor import ClusterSupervisor

__all__ = [
    "ShardMap",
    "ShardMapError",
    "ClusterRouter",
    "ClusterError",
    "ClusterClosedError",
    "ShardClient",
    "RpcError",
    "ShardTimeout",
    "ShardUnavailable",
    "RemoteOpError",
    "ReplicationConfig",
    "ReplicationError",
    "ReplicaSet",
    "Member",
    "select_promotion_candidate",
    "ClusterSupervisor",
    "ChaosInjector",
    "ChaosError",
    "aggregate_metrics",
    "cluster_registry",
    "MetricsMergeError",
]
