"""Health-checked supervision: heartbeats, failover, repair, respawn.

The :class:`ClusterSupervisor` is one background thread watching every
member of every shard's replica set:

* **heartbeats** — each live member is pinged over its existing framed
  RPC connection under ``heartbeat_timeout_s``; the reply refreshes the
  member's applied-epoch record.  Failures are *consecutive-counted*:
  ``suspect_after`` misses mark the member suspect, ``dead_after``
  mark it dead — one slow call never removes a worker from service.
* **promotion** — a shard whose primary is dead gets the most-caught-up
  live replica promoted (after delta-log catch-up, so no acked write
  is lost).  The write and refresh paths also promote inline on first
  contact with a dead primary; the supervisor is the backstop that
  catches shards with no traffic.
* **repair** — a poisoned :class:`~repro.cluster.rpc.ShardClient`
  whose worker process is still alive is reconnected (the worker's
  accept loop takes a fresh connection) and, for replicas, resynced by
  replaying missed deltas — a broken TCP stream is not a dead shard.
* **respawn** — a shard running below its configured 1+N membership
  gets a replacement replica forked from a healthy member's snapshot
  plus replayed deltas.  Replaced and dead members stay in the set's
  member list, so the router's close() reaps every process the
  supervisor ever created.
"""

from __future__ import annotations

import threading
from typing import Any

from .replication import ReplicaSet, ReplicationError
from .rpc import RpcError

__all__ = ["ClusterSupervisor"]


class ClusterSupervisor:
    """Background health checker and failover driver for one router."""

    def __init__(self, router: Any, interval_s: float | None = None) -> None:
        self.router = router
        #: Sweep cadence; defaults to the tightest heartbeat interval
        #: any shard's replication config asks for.
        self.interval_s = interval_s if interval_s is not None else min(
            (rs.config.heartbeat_interval_s for rs in router.shards),
            default=0.15,
        )
        self.heartbeats_total = 0
        self.failures_total = 0
        self.promotions_total = 0
        self.respawns_total = 0
        self.repairs_total = 0
        self.errors_total = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ClusterSupervisor":
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-cluster-supervisor", daemon=True,
        )
        self._thread.start()
        self.router.supervisor = self
        return self

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=30.0)
            self._thread = None

    def __enter__(self) -> "ClusterSupervisor":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # the watch loop
    # ------------------------------------------------------------------
    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            for replica_set in self.router.shards:
                if self._stop.is_set():
                    return
                try:
                    self._check(replica_set)
                except Exception:
                    # Supervision must survive anything one shard's
                    # check throws; the error is counted, the next
                    # sweep retries.
                    self.errors_total += 1
                    self._count("supervisor_errors_total")

    def _count(self, name: str, **labels: str) -> None:
        self.router.metrics.counter(name, **labels).inc()

    def _check(self, rs: ReplicaSet) -> None:
        cfg = rs.config
        for member in list(rs.members):
            if self._stop.is_set():
                return
            if member.health == "dead":
                continue
            if not member.process.is_alive():
                member.health = "dead"
                self.failures_total += 1
                self._count(
                    "member_failures_total",
                    shard=str(rs.shard_id), member=str(member.member_id),
                )
                continue
            if member.client.broken is not None:
                try:
                    rs.resync(member)
                    self.repairs_total += 1
                except (RpcError, ReplicationError):
                    self.failures_total += 1
                    rs.note_failure(member)
                continue
            try:
                pong = member.client.call(
                    "ping", timeout=cfg.heartbeat_timeout_s
                )
            except RpcError:
                self.heartbeats_total += 1
                self.failures_total += 1
                rs.note_failure(member)
                continue
            self.heartbeats_total += 1
            self._count("heartbeats_total", shard=str(rs.shard_id))
            member.applied_epoch = max(
                member.applied_epoch, int(pong.get("epoch", 0))
            )
            member.note_ok()
        primary = rs.primary
        if (primary is None or not primary.is_live) and rs.live_replicas():
            try:
                rs.promote()
                self.promotions_total += 1
            except (RpcError, ReplicationError):
                self.errors_total += 1
        if cfg.respawn and cfg.replicas:
            target = 1 + cfg.replicas
            if len(rs.live_members()) < target and rs.live_members():
                try:
                    rs.respawn_replica()
                    self.respawns_total += 1
                except (RpcError, ReplicationError):
                    self.errors_total += 1
