"""Hash-clustered relation wrapper (the paper's ``R2``).

Section 3.1 stores the join view's inner relation with clustered
hashing on the join field; it is probed during joins and view
refreshes and — in the paper's Model 2 — never updated.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.storage.hashindex import HashFile
from repro.storage.pager import BufferPool
from repro.storage.tuples import Record, Schema

__all__ = ["HashedRelation"]


class HashedRelation:
    """A relation stored as a clustered hash file on one field."""

    def __init__(
        self,
        schema: Schema,
        pool: BufferPool,
        hashed_on: str,
        block_bytes: int = 4000,
        buckets: int | None = None,
    ) -> None:
        if hashed_on not in schema.fields:
            raise ValueError(
                f"cannot hash {schema.name!r} on unknown field {hashed_on!r}"
            )
        self.schema = schema
        self.pool = pool
        self.hashed_on = hashed_on
        self.records_per_page = schema.records_per_page(block_bytes)
        self.file = HashFile(
            schema.name,
            pool,
            hash_key=lambda record: record[hashed_on],
            records_per_page=self.records_per_page,
            buckets=buckets if buckets is not None else 64,
        )
        self._by_key: dict[Any, Record] = {}

    def __len__(self) -> int:
        return len(self._by_key)

    @property
    def meter(self):
        return self.pool.disk.meter

    def bulk_load(self, records: list[Record]) -> None:
        """Initial load (meter usually reset afterwards)."""
        self.file.bulk_load(records)
        for record in records:
            self._by_key[record.key] = record

    def insert(self, record: Record) -> None:
        """Insert a new tuple (hash-file read + write)."""
        if record.key in self._by_key:
            raise KeyError(f"duplicate key {record.key!r} in {self.schema.name!r}")
        self.file.insert(record)
        self._by_key[record.key] = record

    def delete_by_key(self, key: Any) -> Record:
        """Delete and return the tuple with the given key."""
        record = self._by_key.pop(key, None)
        if record is None:
            raise KeyError(f"no tuple with key {key!r} in {self.schema.name!r}")
        self.file.delete(record)
        return record

    def update_by_key(self, key: Any, **changes: Any) -> tuple[Record, Record]:
        """Modify a tuple in place; returns (old, new)."""
        old = self._by_key.get(key)
        if old is None:
            raise KeyError(f"no tuple with key {key!r} in {self.schema.name!r}")
        new = self.schema.updated(old, **changes)
        self.file.delete(old)
        self.file.insert(new)
        del self._by_key[key]
        self._by_key[new.key] = new
        return old, new

    def peek_by_key(self, key: Any) -> Record | None:
        """Key lookup without I/O (bookkeeping paths only)."""
        return self._by_key.get(key)

    def probe(self, value: Any) -> list[Record]:
        """Hash lookup by the clustering field (reads one chain)."""
        return self.file.lookup(value)

    def probe_pinned(self, value: Any) -> list[Record]:
        """Hash lookup that leaves touched pages pinned (join inner)."""
        return self.file.lookup_pinned(value)

    def scan_all(self) -> Iterator[Record]:
        """Read every page of the hash file once."""
        return self.file.scan_all()

    def records_snapshot(self) -> list[Record]:
        """All records without I/O (setup/baseline paths only)."""
        return list(self._by_key.values())
