"""Query execution plans for query modification (Section 3.2.3/3.4.3).

Query modification rewrites a view query against the base relations;
the paper costs three single-relation plans — clustered index scan,
unclustered (secondary) index scan, sequential scan — and one join
plan, nested loops with a hash-indexed inner relation whose pages stay
in the buffer pool.

The unclustered plan uses an in-memory :class:`SecondaryIndex`: the
paper's formula ``y(N, b, N*f*f_v)`` charges only the *data page*
fetches, ignoring index I/O, and the simulation mirrors that.  The
Yao-function behaviour emerges physically: repeated fetches hitting the
same data page cost one read because the page is buffered.
"""

from __future__ import annotations

import bisect
from typing import Any

from repro.hr.differential import ClusteredRelation
from repro.storage.columnar import ColumnBatch
from repro.storage.hashindex import HashFile
from repro.storage.pager import CostMeter
from repro.storage.tuples import Record
from repro.views.definition import JoinView, ViewTuple
from repro.views.predicate import Predicate

__all__ = [
    "SecondaryIndex",
    "clustered_scan",
    "unclustered_scan",
    "sequential_scan",
    "nested_loop_join",
]


class SecondaryIndex:
    """Memory-resident secondary index: field value -> tuple keys.

    Maintained alongside the relation by the database; lookups charge
    no I/O (see module docstring).
    """

    def __init__(self, relation: ClusteredRelation, field: str) -> None:
        if field not in relation.schema.fields:
            raise ValueError(
                f"cannot index {relation.schema.name!r} on unknown field {field!r}"
            )
        self.relation = relation
        self.field = field
        self._entries: list[tuple[Any, Any]] = []  # (field value, key), sorted
        for record in relation.records_snapshot():
            self._entries.append((record[field], record.key))
        self._entries.sort()

    def __len__(self) -> int:
        return len(self._entries)

    def on_insert(self, record: Record) -> None:
        """Track a newly inserted tuple."""
        bisect.insort(self._entries, (record[self.field], record.key))

    def on_delete(self, record: Record) -> None:
        """Drop a deleted tuple's entry."""
        entry = (record[self.field], record.key)
        index = bisect.bisect_left(self._entries, entry)
        if index < len(self._entries) and self._entries[index] == entry:
            del self._entries[index]

    def on_update(self, old: Record, new: Record) -> None:
        """Move an updated tuple's entry to its new field value."""
        self.on_delete(old)
        self.on_insert(new)

    def keys_in_range(self, lo: Any, hi: Any) -> list[Any]:
        """Keys of tuples with ``lo <= field <= hi``."""
        start = bisect.bisect_left(self._entries, (lo,))
        keys = []
        for value, key in self._entries[start:]:
            if value > hi:
                break
            keys.append(key)
        return keys


def clustered_scan(
    relation: ClusteredRelation,
    lo: Any,
    hi: Any,
    predicate: Predicate,
    meter: CostMeter,
) -> list[Record]:
    """Clustered (primary) index scan: no extra tuples are read.

    One B+-tree descent, then leaf pages of the range; every tuple in
    the range is screened at ``c1``.
    """
    result: list[Record] = []
    for records in relation.tree.range_batches(lo, hi):
        meter.record_screen(len(records))
        batch = ColumnBatch.from_records(records)
        result.extend(batch.take(predicate.matches_batch(batch)))
    return result


def unclustered_scan(
    relation: ClusteredRelation,
    index: SecondaryIndex,
    lo: Any,
    hi: Any,
    predicate: Predicate,
    meter: CostMeter,
) -> list[Record]:
    """Secondary index scan: fetch each matching tuple's data page.

    Each fetched tuple is screened.  Distinct-page behaviour (the Yao
    function) emerges from buffer-pool hits on shared pages.
    """
    result = []
    for key in index.keys_in_range(lo, hi):
        fetched = _fetch_by_key(relation, key)
        if fetched is None:
            continue
        meter.record_screen()
        if predicate.matches(fetched):
            result.append(fetched)
    return result


def _fetch_by_key(relation: ClusteredRelation, key: Any) -> Record | None:
    """Read one tuple's data page via the clustered tree.

    The tuple's position in the clustered order is its clustering-field
    value; internal index pages are buffer-resident after first touch
    so repeated fetches cost ~one leaf read each (or zero when the leaf
    is already buffered).
    """
    probe = relation.peek_by_key(key)
    if probe is None:
        return None
    cluster_value = probe[relation.clustered_on]
    for record in relation.range_scan(cluster_value, cluster_value):
        if record.key == key:
            return record
    return None


def sequential_scan(
    relation: ClusteredRelation, predicate: Predicate, meter: CostMeter
) -> list[Record]:
    """Full scan: every page read, every tuple screened."""
    result: list[Record] = []
    for batch in relation.tree.scan_batches():
        meter.record_screen(len(batch))
        result.extend(batch.take(predicate.matches_batch(batch)))
    return result


def nested_loop_join(
    view: JoinView,
    outer: ClusteredRelation,
    inner_index: HashFile,
    lo: Any,
    hi: Any,
    meter: CostMeter,
) -> list[ViewTuple]:
    """Nested loops with a hash-indexed inner relation (Section 3.4.3).

    The outer relation is scanned clustered over ``[lo, hi]`` (the view
    query's range on the view key); qualifying tuples probe the inner
    hash index.  Probed inner pages are pinned so each is read at most
    once per join ("pages of R2 stay in the buffer pool throughout the
    computation").  CPU: one screen per outer tuple scanned, one match
    per probe.
    """
    pool = outer.pool
    result = []
    try:
        for outer_record in outer.range_scan(lo, hi):
            meter.record_screen()
            if not view.predicate.matches(outer_record):
                continue
            join_value = outer_record[view.join_field]
            for inner_record in inner_index.lookup_pinned(join_value):
                meter.record_screen()  # match cost, c1 per joining pair
                result.append(view.combine(outer_record, inner_record))
    finally:
        pool.unpin_all()
    return result
