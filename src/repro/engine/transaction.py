"""Update transactions: the unit the maintenance strategies react to.

A transaction is a batch of inserts, deletes and in-place updates to
one base relation (the paper's workload updates ``l`` tuples per
transaction).  The fields a transaction writes feed the RIU
(readily-ignorable-update) compile-time screen.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.storage.tuples import Record

__all__ = ["Insert", "Delete", "Update", "Operation", "Transaction"]


@dataclass(frozen=True)
class Insert:
    """Insert a new tuple."""

    record: Record

    def written_fields(self) -> frozenset[str]:
        """Every field of the new tuple is written."""
        return frozenset(self.record.values)


@dataclass(frozen=True)
class Delete:
    """Delete the tuple with the given key."""

    key: Any

    def written_fields(self) -> frozenset[str]:
        """A deletion "writes" every field of the tuple it removes.

        The RIU test cannot rule it out without knowing the tuple, so
        the wildcard makes it conservatively never readily ignorable.
        """
        return frozenset(("*",))


@dataclass(frozen=True)
class Update:
    """Modify fields of the tuple with the given key."""

    key: Any
    changes: Mapping[str, Any]

    def __post_init__(self) -> None:
        if not self.changes:
            raise ValueError("update must change at least one field")

    def written_fields(self) -> frozenset[str]:
        """Only the modified fields are written."""
        return frozenset(self.changes)


Operation = Insert | Delete | Update


@dataclass(frozen=True)
class Transaction:
    """A batch of operations against one relation."""

    relation: str
    operations: tuple[Operation, ...]

    def __post_init__(self) -> None:
        if not self.operations:
            raise ValueError("transaction has no operations")

    def __len__(self) -> int:
        return len(self.operations)

    def written_fields(self) -> frozenset[str]:
        """Union of fields written — the RIU test's input."""
        fields: frozenset[str] = frozenset()
        for op in self.operations:
            fields |= op.written_fields()
        return fields

    @classmethod
    def of(cls, relation: str, operations: Iterable[Operation]) -> "Transaction":
        return cls(relation=relation, operations=tuple(operations))
