"""Database engine: catalog, transactions, executor, relations."""

from .database import CatalogError, Database, ViewMaintenanceError
from .executor import (
    SecondaryIndex,
    clustered_scan,
    nested_loop_join,
    sequential_scan,
    unclustered_scan,
)
from .relations import HashedRelation
from .transaction import Delete, Insert, Operation, Transaction, Update

__all__ = [
    "CatalogError",
    "Database",
    "Delete",
    "HashedRelation",
    "Insert",
    "Operation",
    "SecondaryIndex",
    "Transaction",
    "Update",
    "ViewMaintenanceError",
    "clustered_scan",
    "nested_loop_join",
    "sequential_scan",
    "unclustered_scan",
]
