"""The database engine: catalog, transactions, views, strategies.

:class:`Database` owns the simulated disk and buffer pool, the base
relations (plain clustered, hash-clustered, or hypothetical), any
secondary indexes, and the views with their maintenance strategies.
Transactions applied through :meth:`Database.apply_transaction` update
the base storage and notify every affected view's strategy;
:meth:`Database.query_view` answers a view query under whatever
strategy the view was defined with.

The shared :class:`~repro.storage.pager.CostMeter` prices everything;
``snapshot``/``delta_since`` let harnesses cost individual operations.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Mapping

from repro.core.parameters import Parameters
from repro.core.strategies import Strategy
from repro.hr.differential import ClusteredRelation, HypotheticalRelation, SeparateFilesHR
from repro.resilience.faults import FaultProfile, FaultyDisk
from repro.resilience.policy import RESILIENCE_ERRORS, ResilienceConfig, ResilientDisk
from repro.storage.pager import BufferPool, CostMeter, SimulatedDisk
from repro.storage.tuples import Record, Schema
from repro.views.definition import AggregateView, JoinView, SelectProjectView
from repro.views.delta import DeltaSet
from repro.views.matview import AggregateStateStore, MaterializedView
from .executor import SecondaryIndex
from .relations import HashedRelation
from .transaction import Delete, Insert, Transaction, Update

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.maintenance.base import MaintenanceStrategy

__all__ = ["Database", "CatalogError", "ViewMaintenanceError"]

BaseRelation = ClusteredRelation | HashedRelation


class CatalogError(ValueError):
    """Invalid catalog operation (unknown names, bad combinations)."""


class ViewMaintenanceError(RuntimeError):
    """One or more views failed to absorb a committed transaction.

    Raised *after* the base relation mutation, index maintenance and
    write-back completed, so the transaction itself is durable; only
    the named views' stored copies are suspect.  The serving layer
    catches this to degrade the affected views and queue repairs.
    Only raised when :attr:`Database.isolate_view_faults` is on —
    without the resilience layer a view fault propagates immediately.
    """

    def __init__(self, failures: list[tuple[str, Exception]]) -> None:
        names = ", ".join(name for name, _ in failures)
        super().__init__(f"view maintenance failed for: {names}")
        self.failures = failures

    @property
    def view_names(self) -> list[str]:
        """The views whose maintenance raised."""
        return [name for name, _ in self.failures]


@contextmanager
def _null_phase():
    """Stand-in for :meth:`CostMeter.setup_phase` when charging workload."""
    yield


class Database:
    """A single-user simulated database instance."""

    def __init__(
        self,
        block_bytes: int = 4000,
        buffer_pages: int = 256,
        fanout: int = 200,
        cold_operations: bool = False,
        fault_profile: FaultProfile | None = None,
        resilience: ResilienceConfig | None = None,
    ) -> None:
        self.block_bytes = block_bytes
        self.fanout = fanout
        self.meter = CostMeter()
        #: The raw page store (faulty when a profile is installed).
        #: Faults start disarmed — callers arm after clean bootstrap.
        if fault_profile is not None and fault_profile.name != "none":
            self.storage_disk: SimulatedDisk = FaultyDisk(self.meter, fault_profile)
        else:
            self.storage_disk = SimulatedDisk(self.meter)
        self.fault_profile = fault_profile
        self.resilience_config = resilience
        if resilience is not None:
            # Detection is a prerequisite for the retry/breaker layer:
            # checksums must be verified on every read.
            self.storage_disk.verify_reads = True
            self.disk: Any = ResilientDisk(
                self.storage_disk,
                retry=resilience.retry,
                failure_threshold=resilience.failure_threshold,
                cooldown_ops=resilience.cooldown_ops,
                half_open_probes=resilience.half_open_probes,
            )
        else:
            self.disk = self.storage_disk
        self.pool = BufferPool(self.disk, capacity=buffer_pages)
        #: When True (set whenever a resilience config is installed),
        #: view-maintenance faults during apply_transaction are
        #: collected into :class:`ViewMaintenanceError` *after* the base
        #: mutation and write-back, instead of aborting mid-loop.
        self.isolate_view_faults = resilience is not None
        #: When True, the buffer pool is emptied before each
        #: transaction and each view query — matching the cost model's
        #: cold-cache assumption (every formula charges full I/O).
        self.cold_operations = cold_operations
        self.relations: dict[str, BaseRelation | HypotheticalRelation] = {}
        self.secondary_indexes: dict[tuple[str, str], SecondaryIndex] = {}
        self.views: dict[str, "MaintenanceStrategy"] = {}
        self._views_by_relation: dict[str, list[str]] = {}
        self._deferred_coordinators: dict[str, Any] = {}
        self.transactions_applied = 0
        self.queries_answered = 0
        #: Catalog specs captured for checkpointing (repro.durability):
        #: the create_relation / define_view arguments needed to rebuild
        #: this catalog from persistent state.
        self._relation_specs: dict[str, dict[str, Any]] = {}
        self._view_specs: dict[str, dict[str, Any]] = {}
        #: Write-ahead journal hook.  When set (and not suppressed), the
        #: engine calls ``journal.log(event, payload)`` *before* applying
        #: each state-changing operation.  ``repro.durability`` owns the
        #: serialization; the engine only names the events.
        self.journal: Any = None
        self._journal_suppressed = 0

    @classmethod
    def from_parameters(cls, params: Parameters, **kwargs: Any) -> "Database":
        """Build a database whose block size matches a parameter set."""
        kwargs.setdefault("block_bytes", params.B)
        kwargs.setdefault("fanout", max(3, int(params.fanout)))
        return cls(**kwargs)

    @property
    def faults(self) -> FaultyDisk | None:
        """The fault injector, when one is installed."""
        disk = self.storage_disk
        return disk if isinstance(disk, FaultyDisk) else None

    @property
    def resilient_disk(self) -> ResilientDisk | None:
        """The retry/breaker wrapper, when one is installed."""
        disk = self.disk
        return disk if isinstance(disk, ResilientDisk) else None

    def engine_config(self) -> dict[str, Any]:
        """The sizing arguments this engine was built with.

        What a recovery twin (or the durability manifest) needs to
        rebuild an identically-shaped engine; the fault/resilience
        stack is passed separately since it is runtime policy, not
        persistent state.
        """
        return {
            "block_bytes": self.block_bytes,
            "buffer_pages": self.pool.capacity,
            "fanout": self.fanout,
            "cold_operations": self.cold_operations,
        }

    # ------------------------------------------------------------------
    # catalog
    # ------------------------------------------------------------------
    def create_relation(
        self,
        schema: Schema,
        clustered_on: str,
        kind: str = "plain",
        records: Iterable[Record] | None = None,
        ad_buckets: int = 64,
        hash_buckets: int | None = None,
    ) -> BaseRelation | HypotheticalRelation:
        """Create (and optionally load) a base relation.

        ``kind`` selects the storage wrapper:

        * ``"plain"`` — clustered B+-tree (query modification, immediate)
        * ``"hypothetical"`` — B+-tree + combined AD file (deferred)
        * ``"separate"`` — B+-tree + separate A/D files (ablation)
        * ``"hashed"`` — clustered hash file (the join inner ``R2``)
        * ``"hashed_hypothetical"`` — hash file + AD file (deferred
          join views with inner-side updates)
        """
        if schema.name in self.relations:
            raise CatalogError(f"relation {schema.name!r} already exists")
        # Structure creation and the initial load are setup, not
        # workload: charge the setup bucket so the first query's
        # metered cost stays clean (the root-page flush of a fresh
        # B+-tree or hash directory is not workload I/O either).
        with self.meter.setup_phase():
            relation = self._build_relation(
                schema, clustered_on, kind, ad_buckets, hash_buckets
            )
            self.relations[schema.name] = relation
            loaded: list[Record] | None = None
            if records is not None:
                loaded = list(records)
                loader = relation.base if hasattr(relation, "base") else relation
                loader.bulk_load(loaded)
            self.pool.flush_all()
        self._relation_specs[schema.name] = {
            "clustered_on": clustered_on,
            "kind": kind,
            "ad_buckets": ad_buckets,
            "hash_buckets": hash_buckets,
        }
        self._journal(
            "create_relation",
            schema=schema,
            clustered_on=clustered_on,
            kind=kind,
            ad_buckets=ad_buckets,
            hash_buckets=hash_buckets,
            records=loaded,
        )
        return relation

    def _build_relation(
        self,
        schema: Schema,
        clustered_on: str,
        kind: str,
        ad_buckets: int,
        hash_buckets: int | None,
    ) -> BaseRelation | HypotheticalRelation:
        if kind in ("hashed", "hashed_hypothetical"):
            hashed = HashedRelation(
                schema, self.pool, clustered_on,
                block_bytes=self.block_bytes, buckets=hash_buckets,
            )
            if kind == "hashed_hypothetical":
                from repro.hr.hashed import HashedHypotheticalRelation

                relation: Any = HashedHypotheticalRelation(
                    hashed, ad_buckets=ad_buckets
                )
            else:
                relation = hashed
        else:
            base = ClusteredRelation(
                schema, self.pool, clustered_on,
                block_bytes=self.block_bytes, fanout=self.fanout,
            )
            if kind == "plain":
                relation = base
            elif kind == "hypothetical":
                relation = HypotheticalRelation(base, ad_buckets=ad_buckets)
            elif kind == "separate":
                relation = SeparateFilesHR(base, ad_buckets=ad_buckets)
            else:
                raise CatalogError(
                    f"unknown relation kind {kind!r}; expected plain, "
                    "hypothetical, separate or hashed"
                )
        return relation

    def create_secondary_index(self, relation_name: str, field: str) -> SecondaryIndex:
        """Build an in-memory secondary index on a plain relation."""
        base = self._base_of(relation_name)
        if not isinstance(base, ClusteredRelation):
            raise CatalogError("secondary indexes require a tree-clustered relation")
        index = SecondaryIndex(base, field)
        self.secondary_indexes[(relation_name, field)] = index
        return index

    def define_view(
        self,
        definition: SelectProjectView | JoinView | AggregateView,
        strategy: Strategy,
        plan: str | None = None,
        index_field: str | None = None,
        refresh_every: int = 10,
        setup_bucket: bool = True,
    ) -> "MaintenanceStrategy":
        """Register a view under one maintenance strategy.

        For materialized strategies the stored copy is built now from
        the current base content.  That materialization is charged to
        the meter's *setup bucket* (not workload counters) unless
        ``setup_bucket=False`` — migrations pass False because a
        rebuild there *is* workload cost the router must weigh.
        """
        if definition.name in self.views:
            raise CatalogError(f"view {definition.name!r} already exists")
        builder = self.meter.setup_phase if setup_bucket else _null_phase
        with builder():
            if isinstance(definition, SelectProjectView):
                impl = self._define_select_project(
                    definition, strategy, plan, index_field, refresh_every
                )
            elif isinstance(definition, JoinView):
                impl = self._define_join(definition, strategy)
            elif isinstance(definition, AggregateView):
                impl = self._define_aggregate(definition, strategy)
            else:
                raise CatalogError(
                    f"unsupported view definition {type(definition).__name__}"
                )
            if setup_bucket:
                self.pool.flush_all()
        self.views[definition.name] = impl
        source = definition.outer if isinstance(definition, JoinView) else definition.relation
        self._views_by_relation.setdefault(source, []).append(definition.name)
        if isinstance(definition, JoinView):
            # Inner-relation updates also affect the view (an extension
            # beyond the paper's R2-is-never-updated simplification).
            self._views_by_relation.setdefault(definition.inner, []).append(
                definition.name
            )
        if strategy is Strategy.DEFERRED:
            self._share_deferred_coordinator(source, impl)
            self._hook_coordinator(impl.coordinator)
        self._view_specs[definition.name] = {
            "definition": definition,
            "strategy": strategy,
            "plan": plan,
            "index_field": index_field,
            "refresh_every": refresh_every,
        }
        self._journal(
            "define_view",
            definition=definition,
            strategy=strategy.value,
            plan=plan,
            index_field=index_field,
            refresh_every=refresh_every,
        )
        return impl

    def _share_deferred_coordinator(self, relation_name: str, impl: Any) -> None:
        """All deferred views on one relation share a refresh coordinator.

        One view's refresh folds the AD file down, so siblings must be
        refreshed from the same AD read (Section 4's shared-refresh
        optimization — and a correctness requirement here).
        """
        from repro.maintenance.deferred import DeferredCoordinator

        coordinator = self._deferred_coordinators.get(relation_name)
        if coordinator is None:
            self._deferred_coordinators[relation_name] = impl.coordinator
        else:
            impl.join_coordinator(coordinator)

    # ------------------------------------------------------------------
    # workload surface
    # ------------------------------------------------------------------
    def apply_transaction(self, txn: Transaction) -> DeltaSet:
        """Execute a transaction and notify affected views.

        Returns the net delta (useful for assertions in tests).
        """
        relation = self.relations.get(txn.relation)
        if relation is None:
            raise CatalogError(f"unknown relation {txn.relation!r}")
        # Write-ahead: journal before touching any page, so a crash
        # mid-transaction replays the whole batch from the log.
        self._journal("txn", txn=txn)
        if self.cold_operations:
            self.pool.invalidate_all()
        delta = DeltaSet(txn.relation)
        for op in txn.operations:
            if isinstance(op, Insert):
                relation.insert(op.record)
                delta.add_insert(op.record)
                self._index_event(txn.relation, inserted=op.record)
            elif isinstance(op, Delete):
                old = relation.delete_by_key(op.key)
                delta.add_delete(old)
                self._index_event(txn.relation, deleted=old)
            elif isinstance(op, Update):
                old, new = relation.update_by_key(op.key, **op.changes)
                delta.add_update(old, new)
                self._index_event(txn.relation, deleted=old, inserted=new)
            else:  # pragma: no cover - exhaustive over Operation
                raise CatalogError(f"unknown operation {op!r}")
        view_failures: list[tuple[str, Exception]] = []
        for view_name in self._views_by_relation.get(txn.relation, ()):
            if self.isolate_view_faults:
                try:
                    self.views[view_name].on_transaction(txn, delta)
                except RESILIENCE_ERRORS as exc:
                    view_failures.append((view_name, exc))
            else:
                self.views[view_name].on_transaction(txn, delta)
        # Write-back: dirty pages accumulated by this transaction are
        # flushed once each, so a page touched several times in one
        # operation costs one write (the cost model's accounting).
        self.pool.flush_all()
        self.transactions_applied += 1
        if view_failures:
            # The base mutation is committed (journaled, applied,
            # flushed); only the named views' copies are suspect.
            raise ViewMaintenanceError(view_failures)
        return delta

    def query_view(self, name: str, lo: Any = None, hi: Any = None) -> Any:
        """Answer a view query under the view's strategy."""
        impl = self.views.get(name)
        if impl is None:
            raise CatalogError(f"unknown view {name!r}")
        if self.cold_operations:
            self.pool.invalidate_all()
        answer = impl.query(lo, hi)
        self.pool.flush_all()
        self.queries_answered += 1
        return answer

    def reset_meter(self) -> None:
        """Zero the cost counters (typically after setup/bulk load)."""
        self.pool.flush_all()
        self.meter.reset()

    # ------------------------------------------------------------------
    # catalog changes after definition (the serving layer's surface)
    # ------------------------------------------------------------------
    def views_on(self, relation_name: str) -> tuple[str, ...]:
        """Names of the views sourced from one relation."""
        return tuple(self._views_by_relation.get(relation_name, ()))

    def view_definition(self, name: str) -> Any:
        """The declarative definition a view was registered with."""
        impl = self.views.get(name)
        if impl is None:
            raise CatalogError(f"unknown view {name!r}")
        return impl.definition

    def deferred_coordinator(self, relation_name: str) -> Any:
        """The shared refresh coordinator of one relation's deferred
        views, or ``None`` when the relation has none.  The planner's
        public handle (:mod:`repro.maintenance.planner`)."""
        return self._deferred_coordinators.get(relation_name)

    def deferred_relations(self) -> tuple[str, ...]:
        """Relations that currently have at least one deferred view."""
        return tuple(
            name
            for name, coordinator in self._deferred_coordinators.items()
            if coordinator.views
        )

    def settle_relation(self, relation_name: str) -> None:
        """Fold a hypothetical relation's pending AD changes into its base.

        Query-modification plans read the *base* file, which lags the
        true relation while updates sit in the AD file — so a strategy
        migration (or any base-level read) must settle first.  When
        deferred views exist the fold goes through their shared
        coordinator so every sibling is refreshed from the same AD read
        (dropping the batch would corrupt them); otherwise the relation
        folds directly.  Settling charges the normal refresh I/O.
        """
        relation = self._base_of(relation_name)
        if not isinstance(relation, HypotheticalRelation):
            return
        if relation.ad_entry_count() == 0:
            return
        coordinator = self._deferred_coordinators.get(relation_name)
        if coordinator is not None and coordinator.views:
            coordinator.refresh_all()
        else:
            self._journal("net_install", relation=relation_name)
            relation.reset()
        self.pool.flush_all()

    def drop_view(self, name: str) -> None:
        """Remove a view and free its stored copy's pages.

        Deferred views are simply deregistered from their coordinator —
        the relation's AD backlog stays for the remaining siblings (or
        for :meth:`settle_relation`).  Page deallocation is a catalog
        operation and charges no I/O, like the paper's file drops.
        """
        impl = self.views.pop(name, None)
        if impl is None:
            raise CatalogError(f"unknown view {name!r}")
        self._view_specs.pop(name, None)
        self._journal("drop_view", view=name)
        for view_names in self._views_by_relation.values():
            while name in view_names:
                view_names.remove(name)
        if impl.strategy is Strategy.DEFERRED:
            coordinator = impl.coordinator
            coordinator.deregister(impl)
            for rel_name, shared in list(self._deferred_coordinators.items()):
                if shared is coordinator and not coordinator.views:
                    del self._deferred_coordinators[rel_name]
        matview = getattr(impl, "matview", None)
        if matview is not None:
            matview.tree.reset()
        store = getattr(impl, "store", None)
        if store is not None:
            store.free()

    def migrate_view(
        self,
        name: str,
        strategy: Strategy,
        plan: str | None = None,
        index_field: str | None = None,
        refresh_every: int = 10,
    ) -> "MaintenanceStrategy":
        """Re-register a view under a different maintenance strategy.

        The old implementation is dropped, the source relation settled
        (so a rebuild reads current data), and the view defined afresh.
        All I/O this incurs — the settle plus, for materialized
        targets, the bulk load of the new stored copy — stays on the
        meter: it *is* the migration's cost, which the adaptive router
        weighs against the steady-state win.
        """
        impl = self.views.get(name)
        if impl is None:
            raise CatalogError(f"unknown view {name!r}")
        if impl.strategy is strategy:
            return impl
        definition = impl.definition
        # One composite journal record; the drop/settle/define inside
        # are replayed as a unit by re-running migrate_view.
        self._journal(
            "migrate",
            view=name,
            strategy=strategy.value,
            plan=plan,
            index_field=index_field,
            refresh_every=refresh_every,
        )
        with self._journal_paused():
            self.drop_view(name)
            sources = [definition.outer if isinstance(definition, JoinView) else definition.relation]
            for source in sources:
                self.settle_relation(source)
            new_impl = self.define_view(
                definition, strategy,
                plan=plan, index_field=index_field, refresh_every=refresh_every,
                setup_bucket=False,
            )
        self.pool.flush_all()
        return new_impl

    def rebuild_view(self, name: str) -> "MaintenanceStrategy":
        """Rebuild one view's stored state from its base relation(s).

        The repair primitive for a damaged materialized copy: drop the
        view (page deallocation never *reads* the damaged pages), settle
        the source relation so the base reflects every pending change,
        and re-define the view under its original strategy and options.
        All I/O stays on the meter — repair cost is workload cost.

        Journaled as one composite ``rebuild_view`` event (like
        ``migrate``), so replaying the log reproduces the repair
        deterministically.
        """
        impl = self.views.get(name)
        if impl is None:
            raise CatalogError(f"unknown view {name!r}")
        spec = self._view_specs[name]
        definition = spec["definition"]
        strategy = spec["strategy"]
        plan = spec["plan"]
        index_field = spec["index_field"]
        refresh_every = spec["refresh_every"]
        self._journal("rebuild_view", view=name)
        with self._journal_paused():
            self.drop_view(name)
            sources = [definition.outer if isinstance(definition, JoinView) else definition.relation]
            for source in sources:
                self.settle_relation(source)
            new_impl = self.define_view(
                definition, strategy,
                plan=plan, index_field=index_field, refresh_every=refresh_every,
                setup_bucket=False,
            )
        self.pool.flush_all()
        return new_impl

    def restore_view(
        self,
        definition: SelectProjectView | JoinView | AggregateView,
        strategy: Strategy,
        plan: str | None = None,
        index_field: str | None = None,
        refresh_every: int = 10,
    ) -> "MaintenanceStrategy":
        """Re-create a view lost mid-composite-operation (repair path).

        A fault between a composite operation's drop and its re-define
        (e.g. mid-``migrate``) can leave the view absent from the
        catalog.  The composite journal record is already in the WAL and
        replays the whole operation, so this restore is deliberately
        *not* journaled — journaling it again would double-apply on
        replay.

        The source relation is settled first, exactly like
        :meth:`rebuild_view`: a freshly defined deferred view has no
        screening markers, so any AD entries still pending at restore
        time would otherwise never reach it — the bulk load must read a
        base that already contains them.
        """
        if definition.name in self.views:
            raise CatalogError(f"view {definition.name!r} already exists")
        with self._journal_paused():
            sources = [definition.outer if isinstance(definition, JoinView) else definition.relation]
            for source in sources:
                self.settle_relation(source)
            impl = self.define_view(
                definition, strategy,
                plan=plan, index_field=index_field, refresh_every=refresh_every,
                setup_bucket=False,
            )
        self.pool.flush_all()
        return impl

    # ------------------------------------------------------------------
    # durability hooks (repro.durability)
    # ------------------------------------------------------------------
    def attach_journal(self, journal: Any) -> None:
        """Arm write-ahead journaling: ``journal.log(event, payload)``
        is called before every state-changing operation.  Pass ``None``
        to detach (recovery replays with the journal detached)."""
        self.journal = journal
        if journal is not None:
            for impl in self.views.values():
                coordinator = getattr(impl, "coordinator", None)
                if coordinator is not None:
                    self._hook_coordinator(coordinator)

    def catalog_specs(self) -> dict[str, Any]:
        """The create_relation/define_view arguments of the live catalog
        (what a checkpoint needs to rebuild it)."""
        return {
            "relations": {
                name: dict(spec) for name, spec in self._relation_specs.items()
            },
            "views": {name: dict(spec) for name, spec in self._view_specs.items()},
            "secondary_indexes": sorted(self.secondary_indexes),
        }

    def _journal(self, event: str, **payload: Any) -> None:
        if self.journal is not None and not self._journal_suppressed:
            self.journal.log(event, payload)

    @contextmanager
    def _journal_paused(self) -> Any:
        self._journal_suppressed += 1
        try:
            yield
        finally:
            self._journal_suppressed -= 1

    def _hook_coordinator(self, coordinator: Any) -> None:
        """Journal coordinator folds (query-triggered deferred refresh)."""
        relation_name = coordinator.relation.schema.name

        def on_refresh() -> None:
            self._journal("net_install", relation=relation_name)

        coordinator.on_refresh = on_refresh

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _base_of(self, relation_name: str) -> Any:
        relation = self.relations.get(relation_name)
        if relation is None:
            raise CatalogError(f"unknown relation {relation_name!r}")
        return relation

    def _plain_base(self, relation_name: str) -> ClusteredRelation:
        relation = self._base_of(relation_name)
        if isinstance(relation, HypotheticalRelation):
            return relation.base
        if isinstance(relation, ClusteredRelation):
            return relation
        raise CatalogError(
            f"relation {relation_name!r} is not tree-clustered"
        )

    def _records_per_page(self, schema: Schema) -> int:
        return schema.records_per_page(self.block_bytes)

    def _snapshot(self, relation_name: str) -> list[Record]:
        relation = self._base_of(relation_name)
        if isinstance(relation, HypotheticalRelation):
            return relation.base.records_snapshot()
        return relation.records_snapshot()

    def _index_event(
        self,
        relation_name: str,
        inserted: Record | None = None,
        deleted: Record | None = None,
    ) -> None:
        for (rel, _), index in self.secondary_indexes.items():
            if rel != relation_name:
                continue
            if deleted is not None:
                index.on_delete(deleted)
            if inserted is not None:
                index.on_insert(inserted)

    def _define_select_project(
        self,
        definition: SelectProjectView,
        strategy: Strategy,
        plan: str | None,
        index_field: str | None,
        refresh_every: int = 10,
    ) -> "MaintenanceStrategy":
        from repro.maintenance.deferred import DeferredSelectProject
        from repro.maintenance.hybrid import HybridSelectProject
        from repro.maintenance.immediate import ImmediateSelectProject
        from repro.maintenance.query_modification import QueryModificationSelectProject
        from repro.maintenance.snapshot import (
            RecomputeOnChangeSelectProject,
            SnapshotSelectProject,
        )

        relation = self._base_of(definition.relation)
        if strategy.is_query_modification():
            chosen_plan = plan or {
                Strategy.QM_CLUSTERED: "clustered",
                Strategy.QM_UNCLUSTERED: "unclustered",
                Strategy.QM_SEQUENTIAL: "sequential",
            }.get(strategy, "clustered")
            secondary = None
            if chosen_plan == "unclustered":
                field = index_field or definition.view_key
                secondary = self.secondary_indexes.get((definition.relation, field))
                if secondary is None:
                    secondary = self.create_secondary_index(definition.relation, field)
            return QueryModificationSelectProject(
                definition, self._plain_base(definition.relation),
                plan=chosen_plan, secondary_index=secondary,
            )
        # Model 1 views project half the attributes: view tuples are
        # half the base tuple size, doubling the blocking factor (the
        # paper's fb/2 view size).
        schema = self._plain_base(definition.relation).schema
        matview = self._new_matview(
            definition.name, definition.view_key, max(1, schema.tuple_bytes // 2)
        )
        matview.bulk_load(definition.evaluate(self._snapshot(definition.relation)))
        if strategy is Strategy.IMMEDIATE:
            return ImmediateSelectProject(
                definition, self._plain_base(definition.relation), matview
            )
        if strategy is Strategy.DEFERRED:
            if not isinstance(relation, HypotheticalRelation):
                raise CatalogError(
                    "deferred views need a hypothetical relation; create "
                    f"{definition.relation!r} with kind='hypothetical'"
                )
            return DeferredSelectProject(definition, relation, matview)
        if strategy is Strategy.SNAPSHOT:
            return SnapshotSelectProject(
                definition, self._plain_base(definition.relation), matview,
                refresh_every=refresh_every,
            )
        if strategy is Strategy.BC_RECOMPUTE:
            return RecomputeOnChangeSelectProject(
                definition, self._plain_base(definition.relation), matview
            )
        if strategy is Strategy.HYBRID:
            params = Parameters.from_mapping(
                {"N": max(1, len(self._snapshot(definition.relation))),
                 "B": self.block_bytes,
                 "f": definition.predicate.selectivity_hint() or 0.1}
            )
            return HybridSelectProject(
                definition, self._plain_base(definition.relation), matview, params
            )
        raise CatalogError(f"unsupported strategy {strategy} for select-project views")

    def _define_join(
        self, definition: JoinView, strategy: Strategy
    ) -> "MaintenanceStrategy":
        from repro.maintenance.deferred import DeferredJoin
        from repro.maintenance.immediate import ImmediateJoin
        from repro.maintenance.query_modification import QueryModificationJoin

        from repro.hr.hashed import HashedHypotheticalRelation

        outer = self._base_of(definition.outer)
        inner = self._base_of(definition.inner)
        if not isinstance(inner, (HashedRelation, HashedHypotheticalRelation)):
            raise CatalogError(
                f"join inner relation {definition.inner!r} must be hashed "
                "(create it with kind='hashed' or 'hashed_hypothetical')"
            )
        if (
            isinstance(inner, HashedHypotheticalRelation)
            and strategy is not Strategy.DEFERRED
        ):
            raise CatalogError(
                "a hashed_hypothetical inner relation is only usable by "
                "deferred join views; use kind='hashed' for "
                f"{strategy.label} maintenance"
            )
        if strategy is Strategy.QM_LOOPJOIN or strategy.is_query_modification():
            return QueryModificationJoin(
                definition, self._plain_base(definition.outer), inner
            )
        # Model 2 projects half of each side's attributes: result
        # tuples are the same S bytes as base tuples (the paper's fb
        # view size).
        outer_schema = self._plain_base(definition.outer).schema
        join_tuple_bytes = (outer_schema.tuple_bytes + inner.schema.tuple_bytes) // 2
        matview = self._new_matview(
            definition.name, definition.view_key, max(1, join_tuple_bytes)
        )
        matview.bulk_load(
            definition.evaluate(
                self._snapshot(definition.outer), inner.records_snapshot()
            )
        )
        if strategy is Strategy.IMMEDIATE:
            return ImmediateJoin(
                definition, self._plain_base(definition.outer), inner, matview
            )
        if strategy is Strategy.DEFERRED:
            if not isinstance(outer, HypotheticalRelation):
                raise CatalogError(
                    "deferred views need a hypothetical outer relation; create "
                    f"{definition.outer!r} with kind='hypothetical'"
                )
            return DeferredJoin(definition, outer, inner, matview)
        raise CatalogError(f"unsupported strategy {strategy} for join views")

    def _define_aggregate(
        self, definition: AggregateView, strategy: Strategy
    ) -> "MaintenanceStrategy":
        from repro.maintenance.deferred import DeferredAggregate
        from repro.maintenance.immediate import ImmediateAggregate
        from repro.maintenance.query_modification import QueryModificationAggregate

        relation = self._base_of(definition.relation)
        if strategy.is_query_modification():
            return QueryModificationAggregate(
                definition, self._plain_base(definition.relation)
            )
        store = AggregateStateStore(definition.name, self.pool, definition.function())
        function = definition.function()
        state = function.initial_state()
        for record in self._snapshot(definition.relation):
            if definition.predicate.matches(record):
                function.insert(state, record[definition.field])
        store.write_state(state)
        if strategy is Strategy.IMMEDIATE:
            return ImmediateAggregate(
                definition, self._plain_base(definition.relation), store
            )
        if strategy is Strategy.DEFERRED:
            if not isinstance(relation, HypotheticalRelation):
                raise CatalogError(
                    "deferred views need a hypothetical relation; create "
                    f"{definition.relation!r} with kind='hypothetical'"
                )
            return DeferredAggregate(definition, relation, store)
        raise CatalogError(f"unsupported strategy {strategy} for aggregate views")

    def _new_matview(
        self, name: str, view_key: str, tuple_bytes: int
    ) -> MaterializedView:
        records_per_page = max(1, self.block_bytes // max(1, tuple_bytes))
        return MaterializedView(
            name, self.pool, view_key,
            records_per_page=records_per_page, fanout=self.fanout,
        )
