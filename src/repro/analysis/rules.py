"""The project rule catalog for ``repro-lint``.

Each rule mechanizes one convention the stack's correctness depends on
(see ``docs/analysis.md`` for the catalog with examples):

* ``async-blocking`` — the gateway's event loop must never block;
* ``lock-discipline`` — multi-lock acquisition goes through
  ``LockManager.acquire``; plain mutexes are leaves of the hierarchy;
* ``deadline-threading`` — shard RPCs must carry an explicit timeout;
* ``seeded-determinism`` — chaos/fault/experiment code draws only from
  injected ``random.Random(seed)`` instances;
* ``snapshot-iteration`` — dict attributes shared across threads are
  snapshotted (``list(...)``) before iteration;
* ``batch-hot-path`` — the engine's hot modules stay batch-native (no
  per-record kernels over relation/delta iterators).

Rules are deliberately syntactic: they run on one file at a time with
no import resolution, so every check is a conservative pattern over
the AST.  When a rule and reality disagree, either the code is wrong
(fix it) or the rule is too coarse (refine it here) — per-line pragmas
exist for the genuinely unfixable remainder and are forbidden in the
concurrency and cluster packages.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Sequence

from .framework import Finding, LintContext, Rule

__all__ = [
    "AsyncBlockingRule",
    "LockDisciplineRule",
    "DeadlineThreadingRule",
    "SeededDeterminismRule",
    "SnapshotIterationRule",
    "BatchHotPathRule",
    "ALL_RULES",
    "default_rules",
]


def _unparse(node: ast.AST) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on parse output
        return "<expr>"


def _terminal_name(node: ast.expr) -> str:
    """Last identifier of a Name/Attribute chain (else '')."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


_LOCKY_NAME = re.compile(r"lock|mutex|cond", re.IGNORECASE)


def _classify_with_item(expr: ast.expr) -> tuple[str, str] | None:
    """Classify one ``with`` context expression as a lock hold.

    Returns ``(kind, receiver)`` with kind ``"rw"`` (``X.read()`` /
    ``X.write()``), ``"mgr"`` (``X.acquire(...)``, the LockManager
    API), or ``"plain"`` (a bare lock-named object), else ``None``.
    """
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute):
        if expr.func.attr in ("read", "write"):
            return ("rw", _unparse(expr.func.value))
        if expr.func.attr == "acquire":
            return ("mgr", _unparse(expr.func.value))
        return None
    if isinstance(expr, (ast.Name, ast.Attribute)):
        if _LOCKY_NAME.search(_terminal_name(expr)):
            return ("plain", _unparse(expr))
    return None


def _functions(tree: ast.Module) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


# ----------------------------------------------------------------------
# async-blocking
# ----------------------------------------------------------------------
class AsyncBlockingRule(Rule):
    """No blocking work on the gateway's event loop.

    Inside ``async def`` bodies in ``repro.gateway``: no ``time.sleep``,
    no ``open``, no synchronous lock acquisition (an un-awaited
    ``.acquire()`` / ``.acquire_read()`` / ``.acquire_write()`` or a
    plain ``with X.read():``), and no direct backend/engine calls
    (anything on a ``backend`` receiver) — blocking work must be routed
    through ``run_in_executor``.  Code inside a nested synchronous
    ``def`` is exempt: that is exactly the executor-thunk pattern.
    """

    name = "async-blocking"
    description = (
        "blocking call (sleep/file IO/lock acquire/backend work) inside an "
        "async def; route it through run_in_executor"
    )
    scopes = ("repro.gateway",)

    def check(self, ctx: LintContext) -> list[Finding]:
        findings: list[Finding] = []
        for func in _functions(ctx.tree):
            if isinstance(func, ast.AsyncFunctionDef):
                self._check_async(ctx, func, findings)
        return findings

    def _check_async(
        self,
        ctx: LintContext,
        func: ast.AsyncFunctionDef,
        findings: list[Finding],
    ) -> None:
        awaited: set[int] = set()
        executor_args: set[int] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Await):
                awaited.add(id(node.value))
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "run_in_executor"
            ):
                for arg in node.args:
                    for sub in ast.walk(arg):
                        executor_args.add(id(sub))

        for node in self._loop_nodes(func):
            if id(node) in executor_args:
                continue
            if isinstance(node, ast.Call):
                self._check_call(ctx, node, awaited, findings)
            elif isinstance(node, ast.With):
                for item in node.items:
                    kind = _classify_with_item(item.context_expr)
                    if kind is not None and kind[0] in ("rw", "mgr"):
                        findings.append(self.finding(
                            ctx, item.context_expr,
                            f"synchronous lock hold "
                            f"`with {_unparse(item.context_expr)}` inside "
                            f"async def {node_name(node, ctx)}; it blocks the "
                            f"event loop",
                        ))

    def _loop_nodes(self, func: ast.AsyncFunctionDef) -> Iterator[ast.AST]:
        """Walk the async body, skipping nested synchronous functions."""
        stack: list[ast.AST] = list(func.body)
        while stack:
            node = stack.pop()
            if isinstance(node, ast.FunctionDef):
                continue  # executor thunks run off-loop by construction
            yield node
            stack.extend(ast.iter_child_nodes(node))

    def _check_call(
        self,
        ctx: LintContext,
        node: ast.Call,
        awaited: set[int],
        findings: list[Finding],
    ) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "sleep"
            and isinstance(func.value, ast.Name)
            and func.value.id == "time"
        ):
            findings.append(self.finding(
                ctx, node, "time.sleep() on the event loop; use asyncio.sleep"
            ))
            return
        if isinstance(func, ast.Name) and func.id == "open":
            findings.append(self.finding(
                ctx, node, "blocking file open() on the event loop"
            ))
            return
        if isinstance(func, ast.Attribute) and func.attr in (
            "acquire", "acquire_read", "acquire_write",
        ):
            if id(node) not in awaited:
                findings.append(self.finding(
                    ctx, node,
                    f"synchronous `{_unparse(func)}()` on the event loop",
                ))
            return
        if isinstance(func, ast.Attribute):
            receiver_names = {
                _terminal_name(part)
                for part in ast.walk(func.value)
                if isinstance(part, (ast.Name, ast.Attribute))
            }
            if "backend" in receiver_names:
                findings.append(self.finding(
                    ctx, node,
                    f"direct backend call `{_unparse(node.func)}` inside an "
                    f"async def; engine work belongs on a worker thread or "
                    f"run_in_executor",
                ))


def node_name(node: ast.AST, ctx: LintContext) -> str:
    return getattr(node, "name", "<anonymous>")


# ----------------------------------------------------------------------
# lock-discipline
# ----------------------------------------------------------------------
class LockDisciplineRule(Rule):
    """The lock hierarchy is world RW → LockManager.acquire → mutexes.

    Two patterns violate it (per function, syntactically):

    * acquiring *any* reader-writer lock (``with X.read()``, ``with
      X.write()``, ``LockManager.acquire``, or a direct
      ``acquire_read``/``acquire_write`` call) while a plain mutex is
      held — mutexes are leaves; a thread that sleeps on an RWLock
      while pinning a mutex invites deadlock;
    * nesting ``with A.read()/write()`` inside ``with B.read()/write()``
      for distinct ``A``/``B`` — multi-lock acquisition must go through
      ``LockManager.acquire``'s canonical sorted order.

    Re-entrant holds of the *same* receiver are allowed (RWLock write
    is re-entrant and read-under-write is a documented no-op).
    """

    name = "lock-discipline"
    description = (
        "nested RWLock acquisition outside LockManager.acquire, or an "
        "RWLock taken while holding a plain mutex"
    )
    scopes = ("repro",)
    excludes = ("repro.concurrency.locks", "repro.analysis")

    def check(self, ctx: LintContext) -> list[Finding]:
        findings: list[Finding] = []
        for func in _functions(ctx.tree):
            self._walk(ctx, func.body, [], findings)
        return findings

    def _walk(
        self,
        ctx: LintContext,
        body: Sequence[ast.stmt],
        held: list[tuple[str, str]],
        findings: list[Finding],
    ) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._walk(ctx, stmt.body, [], findings)
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                entered: list[tuple[str, str]] = []
                for item in stmt.items:
                    kind = _classify_with_item(item.context_expr)
                    if kind is None:
                        continue
                    self._check_entry(ctx, item.context_expr, kind, held + entered,
                                      findings)
                    entered.append(kind)
                self._walk(ctx, stmt.body, held + entered, findings)
                continue
            for node in ast.walk(stmt):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("acquire_read", "acquire_write")
                ):
                    self._check_entry(
                        ctx, node, ("rw", _unparse(node.func.value)), held,
                        findings,
                    )
            for child_body in _nested_bodies(stmt):
                self._walk(ctx, child_body, held, findings)

    def _check_entry(
        self,
        ctx: LintContext,
        node: ast.AST,
        entry: tuple[str, str],
        held: list[tuple[str, str]],
        findings: list[Finding],
    ) -> None:
        kind, receiver = entry
        if kind not in ("rw", "mgr"):
            return
        plain = next((h for h in held if h[0] == "plain"), None)
        if plain is not None:
            findings.append(self.finding(
                ctx, node,
                f"RWLock acquisition on `{receiver}` while holding plain "
                f"lock `{plain[1]}`; mutexes are leaves of the lock "
                f"hierarchy",
            ))
            return
        if kind == "rw":
            other = next(
                (h for h in held if h[0] == "rw" and h[1] != receiver), None
            )
            if other is not None:
                findings.append(self.finding(
                    ctx, node,
                    f"nested RWLock acquisition (`{other[1]}` then "
                    f"`{receiver}`) outside LockManager.acquire; multi-lock "
                    f"sets must use the canonical sorted order",
                ))


def _nested_bodies(stmt: ast.stmt) -> Iterator[Sequence[ast.stmt]]:
    """Statement bodies nested under control flow (not with/def)."""
    for field in ("body", "orelse", "finalbody"):
        body = getattr(stmt, field, None)
        if body and not isinstance(stmt, (ast.With, ast.AsyncWith,
                                          ast.FunctionDef, ast.AsyncFunctionDef)):
            yield body
    for handler in getattr(stmt, "handlers", ()):
        yield handler.body


# ----------------------------------------------------------------------
# deadline-threading
# ----------------------------------------------------------------------
class DeadlineThreadingRule(Rule):
    """Shard RPCs carry an explicit deadline.

    In ``repro.cluster`` and ``repro.gateway``, any ``X.call("op", ...)``
    or ``X.call_primary("op", ...)`` — recognized by the string-literal
    op name — must pass ``timeout=<expr>`` where the expression is not
    the literal ``None``.  Omitting it silently falls back to the
    client's construction-time default, which is how a gateway deadline
    stops propagating at the first hop that forgot to thread it.
    """

    name = "deadline-threading"
    description = (
        "shard RPC without an explicit timeout=<deadline expression>"
    )
    scopes = ("repro.cluster", "repro.gateway")
    excludes = ("repro.cluster.rpc",)

    _METHODS = ("call", "call_primary")

    def check(self, ctx: LintContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self._METHODS
            ):
                continue
            if not (
                node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                continue  # not the shard RPC signature
            op = node.args[0].value
            timeout = next(
                (kw for kw in node.keywords if kw.arg == "timeout"), None
            )
            if timeout is None:
                findings.append(self.finding(
                    ctx, node,
                    f"RPC `{_unparse(node.func)}({op!r}, ...)` omits "
                    f"timeout=; thread the caller's deadline through",
                ))
            elif (
                isinstance(timeout.value, ast.Constant)
                and timeout.value.value is None
            ):
                findings.append(self.finding(
                    ctx, node,
                    f"RPC `{_unparse(node.func)}({op!r}, ...)` hardcodes "
                    f"timeout=None; pass a deadline expression",
                ))
        return findings


# ----------------------------------------------------------------------
# seeded-determinism
# ----------------------------------------------------------------------
class SeededDeterminismRule(Rule):
    """Chaos, fault and experiment code must be replayable from a seed.

    In the scoped packages: no module-level ``random.*`` calls (the
    shared global RNG makes schedules irreproducible), no unseeded
    ``random.Random()``, no ``from random import choice``-style imports
    of RNG functions, and no ``time.time()``-derived seeds.  RNGs are
    injected as ``random.Random(seed)``.
    """

    name = "seeded-determinism"
    description = (
        "module-level random.* / unseeded Random() / wall-clock seed in "
        "chaos, fault or experiment code"
    )
    scopes = (
        "repro.cluster.chaos",
        "repro.cluster.harness",
        "repro.durability.faults",
        "repro.resilience",
        "repro.experiments",
    )

    _ALLOWED_ATTRS = ("Random", "SystemRandom")

    def check(self, ctx: LintContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                bad = [
                    alias.name for alias in node.names
                    if alias.name not in self._ALLOWED_ATTRS
                ]
                if bad:
                    findings.append(self.finding(
                        ctx, node,
                        f"importing module-level RNG function(s) "
                        f"{', '.join(bad)} from random; inject a "
                        f"random.Random(seed) instead",
                    ))
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "random"
            ):
                if func.attr not in self._ALLOWED_ATTRS:
                    findings.append(self.finding(
                        ctx, node,
                        f"module-level random.{func.attr}() draws from the "
                        f"shared global RNG; inject a random.Random(seed)",
                    ))
                    continue
                if func.attr == "Random":
                    self._check_seed(ctx, node, findings)
            elif isinstance(func, ast.Name) and func.id == "Random":
                self._check_seed(ctx, node, findings)
            elif isinstance(func, ast.Attribute) and func.attr == "seed":
                if self._wall_clock_arg(node) or not (node.args or node.keywords):
                    findings.append(self.finding(
                        ctx, node,
                        "re-seeding from the wall clock (or entropy) breaks "
                        "replay; seeds must be explicit",
                    ))
        return findings

    def _check_seed(
        self, ctx: LintContext, node: ast.Call, findings: list[Finding]
    ) -> None:
        if not node.args and not node.keywords:
            findings.append(self.finding(
                ctx, node,
                "unseeded Random() is entropy-seeded and irreproducible; "
                "pass an explicit seed",
            ))
        elif self._wall_clock_arg(node):
            findings.append(self.finding(
                ctx, node,
                "wall-clock-seeded Random(time.time()) is irreproducible; "
                "pass an explicit seed",
            ))

    @staticmethod
    def _wall_clock_arg(node: ast.Call) -> bool:
        seeds = list(node.args) + [kw.value for kw in node.keywords]
        for arg in seeds:
            for sub in ast.walk(arg):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in ("time", "time_ns", "monotonic")
                    and isinstance(sub.func.value, ast.Name)
                    and sub.func.value.id == "time"
                ):
                    return True
        return False


# ----------------------------------------------------------------------
# snapshot-iteration
# ----------------------------------------------------------------------
_MUTATORS = frozenset({
    "pop", "popitem", "clear", "update", "setdefault",
    "append", "extend", "insert", "remove", "add", "discard",
})


class SnapshotIterationRule(Rule):
    """Iterate shared dict attributes over a snapshot, not live.

    The SimulatedDisk race class: method A iterates ``self._x`` (or
    ``self._x.items()``) while method B — on another thread — mutates
    it, and the iteration dies with "dictionary changed size during
    iteration" (or silently skips entries).  The rule fires, in files
    that import ``threading``, on any bare ``for … in self._x`` /
    comprehension over ``self._x`` (``.items()/.keys()/.values()``
    included) where a *different* method of the same class mutates
    ``self._x`` in place, unless the iteration already sits under a
    lock hold.  Rebinding (``self._x = …``) is not in-place mutation —
    an iterator over the old object is unaffected — and wrapping the
    iterable in ``list()``/``tuple()``/``sorted()`` snapshots it.
    """

    name = "snapshot-iteration"
    description = (
        "bare iteration over a self attribute mutated by another method "
        "of a threaded class; snapshot with list(...) first"
    )
    scopes = ("repro",)
    excludes = ("repro.analysis",)

    def check(self, ctx: LintContext) -> list[Finding]:
        if not self._imports_threading(ctx.tree):
            return []
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                self._check_class(ctx, node, findings)
        return findings

    @staticmethod
    def _imports_threading(tree: ast.Module) -> bool:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                if any(alias.name == "threading" for alias in node.names):
                    return True
            elif isinstance(node, ast.ImportFrom):
                if node.module == "threading":
                    return True
        return False

    def _check_class(
        self, ctx: LintContext, cls: ast.ClassDef, findings: list[Finding]
    ) -> None:
        methods = [
            stmt for stmt in cls.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        mutated: dict[str, set[str]] = {}
        for method in methods:
            for attr in self._mutated_attrs(method):
                mutated.setdefault(attr, set()).add(method.name)
        if not mutated:
            return
        for method in methods:
            for attr, node, protected in self._iterations(method):
                if protected:
                    continue
                others = mutated.get(attr, set()) - {method.name}
                if others:
                    verb = "mutates" if len(others) == 1 else "mutate"
                    findings.append(self.finding(
                        ctx, node,
                        f"`{cls.name}.{method.name}` iterates `self.{attr}` "
                        f"live while {self._describe(others)} {verb} it "
                        f"in place; snapshot with list(...) first",
                    ))

    @staticmethod
    def _describe(methods: set[str]) -> str:
        names = sorted(methods)
        if len(names) == 1:
            return f"`{names[0]}`"
        return "`" + "`, `".join(names[:-1]) + f"` and `{names[-1]}`"

    @staticmethod
    def _self_attr(node: ast.AST) -> str | None:
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr
        return None

    def _mutated_attrs(
        self, method: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> set[str]:
        attrs: set[str] = set()
        for node in ast.walk(method):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Subscript):
                        attr = self._self_attr(target.value)
                        if attr is not None:
                            attrs.add(attr)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, ast.Subscript):
                        attr = self._self_attr(target.value)
                        if attr is not None:
                            attrs.add(attr)
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATORS
            ):
                attr = self._self_attr(node.func.value)
                if attr is not None:
                    attrs.add(attr)
        return attrs

    def _iterations(
        self, method: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[tuple[str, ast.AST, bool]]:
        """Yield (attr, node, lock_protected) for each bare iteration."""
        protected_ids = self._lock_protected_nodes(method)
        for node in ast.walk(method):
            iters: list[tuple[ast.expr, ast.AST]] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append((node.iter, node))
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for gen in node.generators:
                    iters.append((gen.iter, node))
            for expr, at in iters:
                attr = self._iterated_attr(expr)
                if attr is not None:
                    yield attr, at, id(at) in protected_ids

    def _iterated_attr(self, expr: ast.expr) -> str | None:
        attr = self._self_attr(expr)
        if attr is not None:
            return attr
        if (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and expr.func.attr in ("items", "keys", "values")
            and not expr.args
        ):
            return self._self_attr(expr.func.value)
        return None

    def _lock_protected_nodes(
        self, method: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> set[int]:
        """ids of nodes syntactically under a lock-holding ``with``."""
        protected: set[int] = set()

        def visit(node: ast.AST, under_lock: bool) -> None:
            if under_lock:
                protected.add(id(node))
            lock_here = under_lock
            if isinstance(node, (ast.With, ast.AsyncWith)):
                if any(
                    _classify_with_item(item.context_expr) is not None
                    for item in node.items
                ):
                    lock_here = True
            for child in ast.iter_child_nodes(node):
                visit(child, lock_here)

        visit(method, False)
        return protected


class BatchHotPathRule(Rule):
    """Keep the engine hot path batch-native.

    The vectorization work (columnar batches, selection vectors) moved
    the per-tuple kernels — predicate screening, net-change toggling,
    delta projection — into batch methods.  This rule guards against
    regressions: in the hot modules it flags any ``for`` loop or
    comprehension that iterates a relation/delta source (``scan*``,
    ``range_scan``, ``.inserted``/``.deleted``) *and* does per-record
    kernel work in its body (``matches``/``project``/``combine``/
    ``screen``/``_unwrap`` calls, or ``Record``/``ViewTuple``
    construction).  Bookkeeping loops (folding deltas into base files,
    merging sets) iterate the same sources without per-record kernel
    calls and stay clean; the tuple-at-a-time reference formulations
    live in ``repro.maintenance.reference``, outside this rule's scope.
    """

    name = "batch-hot-path"
    description = (
        "per-record loop over a relation/delta iterator doing per-tuple "
        "kernel work in a hot module; use the batch kernels "
        "(matches_batch / screen_batch / _net_from_entries)"
    )
    scopes = ("repro.views.delta", "repro.maintenance.screening", "repro.hr")

    _SCAN_CALLS = frozenset(
        {"scan", "scan_all", "scan_logical", "range_scan", "scan_range"}
    )
    _DELTA_ATTRS = frozenset({"inserted", "deleted"})
    _WORK_CALLS = frozenset({"matches", "project", "combine", "screen", "_unwrap"})
    _WORK_CTORS = frozenset({"Record", "ViewTuple"})

    def check(self, ctx: LintContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            for iter_expr, body, anchor in self._loops(node):
                source = self._record_source(iter_expr)
                if source is None:
                    continue
                work = self._per_record_work(body)
                if work is None:
                    continue
                findings.append(
                    self.finding(
                        ctx,
                        anchor,
                        f"per-record loop over {source} calls {work} per tuple; "
                        "route this through the batch kernel",
                    )
                )
        return findings

    @staticmethod
    def _loops(
        node: ast.AST,
    ) -> Iterator[tuple[ast.expr, list[ast.AST], ast.AST]]:
        """Yield (iterable, body nodes, anchor) for loop-shaped nodes."""
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node.iter, [*node.body, *node.orelse], node
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            body: list[ast.AST] = [node.elt]
            for gen in node.generators:
                body.extend(gen.ifs)
            for gen in node.generators:
                yield gen.iter, body, node
        elif isinstance(node, ast.DictComp):
            body = [node.key, node.value]
            for gen in node.generators:
                body.extend(gen.ifs)
            for gen in node.generators:
                yield gen.iter, body, node

    def _record_source(self, iter_expr: ast.expr) -> str | None:
        """Name of the relation/delta source iterated, if any."""
        for sub in ast.walk(iter_expr):
            if isinstance(sub, ast.Call):
                name = _terminal_name(sub.func)
                if name in self._SCAN_CALLS:
                    return f"{name}()"
            elif isinstance(sub, ast.Attribute) and sub.attr in self._DELTA_ATTRS:
                return f".{sub.attr}"
        return None

    def _per_record_work(self, body: Sequence[ast.AST]) -> str | None:
        """Name of the per-tuple kernel call in the loop body, if any."""
        for stmt in body:
            for sub in ast.walk(stmt):
                if not isinstance(sub, ast.Call):
                    continue
                if (
                    isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in self._WORK_CALLS
                ):
                    return f"{sub.func.attr}()"
                if isinstance(sub.func, ast.Name) and sub.func.id in self._WORK_CTORS:
                    return f"{sub.func.id}()"
        return None


ALL_RULES: tuple[type[Rule], ...] = (
    AsyncBlockingRule,
    LockDisciplineRule,
    DeadlineThreadingRule,
    SeededDeterminismRule,
    SnapshotIterationRule,
    BatchHotPathRule,
)


def default_rules(names: Sequence[str] | None = None) -> list[Rule]:
    """Instantiate the catalog, optionally filtered to ``names``."""
    rules = [cls() for cls in ALL_RULES]
    if names is None:
        return rules
    by_name = {rule.name: rule for rule in rules}
    unknown = [name for name in names if name not in by_name]
    if unknown:
        raise ValueError(
            f"unknown rule(s): {', '.join(unknown)}; "
            f"known: {', '.join(sorted(by_name))}"
        )
    return [by_name[name] for name in names]
