"""Static and dynamic correctness tooling for the repro stack.

The serving stack rests on conventions that code review alone cannot
police: multi-lock acquisition must go through ``LockManager.acquire``
in canonical order, deadlines must be threaded through every
gateway → router → shard hop, chaos and experiment code must draw from
seeded ``random.Random`` instances, the asyncio gateway must never run
blocking engine work on its event loop, and dict attributes shared
across threads must be snapshotted before iteration.  ``repro.analysis``
turns each convention into a machine-checked invariant:

* :mod:`repro.analysis.framework` — an AST lint framework (stdlib
  ``ast`` only) with per-line ``# repro-lint: disable=<rule>`` pragmas
  and a committed-findings baseline;
* :mod:`repro.analysis.rules` — the project rule catalog
  (``async-blocking``, ``lock-discipline``, ``deadline-threading``,
  ``seeded-determinism``, ``snapshot-iteration``);
* :mod:`repro.analysis.lockorder` — a dynamic lock-order recorder that
  instruments :class:`~repro.concurrency.locks.RWLock` acquisitions
  into a global lock-order graph and reports cycles (potential
  deadlocks) with both acquisition stacks;
* :mod:`repro.analysis.cli` — the ``repro-lint`` command.

See ``docs/analysis.md`` for the rule catalog and pragma syntax.
"""

from .framework import (
    Finding,
    LintContext,
    Rule,
    collect_pragmas,
    lint_file,
    lint_paths,
    module_name_for,
)
from .lockorder import LockOrderRecorder, recording
from .rules import ALL_RULES, default_rules

__all__ = [
    "Finding",
    "LintContext",
    "Rule",
    "collect_pragmas",
    "lint_file",
    "lint_paths",
    "module_name_for",
    "LockOrderRecorder",
    "recording",
    "ALL_RULES",
    "default_rules",
]
