"""Dynamic lock-order recording and deadlock-cycle detection.

The static ``lock-discipline`` rule sees one function at a time; the
recorder sees what actually happened.  When installed (via
:func:`repro.concurrency.locks.set_lock_observer` — a single ``is not
None`` check on the acquisition path, zero overhead when off), every
successful :class:`~repro.concurrency.locks.RWLock` acquisition is
reported here.  If the acquiring thread already holds other locks, each
``held → new`` pair becomes an edge in a global *lock-order graph*,
recorded with both acquisition stacks.

A cycle in that graph is a potential deadlock: some thread acquires
``A`` then ``B`` while another acquires ``B`` then ``A``; whether the
interleaving has bitten yet is luck.  ``LockManager.acquire``'s
canonical sorted order exists precisely to keep this graph acyclic —
the recorder is the machine check that it stays that way across the
whole test suite (enable with ``REPRO_LOCK_ORDER=1``) and across the
experiment harnesses (``repro-lint --lock-order``).

Read-vs-write mode is deliberately ignored when building edges: two
readers never block each other, but a read-then-write order against a
write-then-read order can still deadlock through writer preference, so
the conservative graph treats every acquisition the same.
"""

from __future__ import annotations

import threading
import traceback
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = ["LockOrderRecorder", "recording", "format_cycle"]

#: Frames of acquisition stack retained per edge endpoint.
_STACK_DEPTH = 12


def _capture_stack() -> list[str]:
    frames = traceback.extract_stack()
    # Drop the recorder's own frames (this function + on_acquire).
    trimmed = frames[:-2][-_STACK_DEPTH:]
    return [
        f"{frame.filename}:{frame.lineno} in {frame.name}" for frame in trimmed
    ]


@dataclass
class Edge:
    """``source`` was held while ``target`` was acquired."""

    source: str
    target: str
    count: int = 0
    #: Stacks from the first time this edge was observed: where the
    #: source lock was acquired, and where the target acquisition
    #: happened while it was held.
    source_stack: list[str] = field(default_factory=list)
    target_stack: list[str] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "source": self.source,
            "target": self.target,
            "count": self.count,
            "source_stack": list(self.source_stack),
            "target_stack": list(self.target_stack),
        }


class LockOrderRecorder:
    """Accumulate acquisition-order edges and detect cycles."""

    def __init__(self, capture_stacks: bool = True) -> None:
        self.capture_stacks = capture_stacks
        self._mutex = threading.Lock()
        self._edges: dict[tuple[str, str], Edge] = {}
        self._held = threading.local()
        self.acquisitions = 0

    # -- observer protocol (called from repro.concurrency.locks) -------
    def on_acquire(self, name: str, mode: str) -> None:
        held: list[tuple[str, list[str]]] = getattr(self._held, "stack", None) or []
        stack = _capture_stack() if self.capture_stacks else []
        with self._mutex:
            self.acquisitions += 1
            for held_name, held_stack in held:
                if held_name == name:
                    continue  # re-entrant; not an ordering edge
                key = (held_name, name)
                edge = self._edges.get(key)
                if edge is None:
                    edge = Edge(held_name, name)
                    edge.source_stack = list(held_stack)
                    edge.target_stack = list(stack)
                    self._edges[key] = edge
                edge.count += 1
        held.append((name, stack))
        self._held.stack = held

    def on_release(self, name: str, mode: str) -> None:
        held: list[tuple[str, list[str]]] = getattr(self._held, "stack", None) or []
        for index in range(len(held) - 1, -1, -1):
            if held[index][0] == name:
                del held[index]
                break
        self._held.stack = held

    # -- the graph ------------------------------------------------------
    def edges(self) -> list[Edge]:
        with self._mutex:
            return list(self._edges.values())

    def cycles(self) -> list[list[Edge]]:
        """Every elementary cycle's edge list (deduplicated by node set).

        The graph is tiny (one node per named lock), so a DFS from each
        node is plenty; each cycle is reported once, rotated to start
        at its lexicographically smallest node.
        """
        with self._mutex:
            adjacency: dict[str, list[str]] = {}
            for source, target in self._edges:
                adjacency.setdefault(source, []).append(target)
            edge_map = dict(self._edges)

        seen: set[tuple[str, ...]] = set()
        cycles: list[list[Edge]] = []

        def dfs(start: str, node: str, path: list[str], on_path: set[str]) -> None:
            for nxt in adjacency.get(node, ()):
                if nxt == start:
                    cycle = _rotate(path)
                    key = tuple(cycle)
                    if key not in seen:
                        seen.add(key)
                        cycles.append([
                            edge_map[(cycle[i], cycle[(i + 1) % len(cycle)])]
                            for i in range(len(cycle))
                        ])
                elif nxt not in on_path and nxt > start:
                    # Only explore nodes > start: every cycle is found
                    # from its smallest node exactly once.
                    on_path.add(nxt)
                    dfs(start, nxt, path + [nxt], on_path)
                    on_path.discard(nxt)

        for start in sorted(adjacency):
            dfs(start, start, [start], {start})
        return cycles

    def report(self) -> dict[str, Any]:
        cycles = self.cycles()
        return {
            "version": 1,
            "acquisitions": self.acquisitions,
            "locks": sorted({
                name for edge in self.edges() for name in (edge.source, edge.target)
            }),
            "edges": [edge.to_dict() for edge in sorted(
                self.edges(), key=lambda e: (e.source, e.target)
            )],
            "cycles": [[edge.to_dict() for edge in cycle] for cycle in cycles],
            "acyclic": not cycles,
        }


def _rotate(path: list[str]) -> list[str]:
    pivot = path.index(min(path))
    return path[pivot:] + path[:pivot]


def format_cycle(cycle: list[Edge]) -> str:
    """Human-readable one-cycle report with both stacks per edge."""
    nodes = " -> ".join([cycle[0].source] + [edge.target for edge in cycle])
    lines = [f"potential deadlock cycle: {nodes}"]
    for edge in cycle:
        lines.append(
            f"  edge {edge.source} -> {edge.target} (seen {edge.count}x):"
        )
        lines.append(f"    {edge.source} acquired at:")
        lines.extend(f"      {frame}" for frame in edge.source_stack[-4:])
        lines.append(f"    {edge.target} acquired (while held) at:")
        lines.extend(f"      {frame}" for frame in edge.target_stack[-4:])
    return "\n".join(lines)


@contextmanager
def recording(capture_stacks: bool = True) -> Iterator[LockOrderRecorder]:
    """Install a recorder on the global RWLock observer hook."""
    from repro.concurrency import locks

    recorder = LockOrderRecorder(capture_stacks=capture_stacks)
    previous = locks.get_lock_observer()
    locks.set_lock_observer(recorder)
    try:
        yield recorder
    finally:
        locks.set_lock_observer(previous)
