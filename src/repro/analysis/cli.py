"""``repro-lint`` — the invariant lint suite and lock-order detector.

Static mode (the default) lints ``src/repro`` with the project rule
catalog, prints findings, and exits non-zero when any finding is *new*
relative to the committed baseline (``lint-baseline.json``, empty after
the PR-9 sweep — the baseline exists so an emergency merge can park a
finding without losing it).  ``--lock-order`` instead drives a live
multi-threaded serving harness under the dynamic lock-order recorder
and exits non-zero if the recorded acquisition graph has a cycle.

Exit codes: 0 clean, 1 findings (or a cycle), 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
from pathlib import Path
from typing import Any

from .framework import (
    Finding,
    diff_against_baseline,
    findings_to_doc,
    lint_paths,
    load_baseline,
)
from .lockorder import format_cycle, recording
from .rules import default_rules

__all__ = ["main", "run_lock_order_harness"]


def _repo_default_paths() -> list[Path]:
    """``src/repro`` relative to cwd, else the installed package dir."""
    candidate = Path("src") / "repro"
    if candidate.is_dir():
        return [candidate]
    return [Path(__file__).resolve().parent.parent]


def run_lock_order_harness(
    operations: int = 240,
    threads: int = 4,
    seed: int = 7,
    capture_stacks: bool = True,
) -> dict[str, Any]:
    """Drive the serving stack's lock hierarchy and record the order graph.

    A small :func:`~repro.service.traffic.demo_server` takes concurrent
    mixed query/update traffic on ``threads`` threads while a fourth
    path exercises the world write lock (checkpoint-style refresh), so
    the recorded graph covers world → striped → per-view ordering —
    the full hierarchy ``LockManager.acquire`` must keep acyclic.
    """
    from repro.service.traffic import (
        PhaseSpec,
        demo_server,
        drifting_traffic,
        run_traffic,
    )

    demo = demo_server(n_tuples=400, seed=seed)
    phases = (PhaseSpec(update_probability=0.3, operations=operations,
                        batch_size=4),)
    requests = drifting_traffic(demo, phases, seed=seed)
    slices = [requests[i::threads] for i in range(threads)]
    errors: list[BaseException] = []

    with recording(capture_stacks=capture_stacks) as recorder:
        def worker(index: int) -> None:
            try:
                run_traffic(demo.server, slices[index])
            except BaseException as exc:  # surfaced after join
                errors.append(exc)

        pool = [
            threading.Thread(target=worker, args=(i,), daemon=True)
            for i in range(threads)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join(timeout=120.0)
        demo.server.refresh_all_stale()
        report = recorder.report()
    if errors:
        raise errors[0]
    report["harness"] = {
        "operations": operations, "threads": threads, "seed": seed,
    }
    return report


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST invariant lints and lock-order deadlock detection",
    )
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--rules", help="comma-separated rule subset (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog",
    )
    parser.add_argument(
        "--json", type=Path, metavar="FILE",
        help="write the findings (or lock-order) report as JSON",
    )
    parser.add_argument(
        "--baseline", type=Path, default=Path("lint-baseline.json"),
        help="committed findings baseline to diff against "
             "(default: lint-baseline.json; ignored if missing)",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="rewrite the baseline with the current findings and exit 0",
    )
    parser.add_argument(
        "--lock-order", action="store_true",
        help="run the dynamic lock-order harness instead of linting",
    )
    parser.add_argument(
        "--operations", type=int, default=240,
        help="lock-order harness: total operations (default 240)",
    )
    parser.add_argument(
        "--threads", type=int, default=4,
        help="lock-order harness: worker threads (default 4)",
    )
    parser.add_argument(
        "--seed", type=int, default=7,
        help="lock-order harness: workload seed (default 7)",
    )
    return parser


def _run_lock_order(args: argparse.Namespace) -> int:
    report = run_lock_order_harness(
        operations=args.operations, threads=args.threads, seed=args.seed
    )
    if args.json is not None:
        args.json.write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"lock-order: {report['acquisitions']} acquisitions, "
        f"{len(report['locks'])} locks, {len(report['edges'])} edges, "
        f"{len(report['cycles'])} cycle(s)"
    )
    if report["cycles"]:
        from .lockorder import Edge

        for cycle_doc in report["cycles"]:
            edges = [
                Edge(
                    source=str(doc["source"]), target=str(doc["target"]),
                    count=int(doc["count"]),
                    source_stack=list(doc["source_stack"]),
                    target_stack=list(doc["target_stack"]),
                )
                for doc in cycle_doc
            ]
            print(format_cycle(edges))
        return 1
    print("lock-order graph is acyclic")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    try:
        rule_names = (
            [name.strip() for name in args.rules.split(",") if name.strip()]
            if args.rules else None
        )
        rules = default_rules(rule_names)
    except ValueError as exc:
        parser.error(str(exc))

    if args.list_rules:
        for rule in rules:
            print(f"{rule.name}: {rule.description}")
        return 0

    if args.lock_order:
        return _run_lock_order(args)

    paths = args.paths or _repo_default_paths()
    missing = [str(path) for path in paths if not path.exists()]
    if missing:
        parser.error(f"no such path(s): {', '.join(missing)}")
    findings, pragmas = lint_paths(paths, rules)

    if args.write_baseline:
        doc = findings_to_doc(findings, pragmas, rules)
        args.baseline.write_text(json.dumps(doc, indent=2) + "\n")
        print(f"baseline written: {len(findings)} finding(s) "
              f"-> {args.baseline}")
        return 0

    baseline: list[Finding] = []
    if args.baseline.exists():
        baseline = load_baseline(args.baseline)
    new, known = diff_against_baseline(findings, baseline)

    doc = findings_to_doc(findings, pragmas, rules)
    doc["baseline"] = {
        "path": str(args.baseline) if args.baseline.exists() else None,
        "known": len(known),
        "new": len(new),
    }
    if args.json is not None:
        args.json.write_text(json.dumps(doc, indent=2) + "\n")

    for finding in findings:
        marker = "" if finding in new else " [baselined]"
        print(
            f"{finding.path}:{finding.line}:{finding.col}: "
            f"{finding.rule}: {finding.message}{marker}"
        )
    for pragma in pragmas:
        print(
            f"{pragma.path}:{pragma.line}: note: pragma suppressed "
            f"{pragma.rule}"
        )
    print(
        f"repro-lint: {len(findings)} finding(s) "
        f"({len(new)} new, {len(known)} baselined), "
        f"{len(pragmas)} pragma suppression(s)"
    )
    return 1 if new else 0


if __name__ == "__main__":
    sys.exit(main())
